//! A data-exchange scenario outside the paper's book example: a supplier
//! publishes purchase orders as XML together with an XML Schema whose
//! identity constraints describe the keys; the consumer imports the keys,
//! validates a shipment, checks its predefined warehouse schema, and lets the
//! library propose a normalized design for a reporting table.
//!
//! Run with `cargo run --example data_exchange`.

use xmlprop::core::{check_declared_keys, propagation, refine};
use xmlprop::prelude::*;
use xmlprop::xmlkeys::{import_xsd_keys, satisfies_all};

const ORDERS_XSD: &str = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="orders">
    <xs:key name="customerId">
      <xs:selector xpath=".//customer"/>
      <xs:field xpath="@cid"/>
    </xs:key>
  </xs:element>
  <xs:element name="customer">
    <xs:key name="orderNumber">
      <xs:selector xpath="order"/>
      <xs:field xpath="@ono"/>
    </xs:key>
    <xs:unique name="oneName">
      <xs:selector xpath="name"/>
      <xs:field xpath="@text"/>
    </xs:unique>
  </xs:element>
  <xs:element name="order">
    <xs:key name="lineNumber">
      <xs:selector xpath="line"/>
      <xs:field xpath="@no"/>
    </xs:key>
    <xs:unique name="lineSku">
      <xs:selector xpath="line"/>
      <xs:field xpath="@sku"/>
    </xs:unique>
    <xs:unique name="lineQty">
      <xs:selector xpath="line"/>
      <xs:field xpath="@qty"/>
    </xs:unique>
    <xs:keyref name="lineToProduct" refer="productSku">
      <xs:selector xpath="line"/>
      <xs:field xpath="@sku"/>
    </xs:keyref>
  </xs:element>
</xs:schema>"#;

const SHIPMENT: &str = r#"
<feed>
<orders>
  <customer cid="c1">
    <name text="Acme Corp"/>
    <order ono="1">
      <line no="1" sku="widget" qty="10"/>
      <line no="2" sku="sprocket" qty="5"/>
    </order>
    <order ono="2">
      <line no="1" sku="widget" qty="3"/>
    </order>
  </customer>
  <customer cid="c2">
    <name text="Globex"/>
    <order ono="1">
      <line no="1" sku="gizmo" qty="7"/>
    </order>
  </customer>
</orders>
</feed>"#;

fn main() {
    // 1. Import the keys from the provider's XSD.  Foreign keys (keyref) are
    //    refused with a pointer to the paper's undecidability result.
    let import = import_xsd_keys(ORDERS_XSD).expect("well-formed schema");
    println!("Imported XML keys:");
    for key in import.keys.iter() {
        println!("  {key}");
    }
    for skipped in &import.skipped {
        println!("  (skipped) {skipped}");
    }
    // XSD identity constraints are scoped to the element declaration they are
    // attached to (`//orders`), so the consumer adds one absolute fact it
    // knows about its feed documents: they contain a single <orders> element.
    let mut sigma = import.keys;
    sigma.add(XmlKey::parse("root: (ε, (//orders, {}))").expect("valid key"));

    // 2. Validate the shipment against the keys before loading it.
    let doc = Document::parse_str(SHIPMENT).expect("well-formed shipment");
    assert!(
        satisfies_all(&doc, &sigma),
        "shipment violates the published keys"
    );
    println!("\nShipment satisfies all imported keys.");

    // 3. The consumer's existing warehouse schema.
    let warehouse = Transformation::parse(
        "rule order_line(customer, order_no, line_no, sku, qty) {
            top := xr/orders;
            c := top/customer;
            ci := c/@cid;
            o := c/order;
            oi := o/@ono;
            l := o/line;
            li := l/@no;
            sk := l/@sku;
            q := l/@qty;
            customer := value(ci);
            order_no := value(oi);
            line_no := value(li);
            sku := value(sk);
            qty := value(q);
        }",
    )
    .expect("well-formed transformation");

    println!("\nShredded order_line instance:");
    println!("{}", warehouse.rule("order_line").unwrap().shred(&doc));

    // 4. Is the declared primary key (customer, order_no, line_no) guaranteed?
    let report = check_declared_keys(
        &sigma,
        &warehouse,
        [("order_line", ["customer", "order_no", "line_no"])],
    );
    print!("{report}");
    // A tempting shortcut — keying lines by (order_no, line_no) only — is
    // rejected, because order numbers repeat across customers.
    let shortcut: Fd = "order_no, line_no -> sku".parse().unwrap();
    println!(
        "(order_no, line_no) alone determines sku: {}",
        propagation(&sigma, warehouse.rule("order_line").unwrap(), &shortcut)
    );

    // 5. Design a reporting table from scratch: universal relation + refine.
    let universal = xmlprop::xmltransform::parse_single_rule(
        "rule report(customer, custName, order_no, line_no, sku, qty) {
            top := xr/orders;
            c := top/customer;
            ci := c/@cid;
            nm := c/name;
            nt := nm/@text;
            o := c/order;
            oi := o/@ono;
            l := o/line;
            li := l/@no;
            sk := l/@sku;
            q := l/@qty;
            customer := value(ci);
            custName := value(nt);
            order_no := value(oi);
            line_no := value(li);
            sku := value(sk);
            qty := value(q);
        }",
    )
    .expect("well-formed universal relation");
    let design = refine(&sigma, &universal);
    println!("\nPropagated minimum cover for the reporting table:");
    for fd in &design.cover {
        println!("  {fd}");
    }
    println!("\nProposed BCNF design:\n{}", design.bcnf_sql());
}
