//! Schema refinement from scratch (Examples 1.2 and 3.1 of the paper).
//!
//! The database is designed *de novo*: the designer writes a rough universal
//! relation over the XML data, the library infers the minimum cover of all
//! functional dependencies propagated from the XML keys, and the universal
//! relation is decomposed into BCNF (and 3NF) guided by that cover.
//!
//! Run with `cargo run --example schema_refinement`.

use xmlprop::core::{refine, GMinimumCover};
use xmlprop::prelude::*;
use xmlprop::xmlkeys::example_2_1_keys;
use xmlprop::xmltransform::sample::example_3_1_universal;

fn main() {
    let sigma = example_2_1_keys();
    let universal = example_3_1_universal();

    println!("XML keys (Σ):");
    for key in sigma.iter() {
        println!("  {key}");
    }
    println!("\nUniversal relation rule:\n{universal}\n");

    // The whole pipeline: cover, candidate keys, BCNF, 3NF.
    let design = refine(&sigma, &universal);

    println!("Minimum cover of the propagated FDs (Example 3.1):");
    for fd in &design.cover {
        println!("  {fd}");
    }

    println!("\nCandidate keys of the universal relation:");
    for key in &design.universal_keys {
        let key: Vec<&str> = key.iter().map(String::as_str).collect();
        println!("  ({})", key.join(", "));
    }

    println!("\nBCNF decomposition (SQL):\n");
    println!("{}", design.bcnf_sql());

    println!("\n3NF synthesis (SQL):\n");
    println!("{}", design.third_normal_form_sql());

    // Extra dependencies can be validated cheaply against the same cover.
    let checker = GMinimumCover::new(sigma, universal);
    for probe in ["bookIsbn -> chapName", "bookIsbn, chapNum -> chapName"] {
        let fd: Fd = probe.parse().unwrap();
        println!(
            "check {probe:<32} => {}",
            if checker.check(&fd) {
                "guaranteed"
            } else {
                "not guaranteed"
            }
        );
    }
}
