-- minimum cover of the propagated dependencies
--   bookIsbn -> bookTitle
--   bookIsbn -> authContact
--   bookIsbn, chapNum -> chapName
--   bookIsbn, chapNum, secNum -> secName

-- BCNF decomposition
CREATE TABLE U_1 (
    bookAuthor TEXT,
    bookIsbn TEXT,
    chapNum TEXT,
    secNum TEXT,
    PRIMARY KEY (bookAuthor, bookIsbn, chapNum, secNum)
);

CREATE TABLE U_2 (
    bookIsbn TEXT,
    chapNum TEXT,
    secName TEXT,
    secNum TEXT,
    PRIMARY KEY (bookIsbn, chapNum, secNum)
);

CREATE TABLE U_3 (
    bookIsbn TEXT,
    chapName TEXT,
    chapNum TEXT,
    PRIMARY KEY (bookIsbn, chapNum)
);

CREATE TABLE U_4 (
    authContact TEXT,
    bookIsbn TEXT,
    bookTitle TEXT,
    PRIMARY KEY (bookIsbn)
);

-- 3NF synthesis
CREATE TABLE U_1 (
    bookIsbn TEXT,
    chapNum TEXT,
    secName TEXT,
    secNum TEXT,
    PRIMARY KEY (bookIsbn, chapNum, secNum)
);

CREATE TABLE U_2 (
    bookAuthor TEXT,
    bookIsbn TEXT,
    chapNum TEXT,
    secNum TEXT,
    PRIMARY KEY (bookAuthor, bookIsbn, chapNum, secNum)
);

CREATE TABLE U_3 (
    authContact TEXT,
    bookIsbn TEXT,
    bookTitle TEXT,
    PRIMARY KEY (bookIsbn)
);

CREATE TABLE U_4 (
    bookIsbn TEXT,
    chapName TEXT,
    chapNum TEXT,
    PRIMARY KEY (bookIsbn, chapNum)
);
