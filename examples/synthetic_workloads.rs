//! Working with the synthetic workload generator used by the Section 6
//! experiments: generate a universal relation and key set of a chosen size,
//! compute its cover, and verify the result against randomly generated,
//! key-satisfying documents.
//!
//! Run with `cargo run --release --example synthetic_workloads -- [fields] [depth] [keys]`.

use xmlprop::core::{minimum_cover_with_stats, propagation};
use xmlprop::workload::{generate, generate_document, target_fd, DocConfig, WorkloadConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let fields: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(30);
    let depth: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);
    let keys: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(15);

    let config = WorkloadConfig::new(fields, depth, keys);
    let workload = generate(&config);

    println!(
        "Generated workload: {} fields, depth {}, {} keys",
        workload.universal.schema().arity(),
        workload.universal.table_tree().depth(),
        workload.sigma.len()
    );
    println!("\nKeys:");
    for key in workload.sigma.iter() {
        println!("  {key}");
    }

    let (cover, stats) = minimum_cover_with_stats(&workload.sigma, &workload.universal);
    println!(
        "\nMinimum cover: {} FDs ({} candidates generated, {} keyed variables, {} implication calls)",
        cover.len(),
        stats.generated_fds,
        stats.keyed_variables,
        stats.implication_calls
    );
    for fd in cover.iter().take(10) {
        println!("  {fd}");
    }
    if cover.len() > 10 {
        println!("  … and {} more", cover.len() - 10);
    }

    // A representative propagated FD and its check.
    let probe = target_fd(&workload);
    println!(
        "\nProbe FD {probe}: {}",
        if propagation(&workload.sigma, &workload.universal, &probe) {
            "guaranteed"
        } else {
            "not guaranteed"
        }
    );

    // Validate the cover against a few random documents that satisfy Σ.
    println!("\nValidating the cover against generated documents:");
    for seed in 0..3u64 {
        let doc = generate_document(
            &workload,
            &DocConfig {
                seed,
                ..DocConfig::default()
            },
        );
        let instance = workload.universal.shred(&doc);
        let all_hold = cover.iter().all(|fd| instance.satisfies_fd_paper(fd));
        println!(
            "  document #{seed}: {} nodes, {} tuples, cover holds: {all_hold}",
            doc.len(),
            instance.len()
        );
        assert!(all_hold, "soundness violation — this would be a bug");
    }
}
