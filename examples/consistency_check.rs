//! Checking a *predefined* consumer schema against the XML keys — the
//! Example 1.1 story of the paper.
//!
//! The consumer first designs `Chapter(bookTitle, chapterNum, chapterName)`
//! keyed on `(bookTitle, chapterNum)`, imports the data, and hits key
//! violations.  The refined design keyed on `(isbn, chapterNum)` imports
//! cleanly — but is that luck, or a guarantee?  Key propagation answers it.
//!
//! Run with `cargo run --example consistency_check`.

use xmlprop::core::check_declared_keys;
use xmlprop::prelude::*;
use xmlprop::xmlkeys::{example_2_1_keys, violations};
use xmlprop::xmltransform::sample::{example_1_1_initial_chapter, example_1_1_refined_chapter};
use xmlprop::xmltree::sample::fig1;

fn main() {
    let doc = fig1();
    let sigma = example_2_1_keys();

    // --- The initial design -------------------------------------------------
    let initial = Transformation::new(vec![example_1_1_initial_chapter()]);
    let instance = initial.rule("Chapter").unwrap().shred(&doc);
    println!("Initial design Chapter(bookTitle, chapterNum, chapterName):\n");
    println!("{}", instance.to_table_string());

    let declared_key: Fd = "bookTitle, chapterNum -> chapterName".parse().unwrap();
    println!(
        "Declared key holds on this import: {}",
        instance.satisfies_fd_paper(&declared_key)
    );
    let report = check_declared_keys(&sigma, &initial, [("Chapter", ["bookTitle", "chapterNum"])]);
    println!(
        "Guaranteed by the XML keys for every import: {}\n",
        report.all_guaranteed()
    );
    print!("{report}");

    // --- The refined design -------------------------------------------------
    let refined = Transformation::new(vec![example_1_1_refined_chapter()]);
    let instance = refined.rule("Chapter").unwrap().shred(&doc);
    println!("\nRefined design Chapter(isbn, chapterNum, chapterName):\n");
    println!("{}", instance.to_table_string());
    let report = check_declared_keys(&sigma, &refined, [("Chapter", ["isbn", "chapterNum"])]);
    println!(
        "Guaranteed by the XML keys for every import: {}\n",
        report.all_guaranteed()
    );
    print!("{report}");

    // --- Import-time validation of the XML keys themselves ------------------
    // If the provider ships data violating its own keys, the importer can
    // report exactly which nodes clash.
    let bad = xmlprop::xmltree::sample::fig1_duplicate_isbn();
    println!("\nValidating a corrupted shipment against K1:");
    for v in violations(&bad, sigma.get("K1").unwrap()) {
        println!("  violation: {v}");
    }
}
