//! Quickstart: from an XML document and its keys to guaranteed relational
//! dependencies.
//!
//! Run with `cargo run --example quickstart`.

use xmlprop::prelude::*;
use xmlprop::xmlkeys::satisfies_all;

fn main() {
    // 1. An XML document being exchanged (the paper's Fig. 1 data, inline).
    let doc = Document::parse_str(
        r#"<r>
             <book isbn="123">
               <title>XML</title>
               <author><name>Tim Bray</name><contact>tbray@example.org</contact></author>
               <chapter number="1"><name>Introduction</name></chapter>
               <chapter number="10"><name>Conclusion</name></chapter>
             </book>
             <book isbn="234">
               <title>XML</title>
               <chapter number="1">
                 <name>Getting Acquainted</name>
                 <section number="1"><name>Fundamentals</name></section>
                 <section number="2"><name>Attributes</name></section>
               </chapter>
             </book>
           </r>"#,
    )
    .expect("well-formed XML");

    // 2. The XML keys the data provider publishes (Example 2.1 of the paper).
    let sigma: KeySet = [
        "K1: (ε, (//book, {@isbn}))",
        "K2: (//book, (chapter, {@number}))",
        "K3: (//book, (title, {}))",
        "K4: (//book/chapter, (name, {}))",
        "K5: (//book/chapter/section, (name, {}))",
        "K6: (//book/chapter, (section, {@number}))",
        "K7: (//book, (author/contact, {}))",
    ]
    .into_iter()
    .map(|s| XmlKey::parse(s).expect("valid key"))
    .collect();
    assert!(
        satisfies_all(&doc, &sigma),
        "the sample data satisfies its keys"
    );

    // 3. The consumer's transformation: shred books and chapters into tables.
    let transformation = Transformation::parse(
        "rule book(isbn, title, contact) {
            b := xr//book;
            i := b/@isbn;
            t := b/title;
            a := b/author;
            c := a/contact;
            isbn := value(i);
            title := value(t);
            contact := value(c);
        }
        rule chapter(inBook, number, name) {
            b := xr//book;
            i := b/@isbn;
            c := b/chapter;
            n := c/@number;
            m := c/name;
            inBook := value(i);
            number := value(n);
            name := value(m);
        }",
    )
    .expect("well-formed transformation");

    // 4. Shred the document and show the instances.
    let db = transformation.shred(&doc);
    for relation in db.relations() {
        println!("{relation}");
    }

    // 5. Ask which dependencies are *guaranteed* for every future document
    //    that satisfies the keys — not just this one.
    let questions = [
        ("book", "isbn -> title"),
        ("book", "title -> isbn"),
        ("chapter", "inBook, number -> name"),
        ("chapter", "number -> name"),
    ];
    println!("Propagation of relational dependencies from the XML keys:");
    for (relation, fd_text) in questions {
        let fd: Fd = fd_text.parse().expect("valid FD");
        let rule = transformation.rule(relation).expect("relation exists");
        let verdict = xmlprop::core::propagation(&sigma, rule, &fd);
        println!(
            "  {relation}: {fd_text:<28} {}",
            if verdict {
                "GUARANTEED"
            } else {
                "not guaranteed"
            }
        );
    }

    // 6. And compute the full minimum cover for the chapter relation.
    let cover = xmlprop::core::minimum_cover(&sigma, transformation.rule("chapter").unwrap());
    println!("\nMinimum cover of all FDs propagated onto chapter:");
    for fd in &cover {
        println!("  {fd}");
    }
}
