//! Property-based tests (proptest) for the core data structures and
//! invariants: path containment, XML key implication soundness, FD cover
//! operations, shredding null/cardinality invariants and the equivalence of
//! the two minimum-cover algorithms on random workloads.

use proptest::prelude::*;
use std::collections::BTreeSet;
use xmlprop::prelude::*;
use xmlprop::reldb::{
    bcnf_decompose, closure, covers_equivalent, decomposition_is_lossless, is_3nf, is_bcnf,
    is_dependency_preserving, is_nonredundant, minimize, synthesize_3nf,
};
use xmlprop::workload::{generate, generate_document, DocConfig, WorkloadConfig};
use xmlprop::xmlkeys::{implies, satisfies, satisfies_all};
use xmlprop::xmlpath::{Atom, EvalScratch, LabelUniverse, PathCompiler};
use xmlprop::xmltree::DocIndex;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Random path expressions over a two-letter alphabet with `//` wildcards.
fn path_expr_strategy() -> impl Strategy<Value = PathExpr> {
    prop::collection::vec(
        prop_oneof![
            Just(Atom::Label("a".to_string())),
            Just(Atom::Label("b".to_string())),
            Just(Atom::Label("c".to_string())),
            Just(Atom::AnyPath),
        ],
        0..5,
    )
    .prop_map(PathExpr::from_atoms)
}

/// Random concrete words over the same alphabet.
fn word_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(
        prop_oneof![
            Just("a".to_string()),
            Just("b".to_string()),
            Just("c".to_string())
        ],
        0..6,
    )
}

/// Random FDs over a tiny attribute universe.
fn fd_strategy() -> impl Strategy<Value = Fd> {
    let attr = prop_oneof![Just("p"), Just("q"), Just("r"), Just("s"), Just("t")];
    (prop::collection::btree_set(attr.clone(), 0..4), attr).prop_filter_map(
        "rhs must not be empty",
        |(lhs, rhs)| {
            let lhs: BTreeSet<String> = lhs.into_iter().map(str::to_string).collect();
            Some(Fd::new(lhs, std::iter::once(rhs.to_string()).collect()))
        },
    )
}

// ---------------------------------------------------------------------------
// Path language
// ---------------------------------------------------------------------------

proptest! {
    /// Containment is sound w.r.t. membership: any word of P is a word of Q
    /// whenever P ⊑ Q.
    #[test]
    fn containment_respects_membership(
        p in path_expr_strategy(),
        q in path_expr_strategy(),
        w in word_strategy(),
    ) {
        let word = Path::from_labels(w);
        if p.contained_in(&q) && word.matches(&p) {
            prop_assert!(word.matches(&q), "word {word} in {p} but not in {q}");
        }
    }

    /// Containment is reflexive and transitive (on the samples generated).
    #[test]
    fn containment_is_a_preorder(
        p in path_expr_strategy(),
        q in path_expr_strategy(),
        r in path_expr_strategy(),
    ) {
        prop_assert!(p.contained_in(&p));
        if p.contained_in(&q) && q.contained_in(&r) {
            prop_assert!(p.contained_in(&r), "transitivity failed: {p} ⊑ {q} ⊑ {r}");
        }
    }

    /// Display/parse round-trip.
    #[test]
    fn path_display_parse_roundtrip(p in path_expr_strategy()) {
        let text = p.to_string();
        let reparsed: PathExpr = text.parse().unwrap();
        prop_assert_eq!(p, reparsed);
    }

    /// Every split re-concatenates to the original expression, and splitting
    /// never changes the language.
    #[test]
    fn splits_reconcatenate(p in path_expr_strategy()) {
        for (a, b) in p.splits() {
            prop_assert_eq!(a.concat(&b), p.clone());
        }
    }

    /// Evaluation agrees with membership of root paths on small documents.
    #[test]
    fn evaluation_agrees_with_membership(
        p in path_expr_strategy(),
        branching in 1usize..3,
    ) {
        // A small fixed-shape document over the same alphabet.
        let mut doc = Document::new("r");
        let root = doc.root();
        for _ in 0..branching {
            let a = doc.add_element(root, "a");
            let b = doc.add_element(a, "b");
            doc.add_element(b, "c");
            doc.add_element(a, "c");
            doc.add_element(root, "b");
        }
        let reached: BTreeSet<NodeId> = p.evaluate(&doc, root).into_iter().collect();
        for node in doc.all_nodes() {
            let rho = Path::from_labels(doc.path_from_root(node));
            prop_assert_eq!(reached.contains(&node), rho.matches(&p));
        }
    }
}

// ---------------------------------------------------------------------------
// Relational cover operations
// ---------------------------------------------------------------------------

proptest! {
    /// minimize() returns an equivalent, non-redundant, idempotent cover.
    #[test]
    fn minimize_is_equivalent_nonredundant_idempotent(
        fds in prop::collection::vec(fd_strategy(), 0..8)
    ) {
        let cover = minimize(&fds);
        prop_assert!(covers_equivalent(&cover, &fds));
        prop_assert!(is_nonredundant(&cover));
        prop_assert_eq!(minimize(&cover.clone()), cover);
    }

    /// BCNF decomposition produces lossless, BCNF fragments; 3NF synthesis
    /// produces lossless, dependency-preserving, 3NF fragments — for random
    /// FD sets over a small attribute universe.
    #[test]
    fn normalization_invariants(
        fds in prop::collection::vec(fd_strategy(), 0..7)
    ) {
        let universe: BTreeSet<String> =
            ["p", "q", "r", "s", "t"].into_iter().map(str::to_string).collect();

        let bcnf = bcnf_decompose("r", &universe, &fds);
        prop_assert!(decomposition_is_lossless(&universe, &bcnf, &fds));
        for fragment in &bcnf.relations {
            prop_assert!(is_bcnf(&fragment.schema.attribute_set(), &fds));
        }

        let third = synthesize_3nf("r", &universe, &fds);
        prop_assert!(decomposition_is_lossless(&universe, &third, &fds));
        let fragments: Vec<BTreeSet<String>> =
            third.relations.iter().map(|r| r.schema.attribute_set()).collect();
        prop_assert!(is_dependency_preserving(&fragments, &fds));
        for fragment in &fragments {
            prop_assert!(is_3nf(fragment, &fds));
        }
    }

    /// Attribute closure is monotone and idempotent.
    #[test]
    fn closure_is_monotone_and_idempotent(
        fds in prop::collection::vec(fd_strategy(), 0..8),
        seed in prop::collection::btree_set(
            prop_oneof![Just("p"), Just("q"), Just("r"), Just("s"), Just("t")], 0..4),
        extra in prop_oneof![Just("p"), Just("q"), Just("r")],
    ) {
        let seed: BTreeSet<String> = seed.into_iter().map(str::to_string).collect();
        let cl = closure(&seed, &fds);
        prop_assert!(cl.is_superset(&seed));
        prop_assert_eq!(closure(&cl, &fds).clone(), cl.clone());
        let mut bigger = seed.clone();
        bigger.insert(extra.to_string());
        prop_assert!(closure(&bigger, &fds).is_superset(&cl));
    }
}

// ---------------------------------------------------------------------------
// XML keys: implication soundness against model checking
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Whatever the implication procedure derives from a workload's key set
    /// holds on documents generated to satisfy that key set.
    #[test]
    fn implication_is_sound_on_generated_documents(
        fields in 4usize..10,
        depth in 1usize..4,
        extra_keys in 0usize..6,
        seed in 0u64..50,
        ctx_len in 0usize..3,
        tgt_len in 1usize..3,
    ) {
        let depth = depth.min(fields);
        let w = generate(&WorkloadConfig::new(fields, depth, depth + extra_keys).with_seed(seed));
        let doc = generate_document(&w, &DocConfig { seed, ..DocConfig::default() });
        prop_assume!(satisfies_all(&doc, &w.sigma));

        // Probe keys built from the workload's own vocabulary.
        let labels = &w.level_labels;
        let mut context = PathExpr::epsilon().descendant(&labels[0]);
        for label in labels.iter().take(ctx_len.min(labels.len())).skip(1) {
            context = context.child(label);
        }
        let mut target = PathExpr::epsilon();
        for label in labels.iter().skip(1).take(tgt_len.min(labels.len().saturating_sub(1))) {
            target = target.child(label);
        }
        let level = (ctx_len + tgt_len).min(labels.len()) - 1;
        let probe = XmlKey::new(context, target, [format!("@id{level}")]);
        if implies(&w.sigma, &probe) {
            prop_assert!(
                satisfies(&doc, &probe),
                "implication derived {probe} but a satisfying document violates it"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Shredding invariants
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// With no omissions, shredding a workload document produces exactly
    /// branching^depth tuples and no nulls in identifier fields; omissions
    /// introduce nulls only in non-identifier fields.
    #[test]
    fn shredding_cardinality_and_null_placement(
        fields in 4usize..10,
        depth in 1usize..4,
        branching in 1usize..4,
        seed in 0u64..30,
        omit in prop_oneof![Just(0.0f64), Just(0.5f64)],
    ) {
        let depth = depth.min(fields);
        let w = generate(&WorkloadConfig::new(fields, depth, depth + 2).with_seed(seed));
        let doc = generate_document(
            &w,
            &DocConfig { branching, omission_probability: omit, seed, ..DocConfig::default() },
        );
        let instance = w.universal.shred(&doc);
        prop_assert_eq!(instance.len(), branching.pow(depth as u32));
        for row in instance.rows() {
            for level in 0..depth {
                let id = w.id_field(level);
                prop_assert!(
                    !instance.value(row, id).is_null(),
                    "identifier {id} must never be null"
                );
            }
        }
        if omit == 0.0 {
            prop_assert!(instance.rows().iter().all(|r| !r.has_null()));
        }
    }

    /// The prepared engine, the one-shot facades and the `GminimumCover`
    /// checker all agree on random workloads and random probe FDs — the
    /// facade/engine agreement contract of the compiled path/key layer.
    #[test]
    fn prepared_engine_agrees_with_facades_on_random_workloads(
        fields in 4usize..10,
        depth in 1usize..4,
        extra_keys in 0usize..5,
        seed in 0u64..40,
        probe_seed in 0u64..16,
    ) {
        use rand::SeedableRng;
        let depth = depth.min(fields);
        let w = generate(&WorkloadConfig::new(fields, depth, depth + extra_keys).with_seed(seed));
        let engine = PropagationEngine::new(&w.sigma, &w.universal);

        let mut rng = rand::rngs::StdRng::seed_from_u64(probe_seed);
        let mut probes = vec![xmlprop::workload::target_fd(&w)];
        for i in 0..8 {
            probes.push(xmlprop::workload::random_fd(&w, &mut rng, 1 + i % 3));
        }

        // Batch and per-FD facade answers match the prepared engine.
        let batch = engine.propagate_all(&probes);
        for (fd, verdict) in probes.iter().zip(&batch) {
            prop_assert_eq!(
                propagation(&w.sigma, &w.universal, fd), *verdict,
                "facade/engine disagreement on {}", fd
            );
        }

        // The engine's minimum cover is the facade's minimum cover.
        prop_assert_eq!(
            engine.minimum_cover(),
            minimum_cover(&w.sigma, &w.universal)
        );

        // GminimumCover (built from the same engine) agrees on every probe.
        let g = GMinimumCover::from_engine(engine);
        for (fd, verdict) in probes.iter().zip(&batch) {
            prop_assert_eq!(g.check(fd), *verdict, "GminimumCover disagreement on {}", fd);
        }
    }

    /// Serialize → parse round-trips on random workload documents, both in
    /// compact and pretty form: the reparsed tree has the same `value()`
    /// serialization, the same node count and the same label sequence in
    /// document order.
    #[test]
    fn serialize_parse_roundtrip_on_workload_documents(
        fields in 4usize..10,
        depth in 1usize..4,
        branching in 1usize..4,
        seed in 0u64..40,
        omit in prop_oneof![Just(0.0f64), Just(0.4f64)],
        pretty in prop_oneof![Just(false), Just(true)],
    ) {
        let depth = depth.min(fields);
        let w = generate(&WorkloadConfig::new(fields, depth, depth + 2).with_seed(seed));
        let doc = generate_document(
            &w,
            &DocConfig { branching, omission_probability: omit, seed, ..DocConfig::default() },
        );
        let text = if pretty {
            xmlprop::xmltree::to_pretty_xml(&doc)
        } else {
            xmlprop::xmltree::to_xml(&doc)
        };
        let reparsed = Document::parse_str(&text).unwrap();
        prop_assert_eq!(reparsed.len(), doc.len());
        prop_assert_eq!(reparsed.value(reparsed.root()), doc.value(doc.root()));
        let labels = |d: &Document| -> Vec<String> {
            d.all_nodes().into_iter().map(|n| d.label(n).to_string()).collect()
        };
        prop_assert_eq!(labels(&reparsed), labels(&doc));
    }

    /// The compiled document engine agrees with the string facades on
    /// random workload documents: path evaluation, shredding (whole
    /// transformation) and key validation are pinned bit-for-bit.
    #[test]
    fn document_engine_agrees_with_string_facades_on_workloads(
        fields in 4usize..10,
        depth in 1usize..4,
        extra_keys in 0usize..5,
        branching in 1usize..4,
        seed in 0u64..40,
        omit in prop_oneof![Just(0.0f64), Just(0.3f64)],
    ) {
        let depth = depth.min(fields);
        let w = generate(&WorkloadConfig::new(fields, depth, depth + extra_keys).with_seed(seed));
        let doc = generate_document(
            &w,
            &DocConfig { branching, omission_probability: omit, seed, ..DocConfig::default() },
        );

        // Shredding: prepared plan == string facade, relation for relation.
        let mut universe = LabelUniverse::new();
        let plan = w.universal.prepare(&mut universe);
        let index = DocIndex::build(&doc, &mut universe);
        prop_assert_eq!(plan.shred(&doc, &index), w.universal.shred(&doc));

        // Path evaluation: compiled == string, over the rule's own paths
        // plus wildcard probes, from the root and from every entity node.
        let mut scratch = EvalScratch::new();
        let mut out = Vec::new();
        let tree = w.universal.table_tree();
        let mut probes: Vec<PathExpr> = tree
            .variables()
            .iter()
            .map(|v| tree.path_from_root(v))
            .collect();
        probes.push("//".parse().unwrap());
        probes.push(format!("//{}", w.level_labels[depth - 1]).parse().unwrap());
        probes.push(format!("//{}//", w.level_labels[0]).parse().unwrap());
        for expr in &probes {
            let compiled = universe.compile(expr);
            compiled.evaluate_positions(&index, index.position(doc.root()), &mut scratch, &mut out);
            let engine: Vec<NodeId> = out.iter().map(|&p| index.node_at(p)).collect();
            prop_assert_eq!(engine, expr.evaluate(&doc, doc.root()), "{}", expr);
        }

        // Key validation: prepared KeyIndex == string oracle, per key and
        // for the whole set.
        let mut key_index = w.sigma.prepare();
        let key_doc_index = key_index.index_document(&doc);
        for (k, key) in w.sigma.iter().enumerate() {
            prop_assert_eq!(
                key_index.violations_of(k, &doc, &key_doc_index),
                xmlprop::xmlkeys::violations(&doc, key),
                "key {}", key
            );
        }
        prop_assert_eq!(
            key_index.satisfies(&doc, &key_doc_index),
            satisfies_all(&doc, w.sigma.iter())
        );
    }

    /// The polynomial and exponential minimum-cover algorithms agree on
    /// random small workloads (the paper's central claim).
    #[test]
    fn minimum_cover_matches_naive_on_random_workloads(
        fields in 4usize..7,
        depth in 1usize..4,
        extra_keys in 0usize..5,
        seed in 0u64..40,
        ratio in prop_oneof![Just(0.0f64), Just(0.3f64), Just(0.7f64)],
    ) {
        let depth = depth.min(fields);
        let config = WorkloadConfig {
            element_field_ratio: ratio,
            ..WorkloadConfig::new(fields, depth, depth + extra_keys)
        }
        .with_seed(seed);
        let w = generate(&config);
        let fast = xmlprop::core::minimum_cover(&w.sigma, &w.universal);
        let slow = xmlprop::core::naive_minimum_cover(&w.sigma, &w.universal);
        prop_assert!(
            covers_equivalent(&fast, &slow),
            "mismatch for {:?}: fast={:?} slow={:?}", config, fast, slow
        );
    }
}
