//! End-to-end reproduction of every worked example in the paper, exercising
//! the crates together exactly the way the text does.

use xmlprop::core::{
    check_declared_keys, minimum_cover, naive_minimum_cover, propagation, refine, GMinimumCover,
};
use xmlprop::prelude::*;
use xmlprop::reldb::{attrs, covers_equivalent, is_bcnf};
use xmlprop::xmlkeys::{example_2_1_keys, satisfies, satisfies_all};
use xmlprop::xmltransform::sample as tsample;
use xmlprop::xmltree::sample::fig1;

fn fd(s: &str) -> Fd {
    s.parse().unwrap()
}

/// Example 1.1: the initial design is violated by the Fig. 1 data; the
/// refined design holds on the data *and* is guaranteed by the keys.
#[test]
fn example_1_1_end_to_end() {
    let doc = fig1();
    let sigma = example_2_1_keys();

    // Fig. 2(a): the initial design and its violated key.
    let initial = tsample::example_1_1_initial_chapter();
    let instance = initial.shred(&doc);
    assert_eq!(instance.len(), 3);
    assert!(!instance.satisfies_fd_paper(&fd("bookTitle, chapterNum -> chapterName")));

    // Fig. 2(b): the refined design holds on this particular data set...
    let refined = tsample::example_1_1_refined_chapter();
    let instance = refined.shred(&doc);
    assert!(instance.satisfies_fd_paper(&fd("isbn, chapterNum -> chapterName")));

    // ...and, unlike the initial one, is guaranteed for every future import.
    let report = check_declared_keys(
        &sigma,
        &Transformation::new(vec![refined]),
        [("Chapter", ["isbn", "chapterNum"])],
    );
    assert!(report.all_guaranteed());
    let report = check_declared_keys(
        &sigma,
        &Transformation::new(vec![initial]),
        [("Chapter", ["bookTitle", "chapterNum"])],
    );
    assert!(!report.all_guaranteed());
}

/// Example 1.2: the de-novo design over Chapter(isbn, bookTitle, author,
/// chapterNum, chapterName): minimum cover and BCNF decomposition as printed.
#[test]
fn example_1_2_refinement() {
    let sigma = example_2_1_keys();
    let rule = xmlprop::xmltransform::parse_single_rule(
        "rule Chapter(isbn, bookTitle, author, chapterNum, chapterName) {
            b := xr//book;
            i := b/@isbn;
            t := b/title;
            a := b/author;
            an := a/name;
            c := b/chapter;
            n := c/@number;
            m := c/name;
            isbn := value(i);
            bookTitle := value(t);
            author := value(an);
            chapterNum := value(n);
            chapterName := value(m);
        }",
    )
    .unwrap();
    let design = refine(&sigma, &rule);
    let expected = vec![
        fd("isbn -> bookTitle"),
        fd("isbn, chapterNum -> chapterName"),
    ];
    assert!(
        covers_equivalent(&design.cover, &expected),
        "{:?}",
        design.cover
    );

    // The printed BCNF decomposition: Book(isbn, bookTitle),
    // Chapter(isbn, chapterNum, chapterName), Author(isbn, author) — the
    // author fragment may additionally carry chapterNum depending on how the
    // lossless split orders violations, but every fragment must be in BCNF
    // and the book/chapter fragments must match exactly.
    let sets = design.bcnf.attribute_sets();
    assert!(sets.contains(&attrs(["isbn", "bookTitle"])), "{sets:?}");
    assert!(
        sets.contains(&attrs(["isbn", "chapterNum", "chapterName"])),
        "{sets:?}"
    );
    for fragment in &design.bcnf.relations {
        assert!(is_bcnf(&fragment.schema.attribute_set(), &design.cover));
    }
    // isbn -> author must not be derivable (a book may have several authors).
    assert!(!xmlprop::reldb::implies(
        &design.cover,
        &fd("isbn -> author")
    ));
}

/// Example 2.2 / 2.3: path evaluation cardinalities and key satisfaction on
/// the Fig. 1 tree.
#[test]
fn examples_2_2_and_2_3() {
    let doc = fig1();
    let count = |p: &str| {
        let expr: PathExpr = p.parse().unwrap();
        expr.evaluate(&doc, doc.root()).len()
    };
    assert_eq!(count("//book"), 2);
    assert_eq!(count("//@number"), 5);
    assert_eq!(count("//book/chapter"), 3);
    let sigma = example_2_1_keys();
    assert!(satisfies_all(&doc, &sigma));
    for key in sigma.iter() {
        assert!(satisfies(&doc, key), "{key}");
    }
}

/// Example 2.5: the section rule's instance over Fig. 1.
#[test]
fn example_2_5_shredding() {
    let t = tsample::example_2_4_transformation();
    let rel = t.rule("section").unwrap().shred(&fig1());
    let complete: Vec<Vec<String>> = rel
        .rows()
        .iter()
        .filter(|r| !r.has_null())
        .map(|r| r.values().iter().map(|v| v.to_string()).collect())
        .collect();
    assert_eq!(
        complete,
        vec![
            vec!["1".to_string(), "1".to_string(), "Fundamentals".to_string()],
            vec!["1".to_string(), "2".to_string(), "Attributes".to_string()],
        ]
    );
}

/// Example 4.1: transitive key sets.
#[test]
fn example_4_1_transitive_sets() {
    let sigma = example_2_1_keys();
    let k1 = sigma.get("K1").unwrap().clone();
    let k2 = sigma.get("K2").unwrap().clone();
    assert!(KeySet::from_keys(vec![k1, k2.clone()]).is_transitive());
    assert!(!KeySet::from_keys(vec![k2]).is_transitive());
}

/// Example 4.2: both propagation verdicts.
#[test]
fn example_4_2_propagation() {
    let sigma = example_2_1_keys();
    let t = tsample::example_2_4_transformation();
    assert!(propagation(
        &sigma,
        t.rule("book").unwrap(),
        &fd("isbn -> contact")
    ));
    assert!(!propagation(
        &sigma,
        t.rule("section").unwrap(),
        &fd("inChapt, number -> name")
    ));
}

/// Example 3.1 / 5.1: the universal-relation minimum cover, its agreement
/// between the polynomial and naive algorithms, and the BCNF decomposition.
#[test]
fn example_3_1_and_5_1_minimum_cover() {
    let sigma = example_2_1_keys();
    let u = tsample::example_3_1_universal();
    let cover = minimum_cover(&sigma, &u);
    let expected = vec![
        fd("bookIsbn -> bookTitle"),
        fd("bookIsbn -> authContact"),
        fd("bookIsbn, chapNum -> chapName"),
        fd("bookIsbn, chapNum, secNum -> secName"),
    ];
    assert!(covers_equivalent(&cover, &expected), "{cover:?}");
    assert_eq!(cover.len(), 4);

    // The universal relation has eight fields — small enough for the naive
    // exponential algorithm; the two must agree.
    let slow = naive_minimum_cover(&sigma, &u);
    assert!(covers_equivalent(&cover, &slow));

    // GminimumCover answers the same questions as propagation over the cover.
    let checker = GMinimumCover::new(sigma.clone(), u.clone());
    for probe in &expected {
        assert!(checker.check(probe));
        assert!(propagation(&sigma, &u, probe));
    }

    // The decomposition of Example 3.1.
    let design = refine(&sigma, &u);
    let sets = design.bcnf.attribute_sets();
    assert!(
        sets.contains(&attrs(["bookIsbn", "chapNum", "chapName"])),
        "{sets:?}"
    );
    assert!(
        sets.contains(&attrs(["bookIsbn", "chapNum", "secNum", "secName"])),
        "{sets:?}"
    );
}

/// The propagated FDs hold on the actual shredded instance of Fig. 1 under
/// the paper's null-aware FD semantics (soundness sanity check tying all the
/// layers together).
#[test]
fn propagated_fds_hold_on_fig1_universal_instance() {
    let sigma = example_2_1_keys();
    let u = tsample::example_3_1_universal();
    let instance = u.shred(&fig1());
    for fd in minimum_cover(&sigma, &u) {
        assert!(
            instance.satisfies_fd_paper(&fd),
            "{fd} violated on the Fig. 1 instance"
        );
    }
    // And a non-propagated FD is indeed violated by this very instance under
    // classical FD semantics (both books are titled "XML" but have different
    // isbns), demonstrating that the rejection is not overly conservative.
    // (Under the paper's null-aware semantics every tuple of this instance
    // carries some null — missing authors or missing sections — so condition
    // (2) is vacuous there.)
    assert!(!instance.satisfies_fd_classical(&fd("bookTitle -> bookIsbn")));
}
