//! The central correctness claim of Section 5, checked on families of
//! synthetic workloads: the polynomial `minimumCover` algorithm produces a
//! cover equivalent (under Armstrong's axioms) to the exponential `naive`
//! baseline, and everything either algorithm derives is sound with respect
//! to actual shredded instances.

use xmlprop::core::{minimum_cover, naive_minimum_cover, propagation, GMinimumCover};
use xmlprop::reldb::{covers_equivalent, is_nonredundant};
use xmlprop::workload::{
    generate, generate_document, random_fd, target_fd, DocConfig, WorkloadConfig,
};

/// Small grid where the exponential baseline is still tractable
/// (2^fields × fields propagation checks per workload).
fn small_configs() -> Vec<WorkloadConfig> {
    let mut out = Vec::new();
    for fields in [4usize, 5, 6, 7] {
        for depth in 1..=fields.min(4) {
            for keys in [depth, depth + 2, depth + 5] {
                for seed in [11u64, 29] {
                    out.push(
                        WorkloadConfig {
                            element_field_ratio: 0.4,
                            ..WorkloadConfig::new(fields, depth, keys)
                        }
                        .with_seed(seed),
                    );
                }
            }
        }
    }
    out
}

#[test]
fn minimum_cover_agrees_with_naive_on_synthetic_workloads() {
    for config in small_configs() {
        let w = generate(&config);
        let fast = minimum_cover(&w.sigma, &w.universal);
        let slow = naive_minimum_cover(&w.sigma, &w.universal);
        assert!(
            covers_equivalent(&fast, &slow),
            "cover mismatch for {config:?}:\n fast = {fast:?}\n slow = {slow:?}\n keys = {}",
            w.sigma
        );
        assert!(
            is_nonredundant(&fast),
            "redundant cover for {config:?}: {fast:?}"
        );
    }
}

#[test]
fn gminimumcover_agrees_with_propagation_on_random_probes() {
    use rand::SeedableRng;
    for config in [
        WorkloadConfig::new(8, 3, 6).with_seed(5),
        WorkloadConfig::new(12, 4, 10).with_seed(6),
        WorkloadConfig::new(15, 5, 12).with_seed(7),
    ] {
        let w = generate(&config);
        let checker = GMinimumCover::new(w.sigma.clone(), w.universal.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let mut probes = vec![target_fd(&w)];
        for i in 0..40 {
            probes.push(random_fd(&w, &mut rng, 1 + i % 4));
        }
        for probe in probes {
            assert_eq!(
                propagation(&w.sigma, &w.universal, &probe),
                checker.check(&probe),
                "disagreement on {probe} for {config:?}"
            );
        }
    }
}

#[test]
fn everything_derived_is_sound_on_generated_documents() {
    for config in [
        WorkloadConfig::new(6, 2, 5).with_seed(1),
        WorkloadConfig::new(10, 3, 8).with_seed(2),
        WorkloadConfig::new(14, 4, 12).with_seed(3),
        WorkloadConfig::new(18, 5, 20).with_seed(4),
    ] {
        let w = generate(&config);
        let cover = minimum_cover(&w.sigma, &w.universal);
        for doc_seed in 0..3u64 {
            let doc = generate_document(
                &w,
                &DocConfig {
                    seed: doc_seed,
                    branching: 3,
                    omission_probability: 0.3,
                    ..DocConfig::default()
                },
            );
            assert!(
                xmlprop::xmlkeys::satisfies_all(&doc, &w.sigma),
                "generator must respect its own keys ({config:?})"
            );
            let instance = w.universal.shred(&doc);
            for fd in &cover {
                assert!(
                    instance.satisfies_fd_paper(fd),
                    "unsound FD {fd} for {config:?}, document seed {doc_seed}"
                );
            }
        }
    }
}

#[test]
fn propagation_accepts_every_cover_fd() {
    // The FDs in the computed minimum cover are themselves propagated
    // dependencies, so Algorithm propagation must accept each of them.
    for config in [
        WorkloadConfig::new(8, 3, 8).with_seed(21),
        WorkloadConfig::new(12, 4, 14).with_seed(22),
        WorkloadConfig::new(20, 6, 18).with_seed(23),
    ] {
        let w = generate(&config);
        for fd in minimum_cover(&w.sigma, &w.universal) {
            assert!(
                propagation(&w.sigma, &w.universal, &fd),
                "cover FD {fd} rejected by propagation for {config:?}"
            );
        }
    }
}
