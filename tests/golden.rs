//! Golden-file conformance tests: the paper's Fig. 1 document and the
//! book keys/rules fixtures, end to end (shred → validate → propagate →
//! minimum cover → refinement → query), against the committed expected
//! outputs under `examples/data/expected/`.
//!
//! These pin the *user-visible* behavior of the whole stack: a refactor of
//! any layer (parser, path evaluator, shred plans, key index, propagation
//! engine, SQL emitter) that silently drifts from the paper's worked
//! example fails here with a readable diff.  Regenerate an expected file
//! only when the change in output is intended, by re-running the CLI
//! command named in each test.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xmlprop-cli"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to launch xmlprop-cli")
}

fn expected(name: &str) -> String {
    let path = format!(
        "{}/examples/data/expected/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Asserts a CLI invocation succeeds and reproduces an expected file
/// byte for byte.
fn assert_golden(args: &[&str], file: &str) {
    let out = run(args);
    assert!(
        out.status.success(),
        "`xmlprop-cli {}` failed: {}",
        args.join(" "),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("CLI output is UTF-8");
    assert_eq!(
        stdout,
        expected(file),
        "`xmlprop-cli {}` drifted from examples/data/expected/{file}",
        args.join(" ")
    );
}

#[test]
fn fig1_validation_matches_golden() {
    assert_golden(
        &[
            "validate",
            "examples/data/fig1.xml",
            "examples/data/book_keys.txt",
        ],
        "fig1_validate.txt",
    );
}

#[test]
fn fig1_shred_matches_golden() {
    assert_golden(
        &[
            "shred",
            "examples/data/fig1.xml",
            "examples/data/book_rules.txt",
        ],
        "fig1_shred.txt",
    );
}

/// The streaming front end renders the *same bytes* as the DOM path: both
/// `--stream` invocations must reproduce the committed goldens unchanged.
#[test]
fn fig1_streaming_matches_the_same_goldens() {
    assert_golden(
        &[
            "validate",
            "--stream",
            "examples/data/fig1.xml",
            "examples/data/book_keys.txt",
        ],
        "fig1_validate.txt",
    );
    assert_golden(
        &[
            "shred",
            "--stream",
            "examples/data/fig1.xml",
            "examples/data/book_rules.txt",
        ],
        "fig1_shred.txt",
    );
}

#[test]
fn example_3_1_cover_matches_golden() {
    assert_golden(
        &[
            "cover",
            "examples/data/book_keys.txt",
            "examples/data/book_rules.txt",
            "U",
        ],
        "cover_U.txt",
    );
}

#[test]
fn example_4_2_propagation_matches_golden() {
    assert_golden(
        &[
            "propagate",
            "examples/data/book_keys.txt",
            "examples/data/book_rules.txt",
            "chapter",
            "inBook, number -> name",
        ],
        "propagate_chapter.txt",
    );
}

#[test]
fn refinement_sql_matches_golden() {
    assert_golden(
        &[
            "refine",
            "examples/data/book_keys.txt",
            "examples/data/book_rules.txt",
            "U",
        ],
        "refine_U.sql",
    );
}

/// The query layer over the Fig. 1 shred: plan line plus result table,
/// byte for byte.  Four plans are pinned: a filtered scan, the unique-key
/// join (`[key lookup]` — chapter is keyed on `inBook, number` by the
/// propagated cover), a non-key nested-loop join (`[scan]`), and a star
/// projection whose kept attributes determine the tuple (`[unique]`, the
/// dedup pass elided).
#[test]
fn fig1_queries_match_goldens() {
    let fixtures = [
        "query",
        "examples/data/fig1.xml",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
    ];
    let cases = [
        (
            "select chapter.name from chapter where inBook = '123'",
            "query_chapter.txt",
        ),
        (
            "select U.chapName, chapter.name from U join chapter on bookIsbn = inBook and chapNum = number",
            "query_join_keyed.txt",
        ),
        (
            "select title, name from book join chapter on isbn = inBook",
            "query_join_scan.txt",
        ),
        ("select * from chapter", "query_star_unique.txt"),
    ];
    for (query, file) in cases {
        let mut args = fixtures.to_vec();
        args.push(query);
        assert_golden(&args, file);
    }
}

/// The keyed golden really is keyed and the scan golden really is not:
/// the committed plan lines name the join strategy the optimizer chose.
#[test]
fn query_goldens_pin_the_join_strategy() {
    let keyed = expected("query_join_keyed.txt");
    assert!(
        keyed.lines().next().unwrap_or("").contains("[key lookup]"),
        "keyed golden lost its hash-lookup plan: {keyed}"
    );
    let scan = expected("query_join_scan.txt");
    assert!(
        scan.lines().next().unwrap_or("").contains("[scan]"),
        "scan golden gained a key it should not have: {scan}"
    );
    let star = expected("query_star_unique.txt");
    assert!(
        star.lines().next().unwrap_or("").contains("[unique]"),
        "star golden lost its dedup elision: {star}"
    );
}

/// The same fixtures through the corpus pipeline (rather than the one-shot
/// CLI paths): one prepared bundle, the Fig. 1 document as a corpus of one,
/// checked against the same expected shred output and a clean validation.
#[test]
fn corpus_pipeline_agrees_with_the_golden_fixtures() {
    use xmlprop::pipeline::{CorpusBundle, CorpusOptions};
    use xmlprop::prelude::*;

    let root = env!("CARGO_MANIFEST_DIR");
    let doc = Document::parse_str(
        &std::fs::read_to_string(format!("{root}/examples/data/fig1.xml")).unwrap(),
    )
    .unwrap();
    let mut keys = KeySet::new();
    for line in std::fs::read_to_string(format!("{root}/examples/data/book_keys.txt"))
        .unwrap()
        .lines()
    {
        let line = line.split('#').next().unwrap_or("").trim();
        if !line.is_empty() {
            keys.add(XmlKey::parse(line).unwrap());
        }
    }
    let rules = Transformation::parse(
        &std::fs::read_to_string(format!("{root}/examples/data/book_rules.txt")).unwrap(),
    )
    .unwrap();

    let bundle = CorpusBundle::new(keys, rules);
    let result = bundle.run(std::slice::from_ref(&doc), &CorpusOptions::default());
    assert_eq!(result.stats.documents, 1);
    assert_eq!(result.stats.violations, 0, "Fig. 1 satisfies Example 2.1");

    // The pipeline's shredded database prints exactly the golden shred.
    let printed: String = result.documents[0]
        .database
        .relations()
        .map(|r| format!("{r}\n"))
        .collect();
    assert_eq!(printed, expected("fig1_shred.txt"));

    // The pipeline's per-rule covers include the Example 3.1 cover of U.
    let u_cover = result
        .covers
        .iter()
        .find(|c| c.relation == "U")
        .expect("U is a rule of the fixtures");
    let printed: String = u_cover.cover.iter().map(|fd| format!("{fd}\n")).collect();
    assert_eq!(printed, expected("cover_U.txt"));
}
