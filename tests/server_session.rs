//! Golden conformance of the scripted server session, plus byte-equality
//! between server payloads and the one-shot CLI commands they mirror.
//!
//! The transcript under `examples/data/expected/serve_session.txt` pins
//! the whole service surface — greeting, every response header (verbatim
//! `bundle=` epochs across a hot reload), every payload, the shared
//! error-table wire codes.  Regenerate it only when a protocol change is
//! intended, with:
//!
//! ```text
//! cargo run --bin xmlprop-cli -- serve --script examples/data/server_session.txt \
//!     examples/data/book_keys.txt examples/data/book_rules.txt \
//!     > examples/data/expected/serve_session.txt
//! ```

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xmlprop-cli"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to launch xmlprop-cli")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).to_string()
}

fn expected(name: &str) -> String {
    let path = format!(
        "{}/examples/data/expected/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

fn run_session() -> Output {
    run(&[
        "serve",
        "--script",
        "examples/data/server_session.txt",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
    ])
}

#[test]
fn scripted_session_reproduces_the_golden_transcript() {
    let out = run_session();
    assert!(
        out.status.success(),
        "serve --script failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(stdout(&out), expected("serve_session.txt"));
}

/// The payload of a `>> {line}` step in a transcript: the lines between
/// the `ok`/`err` header and the `.` terminator.
fn payload_of(transcript: &str, line: &str) -> String {
    let mut lines = transcript.lines();
    lines
        .by_ref()
        .find(|l| *l == format!(">> {line}"))
        .unwrap_or_else(|| panic!("no `>> {line}` step in transcript"));
    let header = lines.next().expect("response header after the echo");
    assert!(
        header.starts_with("ok ") || header.starts_with("err "),
        "malformed header: {header}"
    );
    let mut payload = String::new();
    for l in lines {
        if l == "." {
            return payload;
        }
        payload.push_str(l);
        payload.push('\n');
    }
    panic!("unterminated response for `{line}`");
}

#[test]
fn server_payloads_byte_match_the_one_shot_cli() {
    let transcript = stdout(&run_session());

    let validate = run(&[
        "validate",
        "examples/data/fig1.xml",
        "examples/data/book_keys.txt",
    ]);
    assert_eq!(
        payload_of(&transcript, "validate @fig1.xml"),
        stdout(&validate),
        "serve validate == one-shot validate"
    );

    let shred = run(&[
        "shred",
        "examples/data/fig1.xml",
        "examples/data/book_rules.txt",
        "chapter",
    ]);
    assert_eq!(
        payload_of(&transcript, "shred @fig1.xml chapter"),
        stdout(&shred),
        "serve shred == one-shot shred"
    );

    let query = run(&[
        "query",
        "examples/data/fig1.xml",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "select U.chapName, chapter.name from U join chapter on bookIsbn = inBook and chapNum = number",
    ]);
    assert_eq!(
        payload_of(
            &transcript,
            "query @fig1.xml select U.chapName, chapter.name from U join chapter on bookIsbn = inBook and chapNum = number"
        ),
        stdout(&query),
        "serve query == one-shot query"
    );

    let propagate = run(&[
        "propagate",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "chapter",
        "inBook, number -> name",
    ]);
    assert_eq!(
        payload_of(&transcript, "propagate chapter inBook, number -> name"),
        stdout(&propagate),
        "serve propagate == one-shot propagate"
    );

    let cover = run(&[
        "cover",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "U",
    ]);
    assert_eq!(
        payload_of(&transcript, "cover U"),
        stdout(&cover),
        "serve cover == one-shot cover"
    );
}

#[test]
fn unknown_relation_shares_wire_code_and_cli_diagnostic() {
    let transcript = stdout(&run_session());
    let header = transcript
        .lines()
        .skip_while(|l| *l != ">> cover nosuchrelation")
        .nth(1)
        .expect("error header");
    assert!(header.starts_with("err relation "), "got: {header}");

    // The one-shot CLI prints the same diagnostic (after `error: `) and
    // exits 2 — one error table for both surfaces.
    let out = run(&[
        "cover",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "nosuchrelation",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    let cli_message = stderr
        .trim()
        .strip_prefix("error: ")
        .expect("CLI error prefix");
    let wire_message = header.strip_prefix("err relation ").unwrap();
    assert_eq!(cli_message, wire_message);
}
