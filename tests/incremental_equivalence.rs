//! Incremental / from-scratch equivalence under document mutation.
//!
//! For random synthetic workloads and random edit scripts — subtree
//! inserts (elements, attributes, text), subtree removals and text
//! rewrites — the incrementally maintained state
//! ([`CorpusBundle::open_incremental`] + [`CorpusBundle::apply_delta`])
//! must stay **bit-for-bit identical** to re-running the whole pipeline
//! from scratch on the mutated document after *every* edit:
//!
//! * the violation list equals a fresh `KeyIndex::violations` pass —
//!   same violations, same order;
//! * the maintained database equals a fresh `TransformationPlan::shred_all`;
//! * the mutated document serializes to XML that reparses to the same
//!   bytes, and the reparsed document shreds to the same database (node
//!   ids differ after a reparse, values may not).
//!
//! Like the pipeline equivalence suite, CI runs this twice (default and
//! `XMLPROP_TEST_JOBS=4`); the property is single-threaded, so the second
//! pass simply re-exercises it in that configuration.

use proptest::prelude::*;
use xmlprop::pipeline::{CorpusBundle, PreparedState};
use xmlprop::workload::{generate, generate_document, DocConfig, WorkloadConfig};
use xmlprop::xmltransform::Transformation;
use xmlprop::xmltree::{to_xml, Delta, Document, Fragment, NodeId, NodeKind};

/// Derives one concrete edit from the selector triple over the current
/// document, or `None` when the document offers no site for that edit
/// kind (e.g. no removable node left).
fn derive_edit(doc: &Document, kind: u8, sel: u8, aux: u8) -> Option<Delta> {
    let pick = |nodes: &[NodeId], sel: u8| nodes[sel as usize % nodes.len()];
    // Length of the leading attribute run.  XML serialization prints
    // attributes in the start tag, so an attribute inserted after an
    // element/text child (or a child inserted before an attribute) would
    // not survive a serialize/parse round trip; generated edits keep the
    // attribute-prefix invariant that parsed documents always have.
    let attr_prefix = |parent: NodeId| {
        doc.children(parent)
            .take_while(|&c| matches!(doc.kind(c), NodeKind::Attribute))
            .count()
    };
    let all = doc.all_nodes();
    let elements: Vec<NodeId> = all
        .iter()
        .copied()
        .filter(|&n| matches!(doc.kind(n), NodeKind::Element))
        .collect();
    match kind % 5 {
        // Rewrite the text of an attribute or text node.
        0 => {
            let leaves: Vec<NodeId> = all
                .iter()
                .copied()
                .filter(|&n| !matches!(doc.kind(n), NodeKind::Element))
                .collect();
            if leaves.is_empty() {
                return None;
            }
            Some(Delta::SetText {
                node: pick(&leaves, sel),
                text: format!("t{aux}"),
            })
        }
        // Remove a non-root subtree.
        1 => {
            if all.len() <= 1 {
                return None;
            }
            Some(Delta::RemoveSubtree {
                node: pick(&all[1..], sel),
            })
        }
        // Insert an element fragment (with an attribute and text of its
        // own, so the grafted subtree is more than one node).
        2 => {
            let parent = pick(&elements, sel);
            let k = attr_prefix(parent);
            let position = k + aux as usize % (doc.children(parent).count() - k + 1);
            let fragment = Document::parse_str(&format!(
                "<e{}><l{} a=\"{aux}\">x</l{}></e{}>",
                aux % 3,
                aux % 2,
                aux % 2,
                aux % 3,
            ))
            .expect("generated fragment parses");
            Some(Delta::InsertSubtree {
                parent,
                position,
                fragment: Fragment::Element(fragment),
            })
        }
        // Insert an attribute (duplicate names allowed: that is exactly
        // the DuplicateAttribute violation class).
        3 => {
            let parent = pick(&elements, sel);
            Some(Delta::InsertSubtree {
                parent,
                position: aux as usize % (attr_prefix(parent) + 1),
                fragment: Fragment::Attribute {
                    name: format!("f{}", aux % 4),
                    value: format!("{}", aux % 3),
                },
            })
        }
        // Insert a bare text node.
        _ => {
            let parent = pick(&elements, sel);
            let k = attr_prefix(parent);
            Some(Delta::InsertSubtree {
                parent,
                position: k + aux as usize % (doc.children(parent).count() - k + 1),
                fragment: Fragment::Text(format!("s{aux}")),
            })
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn incremental_maintenance_is_bit_for_bit_from_scratch(
        fields in 8usize..12,
        depth in 2usize..4,
        keys in 6usize..9,
        seed in 0u64..1000,
        branching in 1usize..4,
        edits in prop::collection::vec((0u8..=255, 0u8..=255, 0u8..=255), 6..14),
    ) {
        let w = generate(&WorkloadConfig::new(fields, depth, keys).with_seed(seed));
        let doc = generate_document(&w, &DocConfig {
            branching,
            omission_probability: 0.25,
            seed: seed ^ 0xbeef,
            depth: None,
        });
        let transformation = Transformation::new(vec![w.universal.clone()]);
        let bundle = CorpusBundle::new(w.sigma.clone(), transformation);
        let mut state = bundle.open_incremental(doc);

        let mut applied = 0usize;
        for &(kind, sel, aux) in &edits {
            let Some(delta) = derive_edit(state.document(), kind, sel, aux) else {
                continue;
            };
            // Randomly-derived edits may be rejected (e.g. inserting under
            // an attribute); rejection must leave no trace, which the
            // from-scratch comparison below still checks.
            if let Ok(report) = bundle.apply_delta(&mut state, &delta) {
                applied += 1;
                prop_assert_eq!(report.nodes, state.document().len());
                prop_assert_eq!(report.violations, state.violation_count());
            }

            // From-scratch reference over the mutated document.
            let mut scratch = bundle.scratch();
            let index = scratch.index_document(state.document());
            let fresh_violations = bundle.keys().violations(state.document(), &index);
            let fresh_db = bundle.plan().shred_all(state.document(), &index);
            prop_assert_eq!(state.violations(), fresh_violations, "violations after edit");
            prop_assert_eq!(state.database(&bundle), fresh_db, "database after edit");
        }
        prop_assert!(applied > 0, "no edit of the script was applicable");

        // The mutated document round-trips through serialization, and the
        // reparsed document (fresh node ids) shreds identically.
        let xml = to_xml(state.document());
        let reparsed = Document::parse_str(&xml).expect("mutated document reparses");
        prop_assert_eq!(to_xml(&reparsed), xml, "serialize/parse round trip");
        let mut scratch = bundle.scratch();
        let index = scratch.index_document(&reparsed);
        prop_assert_eq!(
            state.database(&bundle),
            bundle.plan().shred_all(&reparsed, &index),
            "reparsed database"
        );
    }
}
