//! Chaos: the server under a seeded fault schedule.
//!
//! The property this file pins is the PR's central robustness claim:
//! with faults injected at every transport seam (`accept.conn` tears
//! connections at admission, `conn.read` / `conn.write` disconnect,
//! delay and fragment mid-stream), concurrent clients hammering
//! validate/shred/propagate/cover across **live reloads** still observe
//! a correct service —
//!
//! * the server never dies: requests keep completing, no handler panic
//!   is ever recorded, and shutdown still drains;
//! * epochs are monotonic per client, reconnects included;
//! * every *completed* `ok` response is byte-identical to what the
//!   shared renderer produces for the bundle epoch it claims;
//! * failures only ever surface as transport-shaped errors (`io`,
//!   `timeout`, `protocol`, `overloaded`) — never as wrong bytes.
//!
//! The schedule is deterministic per seed ([`Faults::parse`]), so a
//! failing case replays exactly.  The reloads republish the same
//! keys/rules text, which keeps the oracle payloads epoch-independent
//! while still exercising the full parse→prepare→publish path under
//! load.
//!
//! A separate test drives the panic-isolation path end-to-end: the
//! test-only `boom` verb yields `err internal`, the same connection and
//! a fresh one keep serving.

use proptest::prelude::*;
use std::fs;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xmlprop::pipeline::{parse_keys_text, parse_rules_text, CorpusBundle, Faults, Jobs};
use xmlprop::prelude::{Document, PreparedState};
use xmlprop::server::{render, Client, ClientConfig, Request, Response, Server, ServiceConfig};

fn data(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/data")
        .join(name)
}

fn read(name: &str) -> String {
    fs::read_to_string(data(name)).unwrap()
}

fn book_bundle(keys_text: &str, rules_text: &str) -> CorpusBundle {
    CorpusBundle::prepare(
        parse_keys_text(keys_text, "keys").unwrap(),
        parse_rules_text(rules_text, "rules").unwrap(),
    )
}

/// Fast-retry client policy for fault-heavy runs: the defaults' backoff
/// would dominate the test's wall clock.
fn chaos_client_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_secs(5),
        retries: 5,
        backoff: Duration::from_millis(2),
    }
}

/// Connects, absorbing admission-torn connections (`accept.conn` faults
/// kill some attempts before the greeting) up to `deadline`.
fn connect_retry(addr: SocketAddr, deadline: Instant) -> Client {
    loop {
        match Client::connect_with(addr, chaos_client_config()) {
            Ok(client) => return client,
            Err(e) => assert!(
                Instant::now() < deadline,
                "could not connect before the deadline: {e}"
            ),
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The renderer-derived expected responses, one per chaos verb.  Reloads
/// republish identical keys/rules, so these are valid at every epoch —
/// only the `bundle=<epoch>` tag in the header varies.
struct Oracle {
    requests: Vec<Request>,
    /// `(verb, extra, payload)` for each request, in the same order.
    expected: Vec<(&'static str, String, String)>,
}

impl Oracle {
    fn new(keys_text: &str, rules_text: &str, doc_text: &str) -> Oracle {
        let bundle = book_bundle(keys_text, rules_text);
        let doc = Document::parse_str(doc_text).unwrap();
        let mut scratch = bundle.scratch();

        let (v_ok, v_text) = render::validate_report(&bundle, &doc, &mut scratch);
        assert!(v_ok, "fig1.xml satisfies the book keys");
        let (tuples, s_text) =
            render::shred_report(&bundle, &doc, &mut scratch, Some("chapter")).unwrap();
        let fd = render::parse_fd("inBook, number -> name").unwrap();
        let engine = render::require_rule(&bundle, "chapter").unwrap();
        let (p_all, p_text) = render::propagate_report(&engine.propagation_explained(&fd));
        assert!(p_all, "the chapter FD is propagated");
        let (fds, c_text) = render::cover_report(&bundle, Some("U")).unwrap();

        Oracle {
            requests: vec![
                Request::Validate {
                    document: doc_text.to_string(),
                },
                Request::Shred {
                    document: doc_text.to_string(),
                    relation: Some("chapter".into()),
                },
                Request::Propagate {
                    relation: "chapter".into(),
                    fd: "inBook, number -> name".into(),
                },
                Request::Cover {
                    relation: Some("U".into()),
                },
            ],
            expected: vec![
                ("validate", "verdict=ok".into(), v_text),
                ("shred", format!("tuples={tuples}"), s_text),
                ("propagate", "verdict=guaranteed".into(), p_text),
                ("cover", format!("fds={fds}"), c_text),
            ],
        }
    }

    /// The exact response the `i`-th request must produce at `epoch`.
    fn response(&self, i: usize, epoch: u64) -> Response {
        let (verb, extra, payload) = &self.expected[i % self.expected.len()];
        Response::ok(verb, epoch, extra, payload.clone())
    }
}

/// Wire codes a fault is allowed to surface as.  Anything else — a wrong
/// payload, `internal`, a request-level diagnostic — is a real bug.
fn transport_shaped(code: Option<&str>) -> bool {
    matches!(code, Some("io" | "timeout" | "protocol" | "overloaded"))
}

fn chaos_round(seed: u64) {
    const CLIENTS: usize = 3;
    const REQUESTS: usize = 32;
    const RELOADS: u64 = 3;

    let keys_text = read("book_keys.txt");
    let rules_text = read("book_rules.txt");
    let doc_text = read("fig1.xml");
    let oracle = Oracle::new(&keys_text, &rules_text, &doc_text);

    // Every transport seam is on the schedule; rates are low enough that
    // most requests complete, high enough that every client suffers.
    let faults = Faults::parse(
        "accept.conn=6%error,conn.read=5%disconnect,conn.read=4%delay:1,\
         conn.write=5%disconnect,conn.write=10%short:8",
        seed,
    )
    .unwrap();
    let server = Server::bind_with(
        "127.0.0.1:0",
        book_bundle(&keys_text, &rules_text),
        Jobs::new(8).unwrap(),
        ServiceConfig::default(),
        faults,
    )
    .unwrap();
    let state = Arc::clone(server.state());
    let addr = server.local_addr();
    let deadline = Instant::now() + Duration::from_secs(60);

    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for worker in 0..CLIENTS {
            let oracle = &oracle;
            workers.push(scope.spawn(move || {
                let mut client = connect_retry(addr, deadline);
                let mut last_epoch = 0u64;
                let mut completed = 0usize;
                for i in 0..REQUESTS {
                    let request = &oracle.requests[i % oracle.requests.len()];
                    match client.send(request) {
                        Ok(resp) if !resp.is_err() => {
                            let epoch = resp.epoch().expect("ok responses carry bundle=<epoch>");
                            assert!(
                                epoch >= last_epoch,
                                "worker {worker}: epoch went backwards ({last_epoch} -> {epoch})"
                            );
                            let expected = oracle.response(i, epoch);
                            assert_eq!(
                                resp.header, expected.header,
                                "worker {worker}: header diverges at epoch {epoch}"
                            );
                            assert_eq!(
                                resp.payload, expected.payload,
                                "worker {worker}: payload diverges at epoch {epoch}"
                            );
                            last_epoch = epoch;
                            completed += 1;
                        }
                        Ok(resp) => {
                            // A server-completed error: the only legal
                            // causes are injected transport faults.
                            assert!(
                                transport_shaped(resp.wire_code()),
                                "worker {worker}: unexpected error response `{}`",
                                resp.header
                            );
                            client = connect_retry(addr, deadline);
                        }
                        Err(e) => {
                            use xmlprop::ErrorKind;
                            assert!(
                                matches!(
                                    e.kind(),
                                    ErrorKind::Io | ErrorKind::Timeout | ErrorKind::Overloaded
                                ),
                                "worker {worker}: unexpected client failure: {e}"
                            );
                            client = connect_retry(addr, deadline);
                        }
                    }
                }
                completed
            }));
        }

        // The admin publishes identical bundles while workers are
        // mid-flight.  Reloads are never retried by the client (a retry
        // could double-publish), so under faults the admin must requery
        // the epoch and decide for itself whether the publish landed.
        let mut admin = connect_retry(addr, deadline);
        let mut epoch = 1u64;
        while epoch < 1 + RELOADS {
            assert!(
                Instant::now() < deadline,
                "admin: could not land {RELOADS} reloads before the deadline (epoch {epoch})"
            );
            match admin.send(&Request::Reload {
                keys: keys_text.clone(),
                rules: rules_text.clone(),
            }) {
                Ok(resp) if !resp.is_err() => {
                    let published = resp.epoch().expect("ok reload carries bundle=<epoch>");
                    assert!(
                        published > epoch,
                        "admin: reload published a stale epoch ({epoch} -> {published})"
                    );
                    epoch = published;
                }
                outcome => {
                    if let Ok(resp) = outcome {
                        assert!(
                            transport_shaped(resp.wire_code()),
                            "admin: unexpected reload error `{}`",
                            resp.header
                        );
                    }
                    // The reload may or may not have been applied before
                    // the connection tore; ping (retried) reveals where
                    // the epoch actually is.
                    admin = connect_retry(addr, deadline);
                    if let Ok(resp) = admin.send(&Request::Ping) {
                        if let Some(current) = resp.epoch() {
                            epoch = epoch.max(current);
                        }
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }

        for (worker, handle) in workers.into_iter().enumerate() {
            let completed = handle.join().expect("worker panicked");
            assert!(
                completed >= REQUESTS / 2,
                "worker {worker}: only {completed}/{REQUESTS} requests completed — \
                 the service degraded far beyond the injected fault rate"
            );
        }
    });

    // The server survived: it still drains, epochs moved forward, and no
    // handler panic was ever recorded.
    server.shutdown();
    assert!(state.epoch() > RELOADS, "final epoch {}", state.epoch());
    assert_eq!(
        state.health().panics(),
        0,
        "no handler may panic under faults"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// Seeded chaos: see [`chaos_round`].  Three seeds per run; each
    /// schedule is deterministic, so failures replay.
    #[test]
    fn concurrent_clients_stay_correct_across_reloads_under_faults(seed in 0u64..1_000_000) {
        chaos_round(seed);
    }
}

#[test]
fn boom_yields_err_internal_and_the_service_keeps_serving() {
    let keys_text = read("book_keys.txt");
    let rules_text = read("book_rules.txt");
    let doc_text = read("fig1.xml");
    let server = Server::bind(
        "127.0.0.1:0",
        book_bundle(&keys_text, &rules_text),
        Jobs::new(4).unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();

    let mut client = Client::connect(addr).unwrap();
    let resp = client.send(&Request::Boom).unwrap();
    assert!(resp.is_err(), "boom must fail: {}", resp.header);
    assert_eq!(resp.wire_code(), Some("internal"));
    assert!(
        resp.header.contains("panicked"),
        "the diagnostic names the panic: {}",
        resp.header
    );
    assert_eq!(server.state().health().panics(), 1);

    // Panic isolation keeps the *same* connection serving...
    let ping = client.send(&Request::Ping).unwrap();
    assert!(!ping.is_err(), "session died after boom: {}", ping.header);

    // ...and a fresh connection works end to end.
    let mut fresh = Client::connect(addr).unwrap();
    let resp = fresh
        .send(&Request::Validate {
            document: doc_text.clone(),
        })
        .unwrap();
    assert_eq!(resp.epoch(), Some(1));
    assert!(resp.header.contains("verdict=ok"), "{}", resp.header);

    let report = server.shutdown();
    assert!(report.drained, "idle sessions drain cleanly");
}
