//! Hot-swap correctness under load, and server/CLI output equivalence.
//!
//! The load test is the PR's central claim: reader connections keep
//! issuing requests while an admin publishes successive bundles, and
//! **every** response must be wholly consistent with exactly one
//! published bundle version — the payload a response carries always
//! matches the `bundle=<epoch>` its header claims, with epochs moving
//! monotonically.  Torn reads are impossible by construction (epoch and
//! bundle travel in one `Arc` allocation); this test would catch a
//! regression that reintroduced them.
//!
//! The property test pins the other API-surface claim: a served
//! `validate`/`shred` response body is byte-identical to the one-shot
//! CLI output for the same inputs, across randomly generated workloads.

use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use xmlprop::pipeline::{parse_keys_text, parse_rules_text, CorpusBundle, Jobs, PreparedState};
use xmlprop::prelude::Document;
use xmlprop::server::{render, Client, Request, Server};
use xmlprop::workload::{generate, generate_corpus, CorpusConfig, DocConfig, WorkloadConfig};
use xmlprop::xmltree::to_xml;

fn data(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/data")
        .join(name)
}

fn read(name: &str) -> String {
    fs::read_to_string(data(name)).unwrap()
}

/// The validate payload the shared renderer produces for `keys` over the
/// book rules — the oracle each response is checked against, keyed by the
/// epoch its header claims.
fn validate_payload(keys_text: &str, rules_text: &str, doc_text: &str) -> String {
    let bundle = CorpusBundle::prepare(
        parse_keys_text(keys_text, "keys").unwrap(),
        parse_rules_text(rules_text, "rules").unwrap(),
    );
    let doc = Document::parse_str(doc_text).unwrap();
    let mut scratch = bundle.scratch();
    render::validate_report(&bundle, &doc, &mut scratch).1
}

#[test]
fn readers_never_block_or_observe_torn_bundles_across_live_reloads() {
    const READERS: usize = 4;
    const RELOADS: u64 = 3;
    let rules_text = read("book_rules.txt");
    let keys_a = read("book_keys.txt");
    // A deliberately different key set so the two payloads differ: a torn
    // publication (new epoch, old bundle or vice versa) becomes a payload
    // mismatch.
    let keys_b = "K1: (\u{3b5}, (//book, {@isbn}))\n".to_string();
    let doc_text = read("fig1.xml");

    let payload_a = validate_payload(&keys_a, &rules_text, &doc_text);
    let payload_b = validate_payload(&keys_b, &rules_text, &doc_text);
    assert_ne!(payload_a, payload_b, "the two bundles must be observable");

    // Epoch 1 serves keys_a; each reload alternates: even epochs keys_b,
    // odd epochs keys_a.
    let final_epoch = 1 + RELOADS;
    let payload_for = |epoch: u64| {
        if epoch % 2 == 1 {
            payload_a.clone()
        } else {
            payload_b.clone()
        }
    };

    let bundle = CorpusBundle::prepare(
        parse_keys_text(&keys_a, "keys").unwrap(),
        parse_rules_text(&rules_text, "rules").unwrap(),
    );
    let server = Server::bind("127.0.0.1:0", bundle, Jobs::new(8).unwrap()).unwrap();
    let addr = server.local_addr();
    let deadline = Instant::now() + Duration::from_secs(60);

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for reader in 0..READERS {
            let doc_text = &doc_text;
            let payload_for = &payload_for;
            readers.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut last_epoch = 0;
                let mut responses = 0u64;
                loop {
                    let resp = client
                        .send(&Request::Validate {
                            document: doc_text.clone(),
                        })
                        .unwrap();
                    let epoch = resp.epoch().expect("ok responses carry bundle=<epoch>");
                    assert!(
                        epoch >= last_epoch,
                        "reader {reader}: epoch went backwards ({last_epoch} -> {epoch})"
                    );
                    assert_eq!(
                        resp.payload,
                        payload_for(epoch),
                        "reader {reader}: payload inconsistent with claimed epoch {epoch}"
                    );
                    last_epoch = epoch;
                    responses += 1;
                    if epoch == final_epoch {
                        return responses;
                    }
                    assert!(
                        Instant::now() < deadline,
                        "reader {reader}: final epoch {final_epoch} never observed \
                         ({responses} responses) — are readers blocked on the swap?"
                    );
                }
            }));
        }

        // The admin publishes while the readers are mid-flight.  Each
        // reload parses and prepares a full bundle, so readers get real
        // work to overlap with.
        let mut admin = Client::connect(addr).unwrap();
        for i in 0..RELOADS {
            let target_epoch = 2 + i;
            let keys = if target_epoch % 2 == 1 {
                &keys_a
            } else {
                &keys_b
            };
            let resp = admin
                .send(&Request::Reload {
                    keys: keys.clone(),
                    rules: rules_text.clone(),
                })
                .unwrap();
            assert_eq!(
                resp.epoch(),
                Some(target_epoch),
                "reloads publish sequential epochs: {}",
                resp.header
            );
            // Let readers serve a few requests against this epoch before
            // the next swap lands.
            std::thread::sleep(Duration::from_millis(25));
        }

        for (reader, handle) in readers.into_iter().enumerate() {
            let responses = handle.join().expect("reader panicked");
            assert!(responses > 0, "reader {reader} never got a response");
        }
    });
    server.shutdown();
}

#[test]
fn stale_connections_rederive_scratch_after_a_swap() {
    // One client connects, works against epoch 1, then the bundle is
    // swapped for a *different schema* (different labels, different
    // rules).  The same connection must answer correctly against epoch 2
    // — its cached scratch may not leak epoch-1 state.
    let rules_text = read("book_rules.txt");
    let keys_text = read("book_keys.txt");
    let doc_text = read("fig1.xml");
    let keys2 = "Q1: (\u{3b5}, (//thing, {@id}))\n";
    let rules2 = "rule thing(id) { xt := xr//thing; xi := xt/@id; id := value(xi); }\n";
    let doc2 = "<r><thing id='1'/><thing id='1'/></r>";

    let bundle = CorpusBundle::prepare(
        parse_keys_text(&keys_text, "keys").unwrap(),
        parse_rules_text(&rules_text, "rules").unwrap(),
    );
    let server = Server::bind("127.0.0.1:0", bundle, Jobs::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let before = client
        .send(&Request::Validate {
            document: doc_text.clone(),
        })
        .unwrap();
    assert_eq!(before.epoch(), Some(1));
    assert!(before.header.contains("verdict=ok"));

    let reload = client
        .send(&Request::Reload {
            keys: keys2.into(),
            rules: rules2.into(),
        })
        .unwrap();
    assert_eq!(reload.epoch(), Some(2));

    let after = client
        .send(&Request::Validate {
            document: doc2.into(),
        })
        .unwrap();
    assert_eq!(after.epoch(), Some(2));
    assert!(
        after.header.contains("verdict=fail"),
        "duplicate @id must violate the swapped-in key: {}",
        after.header
    );
    assert_eq!(
        after.payload,
        validate_payload(keys2, rules2, doc2),
        "post-swap payload comes wholly from the new bundle"
    );
    server.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// For random workloads and documents, a served validate/shred
    /// response body equals the one-shot CLI stdout for the same inputs.
    #[test]
    fn served_responses_byte_match_one_shot_cli_output(
        fields in 8usize..12,
        depth in 2usize..4,
        keys in 6usize..9,
        seed in 0u64..1000,
        branching in 1usize..4,
    ) {
        let w = generate(&WorkloadConfig::new(fields, depth, keys).with_seed(seed));
        let (docs, _) = generate_corpus(&w, &CorpusConfig {
            documents: 1,
            base: DocConfig {
                branching,
                omission_probability: 0.25,
                seed: seed ^ 0xc0ffee,
                depth: None,
            },
        });
        let doc_text = to_xml(&docs[0]);
        let keys_text: String = w.sigma.iter().map(|k| format!("{k}\n")).collect();
        let rules_text = format!("{}", w.universal);

        // Round-trip sanity: the serialized fixtures parse back.
        let sigma = parse_keys_text(&keys_text, "keys").unwrap();
        let transformation = parse_rules_text(&rules_text, "rules").unwrap();
        prop_assert_eq!(sigma.len(), w.sigma.len());

        let dir = std::env::temp_dir().join(format!(
            "xmlprop-swap-prop-{}-{seed}-{fields}-{depth}-{keys}-{branching}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        let doc_path = dir.join("doc.xml");
        let keys_path = dir.join("keys.txt");
        let rules_path = dir.join("rules.txt");
        fs::write(&doc_path, &doc_text).unwrap();
        fs::write(&keys_path, &keys_text).unwrap();
        fs::write(&rules_path, &rules_text).unwrap();

        let bundle = CorpusBundle::prepare(sigma, transformation);
        let server = Server::bind("127.0.0.1:0", bundle, Jobs::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();

        let cli = |args: &[&str]| {
            let out = std::process::Command::new(env!("CARGO_BIN_EXE_xmlprop-cli"))
                .args(args)
                .output()
                .expect("failed to launch xmlprop-cli");
            String::from_utf8(out.stdout).expect("CLI output is UTF-8")
        };

        let served = client
            .send(&Request::Validate { document: doc_text.clone() })
            .unwrap();
        let one_shot = cli(&[
            "validate",
            doc_path.to_str().unwrap(),
            keys_path.to_str().unwrap(),
        ]);
        prop_assert_eq!(&served.payload, &one_shot, "validate payload == CLI stdout");

        let served = client
            .send(&Request::Shred { document: doc_text.clone(), relation: None })
            .unwrap();
        let one_shot = cli(&[
            "shred",
            doc_path.to_str().unwrap(),
            rules_path.to_str().unwrap(),
        ]);
        prop_assert_eq!(&served.payload, &one_shot, "shred payload == CLI stdout");

        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }
}
