//! Parallel/sequential equivalence of the corpus pipeline.
//!
//! For random workloads and random corpora — including documents mutated
//! to *violate* their key set, and documents whose `NodeId` order diverges
//! from document order — the parallel pipeline's merged output (shredded
//! databases, violation sets, per-document stats, propagation covers) must
//! be **bit-for-bit identical** to the sequential facade at every thread
//! count.  The merge is deterministic by document index, never by
//! completion order; this is the property that pins it.
//!
//! The thread counts exercised are `{1, 2, 8}` plus, when the
//! `XMLPROP_TEST_JOBS` environment variable is set (CI runs the suite a
//! second time with `XMLPROP_TEST_JOBS=4`), that value.  The whole grid is
//! run twice: once through the DOM path and once with the streaming toggle
//! (`CorpusOptions { stream: true, .. }`), which must reproduce the DOM
//! outputs field for field.

use proptest::prelude::*;
use xmlprop::pipeline::{CorpusBundle, CorpusOptions, Jobs};
use xmlprop::workload::{generate, generate_corpus, CorpusConfig, DocConfig, WorkloadConfig};
use xmlprop::xmltransform::Transformation;
use xmlprop::xmltree::{to_xml, Document};

/// The thread counts every equivalence check runs at.
fn jobs_grid() -> Vec<usize> {
    let mut grid = vec![1, 2, 8];
    if let Ok(value) = std::env::var("XMLPROP_TEST_JOBS") {
        let extra: usize = value
            .parse()
            .expect("XMLPROP_TEST_JOBS must be a positive integer");
        if !grid.contains(&extra) {
            grid.push(
                Jobs::new(extra)
                    .expect("XMLPROP_TEST_JOBS out of range")
                    .get(),
            );
        }
    }
    grid
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn parallel_pipeline_is_bit_for_bit_sequential(
        fields in 8usize..14,
        depth in 2usize..4,
        keys in 6usize..10,
        seed in 0u64..1000,
        documents in 1usize..7,
        branching in 1usize..4,
        mutate in prop::collection::vec(prop_oneof![Just(true), Just(false)], 8..9),
    ) {
        let w = generate(&WorkloadConfig::new(fields, depth, keys).with_seed(seed));
        let (mut docs, _) = generate_corpus(&w, &CorpusConfig {
            documents,
            base: DocConfig {
                branching,
                omission_probability: 0.25,
                seed: seed ^ 0xc0ffee,
                depth: None,
            },
        });
        // Break Σ in a random subset of documents: an extra `e0` element
        // without its identifier attribute violates the chain key (and,
        // appended under the root, splits NodeId order from document
        // order, exercising the DFS-numbered paths).
        for (i, doc) in docs.iter_mut().enumerate() {
            if mutate[i % mutate.len()] {
                let root = doc.root();
                doc.add_element(root, "e0");
            }
        }

        let transformation = {
            let mut t = Transformation::new(Vec::new());
            t.add_rule(w.universal.clone());
            t
        };
        let bundle = CorpusBundle::new(w.sigma.clone(), transformation);
        let sequential = bundle.run_sequential(&docs, &CorpusOptions::default());

        // Sanity on the oracle itself: mutated documents must violate.
        for (i, outcome) in sequential.documents.iter().enumerate() {
            prop_assert_eq!(
                !outcome.violations.is_empty(),
                mutate[i % mutate.len()],
                "document {} violation presence", i
            );
        }
        // Covers are the prepared engines' covers, rule for rule.
        prop_assert_eq!(sequential.covers.len(), 1);
        prop_assert_eq!(
            &sequential.covers[0].cover,
            &bundle.engines()[0].minimum_cover()
        );

        for jobs in jobs_grid() {
            let options = CorpusOptions::with_jobs(Jobs::new(jobs).unwrap());
            let parallel = bundle.run(&docs, &options);
            prop_assert_eq!(
                &parallel, &sequential,
                "jobs = {} diverged from the sequential facade", jobs
            );
        }

        // The streaming toggle, at every width, over the corpus as it
        // would arrive from disk: serialize + reparse keeps arena order =
        // document order, which aligns streaming's pre-order node ids
        // with the DOM path's arena ids in the violation sets (the
        // in-memory mutation above deliberately breaks that alignment for
        // the DOM-only runs).  The frontier stat is streaming-only, so the
        // comparison is field-wise.
        let reparsed: Vec<Document> = docs
            .iter()
            .map(|d| Document::parse_str(&to_xml(d)).expect("corpus documents reparse"))
            .collect();
        let dom_ref = bundle.run_sequential(&reparsed, &CorpusOptions::default());
        for jobs in jobs_grid() {
            let options = CorpusOptions {
                stream: true,
                ..CorpusOptions::with_jobs(Jobs::new(jobs).unwrap())
            };
            let streamed = bundle.run(&reparsed, &options);
            prop_assert_eq!(streamed.documents.len(), dom_ref.documents.len());
            for (i, (s, d)) in streamed.documents.iter().zip(&dom_ref.documents).enumerate() {
                prop_assert_eq!(&s.database, &d.database, "stream jobs={} doc {}", jobs, i);
                prop_assert_eq!(&s.violations, &d.violations, "stream jobs={} doc {}", jobs, i);
                prop_assert_eq!(s.nodes, d.nodes, "stream jobs={} doc {}", jobs, i);
                prop_assert_eq!(s.tuples, d.tuples, "stream jobs={} doc {}", jobs, i);
            }
            prop_assert_eq!(&streamed.covers, &dom_ref.covers);
            prop_assert_eq!(streamed.stats.violations, dom_ref.stats.violations);
            prop_assert_eq!(streamed.stats.tuples, dom_ref.stats.tuples);
        }
    }
}

/// A fixed (non-proptest) smoke check that the env-var override is honored
/// in the grid, so the CI double-run actually exercises a different width.
#[test]
fn jobs_grid_includes_the_env_override() {
    let grid = jobs_grid();
    assert!(grid.contains(&1) && grid.contains(&2) && grid.contains(&8));
    if let Ok(value) = std::env::var("XMLPROP_TEST_JOBS") {
        let extra: usize = value.parse().unwrap();
        assert!(grid.contains(&extra));
    }
}
