//! Adversarial clients against a live server: protocol fuzz, slow-loris,
//! overload shedding and graceful drain — the degradation guarantees of
//! the README's robustness table, driven over real TCP.
//!
//! The fuzz property: whatever bytes a client writes — random garbage,
//! truncated frames, oversized length headers, a disconnect mid-body —
//! the server answers with an `err …` response or closes the connection
//! cleanly, never hangs past its timeouts, never panics, and keeps
//! serving well-formed clients afterwards.

use proptest::prelude::*;
use std::fs;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::time::Duration;
use xmlprop::pipeline::{parse_keys_text, parse_rules_text, CorpusBundle, Faults, Jobs};
use xmlprop::server::{Client, Request, Server, ServiceConfig};
use xmlprop::ErrorKind;

fn data(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/data")
        .join(name);
    fs::read_to_string(path).unwrap()
}

fn book_bundle() -> CorpusBundle {
    CorpusBundle::prepare(
        parse_keys_text(&data("book_keys.txt"), "keys").unwrap(),
        parse_rules_text(&data("book_rules.txt"), "rules").unwrap(),
    )
}

/// Writes `bytes` to a fresh connection, half-closes the write side and
/// drains whatever the server answers (bounded by a read timeout so a
/// hung server fails the test instead of wedging it).  Returns the
/// server's output as text.
fn fuzz_once(addr: std::net::SocketAddr, bytes: &[u8]) -> String {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut write_half = stream.try_clone().unwrap();
    // The write may legitimately fail midway: the server is allowed to
    // slam the door on garbage before we finish sending it.
    let _ = write_half.write_all(bytes);
    let _ = write_half.flush();
    let _ = stream.shutdown(Shutdown::Write);

    let mut out = Vec::new();
    let mut reader = stream;
    let mut buf = [0u8; 4096];
    loop {
        match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(e) => panic!("server neither answered nor hung up: {e}"),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Every fuzz session must look like: the greeting, then at most one
/// `err …` response (the server closes after a protocol error), then
/// EOF.  Garbage never earns an `ok`.
fn assert_rejected(transcript: &str) {
    let mut lines = transcript.lines();
    let greeting = lines.next().expect("the greeting always arrives");
    assert!(
        greeting.starts_with("xmlprop/"),
        "unexpected greeting `{greeting}`"
    );
    if let Some(first) = lines.next() {
        assert!(
            first.starts_with("err "),
            "garbage earned a non-error response: `{first}`"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Random bytes, truncated frames, oversized headers and mid-body
    /// disconnects: always `err …` or a clean close, and the server keeps
    /// serving a well-formed client afterwards.
    #[test]
    fn fuzzed_sessions_are_rejected_and_the_server_survives(
        mode in 0usize..4,
        garbage in proptest::collection::vec(0u8..=255, 1..160),
        declared in 1usize..4096,
    ) {
        let server = Server::bind("127.0.0.1:0", book_bundle(), Jobs::new(4).unwrap()).unwrap();
        let addr = server.local_addr();

        let bytes: Vec<u8> = match mode {
            // Raw garbage; '\n' and lowercase bytes remapped so no random
            // line can spell a valid lowercase verb — anything else would
            // make "garbage never earns an ok" flaky by design.
            0 => garbage
                .iter()
                .map(|&b| if b == b'\n' || b.is_ascii_lowercase() { b'#' } else { b })
                .chain(*b"\n")
                .collect(),
            // An oversized length header: rejected before allocation.
            1 => format!("validate {}\n", usize::MAX / 2).into_bytes(),
            // A truncated frame: the header promises more body bytes than
            // ever arrive before the disconnect.
            2 => {
                let body = &garbage[..garbage.len().min(declared.saturating_sub(1))];
                let mut b = format!("validate {declared}\n").into_bytes();
                b.extend_from_slice(body);
                b
            }
            // A torn request line: no terminating newline, then EOF.
            _ => b"cover ".to_vec(),
        };

        let transcript = fuzz_once(addr, &bytes);
        assert_rejected(&transcript);

        // The server survived: a well-formed session still works.
        let mut client = Client::connect(addr).unwrap();
        let resp = client.send(&Request::Ping).unwrap();
        prop_assert!(!resp.is_err(), "ping after fuzz failed: {}", resp.header);
        prop_assert_eq!(resp.epoch(), Some(1));
        prop_assert_eq!(server.state().health().panics(), 0);
        server.shutdown();
    }
}

#[test]
fn slow_loris_requests_time_out_with_err_timeout_over_tcp() {
    let config = ServiceConfig {
        read_timeout: Duration::from_millis(200),
        request_deadline: Duration::from_millis(150),
        ..ServiceConfig::default()
    };
    let server = Server::bind_with(
        "127.0.0.1:0",
        book_bundle(),
        Jobs::new(4).unwrap(),
        config,
        Faults::disabled(),
    )
    .unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Start a request, then trickle bytes slower than the deadline allows.
    stream.write_all(b"vali").unwrap();
    for _ in 0..10 {
        std::thread::sleep(Duration::from_millis(40));
        if stream.write_all(b" ").is_err() {
            break; // the server already gave up on us — that's the point
        }
    }

    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    let err_line = out
        .lines()
        .find(|l| l.starts_with("err "))
        .unwrap_or_else(|| panic!("no error response in transcript:\n{out}"));
    assert!(
        err_line.starts_with("err timeout "),
        "slow-loris must surface as a timeout: `{err_line}`"
    );
    assert!(server.state().health().timeouts() >= 1);

    // The thread was reclaimed, not wedged: a fast client still gets through.
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert!(!client.send(&Request::Ping).unwrap().is_err());
    server.shutdown();
}

#[test]
fn saturated_server_sheds_with_err_overloaded_and_the_client_classifies_it() {
    let config = ServiceConfig {
        shed_wait: Duration::from_millis(50),
        ..ServiceConfig::default()
    };
    let server = Server::bind_with(
        "127.0.0.1:0",
        book_bundle(),
        Jobs::new(1).unwrap(),
        config,
        Faults::disabled(),
    )
    .unwrap();

    // The single slot is held by a live session...
    let _holder = Client::connect(server.local_addr()).unwrap();
    // ...so the next connection is shed, and the client surfaces it as
    // the typed Overloaded error straight from the greeting line.
    let err = Client::connect(server.local_addr()).expect_err("the second connection must be shed");
    assert_eq!(err.kind(), ErrorKind::Overloaded, "{err}");
    assert!(err.to_string().contains("capacity"), "{err}");
    assert_eq!(server.state().health().sheds(), 1);

    drop(_holder);
    let report = server.shutdown();
    assert!(report.drained, "the held session drains once dropped");
}

#[test]
fn graceful_shutdown_drains_idle_sessions() {
    let server = Server::bind("127.0.0.1:0", book_bundle(), Jobs::new(4).unwrap()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    assert!(!client.send(&Request::Ping).unwrap().is_err());

    let report = server.shutdown();
    assert!(report.drained, "idle sessions must not require force");
    assert_eq!(report.forced, 0);

    // The drained client sees a dead transport, not a half-answered
    // request.
    let err = client.send(&Request::Reload {
        keys: String::new(),
        rules: String::new(),
    });
    assert!(err.is_err(), "requests after shutdown must fail");
}
