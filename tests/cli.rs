//! Smoke tests for the `xmlprop-cli` binary over the sample data files in
//! `examples/data/`.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xmlprop-cli"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to launch xmlprop-cli")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).to_string()
}

#[test]
fn validate_reports_all_keys_ok() {
    let out = run(&[
        "validate",
        "examples/data/fig1.xml",
        "examples/data/book_keys.txt",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert_eq!(text.matches("[ok]").count(), 7);
    assert!(!text.contains("[FAIL]"));
}

#[test]
fn propagate_answers_both_ways() {
    let positive = run(&[
        "propagate",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "chapter",
        "inBook, number -> name",
    ]);
    assert!(positive.status.success());
    assert!(stdout(&positive).contains("GUARANTEED"));

    let negative = run(&[
        "propagate",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "chapter",
        "number -> name",
    ]);
    assert!(
        !negative.status.success(),
        "non-propagated FD must exit non-zero"
    );
    assert!(stdout(&negative).contains("NOT GUARANTEED"));
}

#[test]
fn cover_prints_the_example_3_1_cover() {
    let out = run(&[
        "cover",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "U",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert_eq!(text.lines().count(), 4);
    assert!(text.contains("bookIsbn -> bookTitle"));
    assert!(text.contains("bookIsbn, chapNum, secNum -> secName"));
}

#[test]
fn refine_emits_sql() {
    let out = run(&[
        "refine",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "U",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("CREATE TABLE"));
    assert!(text.contains("PRIMARY KEY"));
    assert!(text.contains("-- BCNF decomposition"));
    assert!(text.contains("-- 3NF synthesis"));
}

#[test]
fn shred_prints_the_chapter_instance() {
    let out = run(&[
        "shred",
        "examples/data/fig1.xml",
        "examples/data/book_rules.txt",
        "chapter",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("Getting Acquainted"));
    assert!(text.contains("inBook"));
}

#[test]
fn import_xsd_converts_keys() {
    let out = run(&["import-xsd", "examples/data/book_schema.xsd"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("bookIsbn"));
    assert!(text.contains("@isbn"));
}

#[test]
fn unknown_subcommand_fails_with_guidance() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = run(&[
        "validate",
        "no/such/file.xml",
        "examples/data/book_keys.txt",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn help_prints_usage() {
    let out = run(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}
