//! Smoke tests for the `xmlprop-cli` binary over the sample data files in
//! `examples/data/`.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xmlprop-cli"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("failed to launch xmlprop-cli")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).to_string()
}

#[test]
fn validate_reports_all_keys_ok() {
    let out = run(&[
        "validate",
        "examples/data/fig1.xml",
        "examples/data/book_keys.txt",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert_eq!(text.matches("[ok]").count(), 7);
    assert!(!text.contains("[FAIL]"));
}

#[test]
fn propagate_answers_both_ways() {
    let positive = run(&[
        "propagate",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "chapter",
        "inBook, number -> name",
    ]);
    assert!(positive.status.success());
    assert!(stdout(&positive).contains("GUARANTEED"));

    let negative = run(&[
        "propagate",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "chapter",
        "number -> name",
    ]);
    assert!(
        !negative.status.success(),
        "non-propagated FD must exit non-zero"
    );
    assert!(stdout(&negative).contains("NOT GUARANTEED"));
}

#[test]
fn cover_prints_the_example_3_1_cover() {
    let out = run(&[
        "cover",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "U",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert_eq!(text.lines().count(), 4);
    assert!(text.contains("bookIsbn -> bookTitle"));
    assert!(text.contains("bookIsbn, chapNum, secNum -> secName"));
}

#[test]
fn refine_emits_sql() {
    let out = run(&[
        "refine",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "U",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("CREATE TABLE"));
    assert!(text.contains("PRIMARY KEY"));
    assert!(text.contains("-- BCNF decomposition"));
    assert!(text.contains("-- 3NF synthesis"));
}

#[test]
fn shred_prints_the_chapter_instance() {
    let out = run(&[
        "shred",
        "examples/data/fig1.xml",
        "examples/data/book_rules.txt",
        "chapter",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("Getting Acquainted"));
    assert!(text.contains("inBook"));
}

#[test]
fn import_xsd_converts_keys() {
    let out = run(&["import-xsd", "examples/data/book_schema.xsd"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("bookIsbn"));
    assert!(text.contains("@isbn"));
}

#[test]
fn query_runs_the_keyed_join_one_shot() {
    let out = run(&[
        "query",
        "examples/data/fig1.xml",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "select U.chapName, chapter.name from U join chapter on bookIsbn = inBook and chapNum = number",
    ]);
    assert!(
        out.status.success(),
        "query failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = stdout(&out);
    assert!(text.contains("[key lookup]"), "got: {text}");
    assert!(text.contains("(3 rows)"), "got: {text}");
}

/// Degenerate query shapes stay well-formed: a zero-attribute projection
/// prints no table but a row count, and a no-match filter prints an empty
/// table with `(0 rows)` — both exit 0.
#[test]
fn query_degenerate_shapes_are_well_formed() {
    let empty_select = run(&[
        "query",
        "examples/data/fig1.xml",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "select from chapter",
    ]);
    assert!(empty_select.status.success());
    assert!(stdout(&empty_select).contains("(1 row)"));

    let no_match = run(&[
        "query",
        "examples/data/fig1.xml",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "select title from book where isbn = '999'",
    ]);
    assert!(no_match.status.success());
    assert!(
        stdout(&no_match).contains("(0 rows)"),
        "got: {}",
        stdout(&no_match)
    );
}

/// Query errors ride the shared error table: a syntax error and an unknown
/// relation both exit 2 with the table's origin prefixes.
#[test]
fn query_errors_share_the_error_table() {
    let parse = run(&[
        "query",
        "examples/data/fig1.xml",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "selec oops",
    ]);
    assert_eq!(parse.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&parse.stderr).contains("query:"));

    let relation = run(&[
        "query",
        "examples/data/fig1.xml",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "select x from nosuchrelation",
    ]);
    assert_eq!(relation.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&relation.stderr).contains("no rule for relation"));
}

#[test]
fn unknown_subcommand_fails_with_guidance() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = run(&[
        "validate",
        "no/such/file.xml",
        "examples/data/book_keys.txt",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn help_prints_usage() {
    let out = run(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("USAGE"));
    // Every subcommand and flag; the in-binary unit test pins the full
    // table, this smokes the actual `help` output end to end.
    for token in [
        "validate",
        "propagate",
        "cover",
        "refine",
        "shred",
        "mutate",
        "query",
        "serve",
        "import-xsd",
        "help",
        "--jobs",
        "--stream",
        "--addr",
        "--script",
        "--read-timeout-ms",
        "--request-deadline-ms",
        "--shed-wait-ms",
        "--drain-ms",
        "--faults",
        "--fault-seed",
    ] {
        assert!(text.contains(token), "help is missing `{token}`:\n{text}");
    }
}

// ---------------------------------------------------------------------
// Batch (corpus-directory) modes
// ---------------------------------------------------------------------

/// A scratch corpus directory, removed on drop.
struct CorpusDir(std::path::PathBuf);

impl CorpusDir {
    fn new(test: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("xmlprop-cli-{test}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create corpus dir");
        CorpusDir(dir)
    }

    fn write(&self, name: &str, content: &str) {
        std::fs::write(self.0.join(name), content).expect("write corpus file");
    }

    fn copy_fig1(&self, name: &str) {
        let fig1 = format!("{}/examples/data/fig1.xml", env!("CARGO_MANIFEST_DIR"));
        std::fs::copy(fig1, self.0.join(name)).expect("copy fig1");
    }

    fn path(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for CorpusDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn batch_validate_processes_a_directory() {
    let dir = CorpusDir::new("batch-validate");
    dir.copy_fig1("a.xml");
    dir.copy_fig1("b.xml");
    let out = run(&[
        "validate",
        "--jobs",
        "2",
        dir.path(),
        "examples/data/book_keys.txt",
    ]);
    assert!(out.status.success(), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("[ok]   a.xml"));
    assert!(text.contains("[ok]   b.xml"));
    assert!(text.contains("2 documents: 2 ok"));
}

#[test]
fn batch_validate_reports_malformed_files_and_keeps_going() {
    let dir = CorpusDir::new("batch-validate-malformed");
    dir.copy_fig1("a.xml");
    dir.write("broken.xml", "<unclosed");
    dir.copy_fig1("z.xml");
    let out = run(&[
        "validate",
        "--jobs=2",
        dir.path(),
        "examples/data/book_keys.txt",
    ]);
    // The malformed file makes the batch fail overall (exit 1, not the
    // usage-error 2) but every other file is still processed.
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.contains("[ok]   a.xml"));
    assert!(text.contains("[ok]   z.xml"));
    assert!(
        text.contains("[SKIP] broken.xml:"),
        "the failing file must be named: {text}"
    );
    assert!(text.contains("1 unparseable"));
}

#[test]
fn batch_validate_flags_violating_documents_by_name() {
    let dir = CorpusDir::new("batch-validate-violations");
    dir.copy_fig1("good.xml");
    dir.write("dup.xml", r#"<db><book isbn="1"/><book isbn="1"/></db>"#);
    let out = run(&["validate", dir.path(), "examples/data/book_keys.txt"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.contains("[FAIL] dup.xml"));
    assert!(text.contains("[ok]   good.xml"));
}

#[test]
fn batch_shred_reports_per_file_tuple_counts() {
    let dir = CorpusDir::new("batch-shred");
    dir.copy_fig1("a.xml");
    dir.copy_fig1("b.xml");
    let out = run(&[
        "shred",
        "--jobs",
        "2",
        dir.path(),
        "examples/data/book_rules.txt",
    ]);
    assert!(out.status.success(), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("a.xml: "));
    assert!(text.contains("b.xml: "));
    assert!(text.contains("book: 2"));
    assert!(text.contains("2 documents shredded"));
}

#[test]
fn batch_shred_with_a_relation_filter_counts_only_that_relation() {
    let dir = CorpusDir::new("batch-shred-filter");
    dir.copy_fig1("a.xml");
    let out = run(&[
        "shred",
        dir.path(),
        "examples/data/book_rules.txt",
        "chapter",
    ]);
    assert!(out.status.success(), "{}", stdout(&out));
    let text = stdout(&out);
    // Only the requested relation is shredded and counted: fig1 has 3
    // chapter tuples, and the summary total must agree with the per-file
    // line instead of summing relations the user filtered out.
    assert!(text.contains("a.xml: chapter: 3"), "{text}");
    assert!(!text.contains("book:"), "{text}");
    assert!(text.contains("3 tuples total"), "{text}");

    let unknown = run(&["shred", dir.path(), "examples/data/book_rules.txt", "nope"]);
    assert_eq!(unknown.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("no rule for relation"));
}

#[test]
fn batch_stream_matches_the_dom_batch_and_names_malformed_files() {
    let dir = CorpusDir::new("batch-stream");
    dir.copy_fig1("a.xml");
    dir.write("broken.xml", "<unclosed");
    dir.write("dup.xml", r#"<db><book isbn="1"/><book isbn="1"/></db>"#);
    let stream = run(&[
        "validate",
        "--stream",
        "--jobs",
        "2",
        dir.path(),
        "examples/data/book_keys.txt",
    ]);
    let dom = run(&[
        "validate",
        "--jobs",
        "2",
        dir.path(),
        "examples/data/book_keys.txt",
    ]);
    assert_eq!(stream.status.code(), Some(1), "{}", stdout(&stream));
    assert_eq!(
        stdout(&stream),
        stdout(&dom),
        "--stream must render the exact DOM batch bytes"
    );
    let text = stdout(&stream);
    assert!(text.contains("[ok]   a.xml"));
    assert!(text.contains("[FAIL] dup.xml"));
    assert!(
        text.contains("[SKIP] broken.xml:"),
        "the failing file must be named: {text}"
    );
    assert!(text.contains("1 unparseable"));

    let stream = run(&[
        "shred",
        "--stream",
        dir.path(),
        "examples/data/book_rules.txt",
        "chapter",
    ]);
    let dom = run(&[
        "shred",
        dir.path(),
        "examples/data/book_rules.txt",
        "chapter",
    ]);
    assert_eq!(stream.status.code(), Some(1), "{}", stdout(&stream));
    assert_eq!(stdout(&stream), stdout(&dom));
    assert!(stdout(&stream).contains("a.xml: chapter: 3"));
}

#[test]
fn batch_over_an_empty_directory_is_a_clean_no_op() {
    let dir = CorpusDir::new("batch-empty");
    let out = run(&["validate", dir.path(), "examples/data/book_keys.txt"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("no *.xml documents"));
    let out = run(&["shred", dir.path(), "examples/data/book_rules.txt"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("no *.xml documents"));
}

// ---------------------------------------------------------------------
// Incremental mutation (`mutate`)
// ---------------------------------------------------------------------

/// Writes a small predictable document plus keys/rules for mutate tests:
/// nodes are `n0`=db, `n1`=book, `n2`=@isbn, `n3`=title, `n4`=text.
fn mutate_fixture(dir: &CorpusDir) -> [String; 3] {
    dir.write(
        "m.xml",
        r#"<db><book isbn="1"><title>A</title></book></db>"#,
    );
    dir.write("m.keys", "K1: (\u{3b5}, (//book, {@isbn}))\n");
    dir.write(
        "m.rules",
        "rule book(isbn, title) { xb := xr//book; xi := xb/@isbn; \
         xt := xb/title; isbn := value(xi); title := value(xt); }\n",
    );
    ["m.xml", "m.keys", "m.rules"].map(|n| dir.0.join(n).to_str().unwrap().to_string())
}

#[test]
fn mutate_applies_edits_and_reports_incremental_effects() {
    let dir = CorpusDir::new("mutate-ok");
    let [doc, keys, rules] = mutate_fixture(&dir);
    dir.write(
        "ok.edits",
        "# grow then violate\n\
         settext n2 9\n\
         insert n0 1 <book isbn=\"9\"><title>B</title></book>\n",
    );
    let script = dir.0.join("ok.edits");
    let out = run(&["mutate", &doc, &keys, &rules, script.to_str().unwrap()]);
    // The final document violates K1, so the verdict exit code is 1.
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(
        text.contains("settext n2 -> 5 nodes, 0 violations"),
        "{text}"
    );
    assert!(
        text.contains("insert n0 1 -> 9 nodes, 1 violations, tuples +1 -0"),
        "{text}"
    );
    assert!(text.contains("share key value (9)"), "{text}");
    assert!(
        text.contains("2 edits applied: 9 nodes, 1 violations"),
        "{text}"
    );
}

#[test]
fn mutate_rejects_bad_node_ids_positions_and_malformed_lines() {
    let dir = CorpusDir::new("mutate-bad");
    let [doc, keys, rules] = mutate_fixture(&dir);
    for (name, script, needle) in [
        // Semantic errors carry the script line as their origin.
        ("unknown.edits", "remove n99\n", "unknown or detached node"),
        ("oob.edits", "insert n0 7 <x/>\n", "out of range"),
        ("root.edits", "remove n0\n", "document root"),
        // Parse errors: malformed verb, node id, fragment.
        ("verb.edits", "frobnicate n1\n", "unknown edit verb"),
        ("nodeid.edits", "settext book5 x\n", "not a node id"),
        ("frag.edits", "insert n0 0 <unclosed\n", "fragment"),
    ] {
        dir.write(name, script);
        let path = dir.0.join(name);
        let out = run(&["mutate", &doc, &keys, &rules, path.to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(2), "{name} must exit 2");
        let err = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(
            err.contains(&format!("{}:1: ", path.to_str().unwrap())),
            "{name}: origin missing in {err}"
        );
        assert!(err.contains(needle), "{name}: {err}");
    }
}

#[test]
fn mutate_usage_and_missing_script_are_clean_errors() {
    let out = run(&["mutate", "examples/data/fig1.xml"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: mutate"));

    let out = run(&[
        "mutate",
        "examples/data/fig1.xml",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
        "no/such/script.edits",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn jobs_zero_is_rejected_with_a_clear_error() {
    let dir = CorpusDir::new("jobs-zero");
    dir.copy_fig1("a.xml");
    let out = run(&[
        "validate",
        "--jobs",
        "0",
        dir.path(),
        "examples/data/book_keys.txt",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(
        err.contains("--jobs") && err.contains("at least 1"),
        "unhelpful error: {err}"
    );
}

#[test]
fn jobs_on_a_single_document_is_noted_not_ignored() {
    let out = run(&[
        "validate",
        "--jobs",
        "4",
        "examples/data/fig1.xml",
        "examples/data/book_keys.txt",
    ]);
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--jobs only affects directory batches"),
        "silently ignoring --jobs misleads users about parallelism"
    );
}

#[test]
fn absurd_jobs_values_are_rejected_with_a_clear_error() {
    let dir = CorpusDir::new("jobs-absurd");
    dir.copy_fig1("a.xml");
    for bad in ["100000", "banana", "-3"] {
        let out = run(&[
            "shred",
            "--jobs",
            bad,
            dir.path(),
            "examples/data/book_rules.txt",
        ]);
        assert_eq!(out.status.code(), Some(2), "--jobs {bad} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(
            err.contains("exceeds the maximum") || err.contains("positive integer"),
            "unhelpful error for --jobs {bad}: {err}"
        );
    }
}

#[test]
fn serve_shares_the_batch_jobs_validation_path() {
    // `--jobs 0` must produce the identical diagnostic and exit code from
    // `serve` and from a batch command: one jobs path, one error table.
    let serve = run(&[
        "serve",
        "--jobs",
        "0",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
    ]);
    assert_eq!(serve.status.code(), Some(2));
    let serve_err = String::from_utf8_lossy(&serve.stderr).to_string();
    assert!(
        serve_err.contains("--jobs") && serve_err.contains("at least 1"),
        "unhelpful error: {serve_err}"
    );

    let dir = CorpusDir::new("serve-jobs-zero");
    dir.copy_fig1("a.xml");
    let batch = run(&[
        "validate",
        "--jobs",
        "0",
        dir.path(),
        "examples/data/book_keys.txt",
    ]);
    assert_eq!(batch.status.code(), Some(2));
    assert_eq!(
        String::from_utf8_lossy(&batch.stderr),
        serve_err,
        "serve and batch must word the --jobs rejection identically"
    );
}

#[test]
fn serve_usage_and_missing_files_are_clean_errors() {
    let out = run(&["serve"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: serve"));

    let out = run(&["serve", "no/such/keys.txt", "examples/data/book_rules.txt"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let out = run(&[
        "serve",
        "--script",
        "no/such/session.txt",
        "examples/data/book_keys.txt",
        "examples/data/book_rules.txt",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
