//! Key-aware query execution is equivalent to the naive baseline.
//!
//! For random two-level workloads — random field assignment, random key
//! sets, random documents with omitted optional fields (the injected
//! NULLs) — every query plan executed with the key-aware optimizations
//! (hash-lookup joins, FD-elided deduplication) must produce the same
//! rows as the naive nested-loop/always-dedup plan.  The documents
//! satisfy Σ by construction, so the shredded instances satisfy the
//! propagated covers and the outputs must agree not just as bags but
//! **row for row**: the keyed join emits matches in right-scan order,
//! exactly like the nested loop it replaces.

use proptest::prelude::*;
use xmlprop::pipeline::{CorpusBundle, CorpusOptions};
use xmlprop::prelude::*;
use xmlprop::query::{execute, parse_query, plan, plan_naive, Catalog, JoinKind};
use xmlprop::reldb::Database;
use xmlprop::workload::{generate, generate_document, DocConfig, Workload, WorkloadConfig};
use xmlprop::xmltransform::parse_single_rule;

/// A two-rule transformation over a depth-2 workload's document shape:
/// `parent` shreds entity level 0, `child` shreds level 1 carrying the
/// parent identifier (like `chapter(inBook, number, name)` in the paper).
fn two_level_rules(w: &Workload) -> Transformation {
    assert_eq!(w.level_labels.len(), 2, "two_level_rules needs depth 2");
    let l0 = &w.level_labels[0];
    let l1 = &w.level_labels[1];

    let mut rules = Transformation::new(Vec::new());
    for (name, fields, body_levels) in [
        ("parent", level_fields(w, 0), 1usize),
        (
            "child",
            {
                let mut f = vec!["id0".to_string()];
                f.extend(level_fields(w, 1));
                f
            },
            2usize,
        ),
    ] {
        let mut body = String::new();
        body.push_str(&format!("  v0 := xr//{l0};\n"));
        if body_levels > 1 {
            body.push_str(&format!("  v1 := v0/{l1};\n"));
        }
        for level in 0..body_levels {
            // The child rule binds only the parent's identifier at level 0.
            let in_scope = |f: &String| body_levels == 1 || level == 1 || f == "id0";
            for field in w.attr_fields_per_level[level]
                .iter()
                .filter(|f| in_scope(f))
            {
                body.push_str(&format!("  w_{field} := v{level}/@{field};\n"));
            }
            for field in w.element_fields_per_level[level]
                .iter()
                .filter(|f| in_scope(f))
            {
                body.push_str(&format!("  w_{field} := v{level}/{field}_el;\n"));
            }
        }
        for field in &fields {
            body.push_str(&format!("  {field} := value(w_{field});\n"));
        }
        let text = format!("rule {name}({}) {{\n{body}}}", fields.join(", "));
        rules.add_rule(parse_single_rule(&text).expect("generated rule is well-formed"));
    }
    rules
}

/// All fields of entity level `level`, identifier first.
fn level_fields(w: &Workload, level: usize) -> Vec<String> {
    let mut fields = w.attr_fields_per_level[level].clone();
    fields.extend(w.element_fields_per_level[level].iter().cloned());
    fields
}

/// Shreds one workload document and builds the query catalog from the
/// bundle's propagated covers — the same wiring as the server renderer.
fn shred_and_catalog(bundle: &CorpusBundle, doc: &Document) -> (Catalog, Database) {
    let mut catalog = Catalog::new();
    for engine in bundle.engines() {
        catalog.add_relation(engine.rule().schema().clone(), &engine.minimum_cover());
    }
    let result = bundle.run_sequential(std::slice::from_ref(doc), &CorpusOptions::default());
    assert!(
        result.documents[0].violations.is_empty(),
        "generated documents satisfy their key set"
    );
    (catalog, result.documents[0].database.clone())
}

/// The rows of a result relation, as plain value vectors.
fn rows_of(relation: &xmlprop::reldb::Relation) -> Vec<Vec<Value>> {
    relation
        .rows()
        .iter()
        .map(|t| t.values().to_vec())
        .collect()
}

/// A `'…'` literal for the query text, with the grammar's `''` escape.
fn literal(value: &Value) -> String {
    match value.as_text() {
        Some(text) => format!("'{}'", text.replace('\'', "''")),
        None => "'zzz-no-such-value'".to_string(),
    }
}

/// The queries run against one shredded instance: scans, star selects,
/// both join directions (the `parent` side is keyed on `id0` whenever its
/// propagated cover determines every field), a harvested-literal filter
/// that matches and one that cannot.
fn queries(catalog: &Catalog, db: &Database) -> Vec<String> {
    let parent_extra = catalog
        .schema("parent")
        .expect("parent is in the catalog")
        .attributes()
        .get(1)
        .cloned()
        .unwrap_or_else(|| "id0".to_string());
    let harvested = db
        .get("parent")
        .and_then(|r| r.rows().first())
        .map(|t| literal(&t.values()[0]))
        .unwrap_or_else(|| "'zzz-no-such-value'".to_string());
    vec![
        "select * from parent".to_string(),
        "select * from child".to_string(),
        format!("select id1, {parent_extra} from child join parent on child.id0 = parent.id0"),
        format!(
            "select child.id1, parent.{parent_extra} \
             from parent join child on parent.id0 = child.id0"
        ),
        format!("select {parent_extra} from parent where id0 = {harvested}"),
        "select id1 from child where id1 = 'zzz-no-such-value'".to_string(),
        "select from child".to_string(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn keyed_execution_matches_the_naive_baseline(
        fields in 4usize..9,
        keys in 4usize..10,
        ratio in prop_oneof![Just(0.0f64), Just(0.3), Just(0.6)],
        seed in 0u64..1000,
        branching in 1usize..4,
        omission in prop_oneof![Just(0.0f64), Just(0.3), Just(0.6)],
    ) {
        let w = generate(&WorkloadConfig {
            element_field_ratio: ratio,
            ..WorkloadConfig::new(fields, 2, keys).with_seed(seed)
        });
        let doc = generate_document(&w, &DocConfig {
            branching,
            omission_probability: omission,
            seed: seed ^ 0xbeef,
            depth: None,
        });
        let bundle = CorpusBundle::new(w.sigma.clone(), two_level_rules(&w));
        let (catalog, db) = shred_and_catalog(&bundle, &doc);

        for text in queries(&catalog, &db) {
            let query = parse_query(&text).expect("generated query parses");
            let keyed = execute(&plan(&query, &catalog).unwrap(), &db).unwrap();
            let naive = execute(&plan_naive(&query, &catalog).unwrap(), &db).unwrap();

            // Bag equality (order-normalized) …
            let mut keyed_bag = rows_of(&keyed);
            let mut naive_bag = rows_of(&naive);
            keyed_bag.sort();
            naive_bag.sort();
            prop_assert_eq!(&keyed_bag, &naive_bag, "bags diverged for `{}`", &text);

            // … and, on Σ-satisfying instances, exact row order too.
            prop_assert_eq!(
                rows_of(&keyed),
                rows_of(&naive),
                "row order diverged for `{}`", &text
            );
        }
    }
}

/// With every field mapped from an attribute, the chain key `id0` alone
/// determines all of `parent`, so the join equated on it must plan as a
/// hash lookup — the deterministic pin that the proptest above actually
/// exercises the keyed path.
#[test]
fn all_attribute_workload_plans_a_key_lookup_join() {
    let w = generate(&WorkloadConfig {
        element_field_ratio: 0.0,
        ..WorkloadConfig::new(6, 2, 8).with_seed(1)
    });
    let bundle = CorpusBundle::new(w.sigma.clone(), two_level_rules(&w));
    let mut catalog = Catalog::new();
    for engine in bundle.engines() {
        catalog.add_relation(engine.rule().schema().clone(), &engine.minimum_cover());
    }
    let query = parse_query("select id1 from child join parent on child.id0 = parent.id0").unwrap();
    let keyed = plan(&query, &catalog).unwrap();
    assert_eq!(keyed.joins.len(), 1);
    assert_eq!(
        keyed.joins[0].kind,
        JoinKind::KeyLookup,
        "plan: {}",
        keyed.describe()
    );
    let naive = plan_naive(&query, &catalog).unwrap();
    assert_eq!(naive.joins[0].kind, JoinKind::Scan);
}
