//! Differential property tests for the streaming front end: the
//! event-driven path (`CorpusBundle::stream_text` — no `Document`, no
//! `DocIndex`) must be **bit-for-bit** equal to the DOM pipeline on random
//! workload documents, on documents with injected key violations, on deep
//! narrow trees, and — for malformed inputs — must report the *same*
//! `ParseError` the tree parser reports, since both fronts share one
//! tokenizer.
//!
//! The bounded-memory claim itself is pinned at the bottom: streaming a
//! generated wide million-node document must record a frontier
//! (`peak_open_bindings`) that is orders of magnitude below the node
//! count.

use proptest::prelude::*;
use xmlprop::pipeline::{CorpusBundle, CorpusOptions, DocOutcome, Jobs};
use xmlprop::prelude::*;
use xmlprop::workload::{generate, generate_document, DocConfig, WorkloadConfig};
use xmlprop::xmltree::to_xml;

fn options(stream: bool) -> CorpusOptions {
    CorpusOptions {
        jobs: Jobs::default(),
        shred: true,
        validate: true,
        covers: false,
        stream,
    }
}

/// Bundles a workload's Σ and universal rule the way the pipeline would.
fn bundle_of(w: &xmlprop::workload::Workload) -> CorpusBundle {
    CorpusBundle::new(
        w.sigma.clone(),
        Transformation::new(vec![w.universal.clone()]),
    )
}

/// Runs the serialized document through both fronts and asserts the
/// outcomes agree field for field (the frontier stat is streaming-only and
/// excluded).  Returns the streamed outcome for extra assertions.
fn assert_fronts_agree(bundle: &CorpusBundle, text: &str) -> DocOutcome {
    let doc = Document::parse_str(text).expect("the serialized document reparses");
    let dom = bundle
        .run(std::slice::from_ref(&doc), &options(false))
        .documents
        .remove(0);
    let streamed = bundle
        .stream_text(text, &options(true))
        .expect("the serialized document streams");
    assert_eq!(streamed.database, dom.database, "shredded relations differ");
    assert_eq!(streamed.violations, dom.violations, "violations differ");
    assert_eq!(streamed.nodes, dom.nodes, "node counts differ");
    assert_eq!(streamed.tuples, dom.tuples, "tuple counts differ");
    streamed
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Random workload documents: shredded relations, key violations and
    /// the counters all agree between the two fronts.
    #[test]
    fn streaming_matches_the_dom_pipeline_on_random_documents(
        fields in 4usize..10,
        depth in 1usize..4,
        branching in 1usize..4,
        seed in 0u64..40,
        omit in prop_oneof![Just(0.0f64), Just(0.3f64), Just(0.6f64)],
    ) {
        let depth = depth.min(fields);
        let w = generate(&WorkloadConfig::new(fields, depth, depth + 2).with_seed(seed));
        let doc = generate_document(
            &w,
            &DocConfig { branching, omission_probability: omit, seed, ..DocConfig::default() },
        );
        let outcome = assert_fronts_agree(&bundle_of(&w), &to_xml(&doc));
        prop_assert!(outcome.peak_open_bindings > 0, "the frontier stat must be recorded");
    }

    /// Injected key violations: duplicating a level-0 entity's identifier
    /// breaks the workload's `chain0` key, and both fronts report the
    /// *same* violations — same keys, same nodes, same order.
    #[test]
    fn streaming_reports_the_same_injected_violations(
        fields in 4usize..9,
        depth in 1usize..4,
        branching in 1usize..3,
        seed in 0u64..40,
    ) {
        let depth = depth.min(fields);
        let w = generate(&WorkloadConfig::new(fields, depth, depth + 1).with_seed(seed));
        let mut doc = generate_document(
            &w,
            &DocConfig { branching, seed, ..DocConfig::default() },
        );
        // The generator names level-0 entities `{label}-{sibling}`; a fresh
        // sibling re-using identifier `{label}-0` collides with the first.
        let label0 = w.level_labels[0].clone();
        let dup = doc.add_element(doc.root(), label0.clone());
        doc.add_attribute(dup, "id0", format!("{label0}-0"));
        let outcome = assert_fronts_agree(&bundle_of(&w), &to_xml(&doc));
        prop_assert!(
            !outcome.violations.is_empty(),
            "the duplicated identifier must be flagged by both fronts"
        );
    }

    /// Deep, narrow trees (branching 1, up to 8 entity levels): the
    /// streaming frontier follows the recursion where the DOM path follows
    /// the arena — outputs must still be identical.
    #[test]
    fn streaming_matches_the_dom_pipeline_on_deep_narrow_trees(
        depth in 4usize..9,
        seed in 0u64..30,
        omit in prop_oneof![Just(0.0f64), Just(0.4f64)],
    ) {
        let w = generate(&WorkloadConfig::new(depth + 2, depth, depth).with_seed(seed));
        let doc = generate_document(
            &w,
            &DocConfig { branching: 1, omission_probability: omit, seed, ..DocConfig::default() },
        );
        assert_fronts_agree(&bundle_of(&w), &to_xml(&doc));
    }

    /// Malformed inputs: any proper prefix of a serialized document is
    /// broken XML, and both fronts — sharing one tokenizer — must report
    /// the *identical* `ParseError` (same position, same message).
    #[test]
    fn malformed_inputs_fail_identically_on_both_fronts(
        fields in 4usize..8,
        depth in 1usize..3,
        seed in 0u64..30,
        permille in 0u64..1000,
    ) {
        let w = generate(&WorkloadConfig::new(fields, depth, depth + 1).with_seed(seed));
        let doc = generate_document(&w, &DocConfig { branching: 2, seed, ..DocConfig::default() });
        let text = to_xml(&doc);
        let mut cut = (text.len() - 1) * permille as usize / 1000;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let bad = &text[..cut];
        let bundle = bundle_of(&w);
        let dom_err = Document::parse_str(bad).expect_err("a proper prefix cannot parse");
        let stream_err = bundle
            .stream_text(bad, &options(true))
            .expect_err("a proper prefix cannot stream");
        prop_assert_eq!(stream_err, dom_err, "the two fronts share one error table");
    }
}

/// The bounded-memory claim, on a real million-node document: a wide
/// two-level corpus document streams with a frontier of a handful of open
/// bindings — O(depth + open bindings), not O(document size).  The DOM is
/// built here only as *test scaffolding* to produce the input text; the
/// streaming pass under test never builds one.
#[test]
fn wide_million_node_documents_stream_with_a_tiny_frontier() {
    let w = generate(&WorkloadConfig::new(6, 1, 2).with_seed(3));
    let doc = generate_document(
        &w,
        &DocConfig {
            branching: 140_000,
            omission_probability: 0.0,
            seed: 3,
            ..DocConfig::default()
        },
    );
    let nodes = doc.len();
    assert!(
        nodes > 1_000_000,
        "the fixture must exceed 1M nodes, got {nodes}"
    );
    let text = to_xml(&doc);
    drop(doc);
    let outcome = bundle_of(&w)
        .stream_text(&text, &options(true))
        .expect("the generated document streams");
    assert_eq!(outcome.nodes, nodes);
    assert_eq!(outcome.tuples, 140_000, "one tuple per level-0 entity");
    assert!(
        outcome.peak_open_bindings <= 16,
        "the frontier must track depth + open bindings, not the {nodes}-node \
         document; recorded peak_open_bindings = {}",
        outcome.peak_open_bindings
    );
}
