//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the API subset the workspace's benches use — benchmark
//! groups, `bench_with_input`/`bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a straightforward
//! wall-clock measurement loop: per sample, the work is run in a batch
//! sized to the configured measurement time, and the median ns/iteration
//! over all samples is reported on stdout.  No statistics beyond the
//! median, no HTML reports, no comparison against saved baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver; collects configuration defaults.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function(BenchmarkId::new(id, ""), f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id, |bencher| f(bencher, input));
        self
    }

    /// Benchmarks `f` without an input value.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        self.run(&id, |bencher| f(bencher));
        self
    }

    fn run(&self, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            batch_size: 1,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        // Warm-up: run until the warm-up budget is spent, growing the batch
        // size so each measurement batch lasts roughly one sample slot.
        let warm_up_start = Instant::now();
        while warm_up_start.elapsed() < self.warm_up_time {
            f(&mut bencher);
            if bencher.elapsed < self.measurement_time / (self.sample_size as u32).max(1) {
                bencher.batch_size = bencher.batch_size.saturating_mul(2);
            }
        }
        // Measurement: fixed batch size, `sample_size` samples.
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            f(&mut bencher);
            if bencher.iterations > 0 {
                samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iterations as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples.get(samples.len() / 2).copied().unwrap_or(f64::NAN);
        println!(
            "{}/{}: median {:.1} ns/iter ({} samples)",
            self.name,
            id,
            median,
            samples.len()
        );
    }

    /// Ends the group (upstream writes reports here; the stub needs no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    batch_size: u64,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running it in the currently configured batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.batch_size {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = self.batch_size;
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id that is just a rendered parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.function_name.is_empty(), self.parameter.is_empty()) {
            (false, false) => write!(f, "{}/{}", self.function_name, self.parameter),
            (false, true) => write!(f, "{}", self.function_name),
            _ => write!(f, "{}", self.parameter),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts strings.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::new(self, "")
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId::new(self, "")
    }
}

/// An identity function that opaquely hints the optimizer to keep `value`
/// (and computations leading to it) alive.  Without inline assembly the
/// reliable safe-Rust approach is a volatile-free read barrier via
/// `std::hint::black_box`, which is what this forwards to.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Defines a function that runs a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` to run one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_reports_samples() {
        let mut criterion = Criterion {
            sample_size: 5,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
        };
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(5);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::from_parameter(10).to_string(), "10");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::new("f", "").to_string(), "f");
    }
}
