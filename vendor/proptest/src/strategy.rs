//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// Max attempts for retrying combinators (`prop_filter_map`, `prop_filter`)
/// before the test errors out as over-constrained.
const MAX_REJECTS: usize = 1000;

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy is just a function from an RNG to a value.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, map: f }
    }

    /// Maps generated values through `f`, retrying while it returns `None`.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            base: self,
            map: f,
            reason,
        }
    }

    /// Retries generation while `f` rejects the value.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            keep: f,
            reason,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        std::rc::Rc::new(self)
    }
}

/// A type-erased strategy.  Reference-counted (upstream uses an owned box)
/// so that every strategy in this stub, `prop_oneof!` unions included, can
/// be cheaply cloned.
pub type BoxedStrategy<T> = std::rc::Rc<dyn Strategy<Value = T>>;

/// Boxes a strategy; used by [`crate::prop_oneof!`] to unify arm types.
pub fn boxed<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    std::rc::Rc::new(strategy)
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    base: S,
    map: F,
    reason: &'static str,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_REJECTS {
            if let Some(value) = (self.map)(self.base.generate(rng)) {
                return value;
            }
        }
        panic!(
            "prop_filter_map rejected {MAX_REJECTS} candidates in a row: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    base: S,
    keep: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let value = self.base.generate(rng);
            if (self.keep)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter rejected {MAX_REJECTS} candidates in a row: {}",
            self.reason
        );
    }
}

/// Uniform choice between strategies of one value type; built by
/// [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Creates a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.rng.gen_range(0..self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($wide:ty; $($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range strategy");
                // Widen so `end - start + 1` cannot overflow, even for the
                // type's full domain (`T::MIN..=T::MAX`).
                let span = (end as $wide - start as $wide + 1) as u128;
                (start as $wide + (rng.rng.next_u64() as u128 % span) as $wide) as $t
            }
        }
    )*};
}

impl_range_strategy!(u128; u8, u16, u32, u64, usize);
impl_range_strategy!(i128; i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $index:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = new_rng("ranges_and_maps_compose");
        let strategy = (0usize..10).prop_map(|n| n * 2);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn filter_map_retries() {
        let mut rng = new_rng("filter_map_retries");
        let strategy = (0usize..100).prop_filter_map("even only", |n| (n % 2 == 0).then_some(n));
        for _ in 0..50 {
            assert_eq!(strategy.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = new_rng("union_hits_every_arm");
        let strategy = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8)), boxed(Just(3u8))]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strategy.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn inclusive_ranges_reach_both_endpoints() {
        let mut rng = new_rng("inclusive_ranges_reach_both_endpoints");
        let full = u8::MIN..=u8::MAX;
        let (mut saw_min, mut saw_max) = (false, false);
        for _ in 0..10_000 {
            match full.generate(&mut rng) {
                u8::MIN => saw_min = true,
                u8::MAX => saw_max = true,
                _ => {}
            }
        }
        assert!(
            saw_min && saw_max,
            "full-domain inclusive range misses an endpoint"
        );
        // Single-value range at the type boundary must not panic.
        assert_eq!((u8::MAX..=u8::MAX).generate(&mut rng), u8::MAX);
        assert_eq!((i32::MIN..=i32::MIN).generate(&mut rng), i32::MIN);
        for _ in 0..1000 {
            let v = (-3i8..=3).generate(&mut rng);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = new_rng("tuples_generate_componentwise");
        let strategy = (0usize..4, Just("x"));
        for _ in 0..20 {
            let (n, s) = strategy.generate(&mut rng);
            assert!(n < 4);
            assert_eq!(s, "x");
        }
    }
}
