//! Collection strategies: random-length vectors and sets.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::Range;

/// A strategy for `Vec`s whose length is sampled from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeSet`s with *up to* `size.end - 1` elements (duplicate
/// samples collapse, as in upstream proptest the size is a best effort).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let len = rng.rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::new_rng;
    use crate::Just;

    #[test]
    fn vec_lengths_stay_in_range() {
        let mut rng = new_rng("vec_lengths_stay_in_range");
        let strategy = vec(0u8..5, 2..6);
        for _ in 0..100 {
            let v = strategy.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn btree_set_collapses_duplicates() {
        let mut rng = new_rng("btree_set_collapses_duplicates");
        let strategy = btree_set(Just("only"), 0..4);
        for _ in 0..50 {
            assert!(strategy.generate(&mut rng).len() <= 1);
        }
    }
}
