//! The stub test runner: a deterministic RNG per property test.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.  Public field so in-crate strategies can
/// reach the underlying generator; test code never touches it directly.
pub struct TestRng {
    /// The underlying generator.
    pub rng: StdRng,
}

/// Creates the RNG for one property test.  The seed mixes a fixed constant
/// (overridable via `PROPTEST_SEED`) with a hash of the test name, so
/// different tests see different—but stable—streams.
pub fn new_rng(test_name: &str) -> TestRng {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EED_CAFE_F00Du64);
    TestRng {
        rng: StdRng::seed_from_u64(base ^ fnv1a(test_name)),
    }
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn per_test_streams_are_stable_and_distinct() {
        let a1: u64 = new_rng("alpha").rng.gen_range(0..u64::MAX);
        let a2: u64 = new_rng("alpha").rng.gen_range(0..u64::MAX);
        let b: u64 = new_rng("beta").rng.gen_range(0..u64::MAX);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }
}
