//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Property tests written against the upstream macro/strategy surface run
//! here as straightforward randomized tests: every `proptest!` test samples
//! its strategies `ProptestConfig::cases` times from a deterministic seed
//! and executes the body; `prop_assert*!` failures panic with the offending
//! message (there is **no shrinking** — the failing case is reported as
//! sampled).  Seeds and case counts can be overridden with the
//! `PROPTEST_SEED` / `PROPTEST_CASES` environment variables.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::TestRng;

/// Per-test configuration, compatible with upstream's struct-update idiom
/// (`ProptestConfig { cases: 64, ..ProptestConfig::default() }`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.  `prop_assume!` rejections do
    /// not count: a rejected case is regenerated, like upstream.
    pub cases: u32,
    /// Maximum total `prop_assume!` rejections per test before it fails as
    /// over-constrained.
    pub max_global_rejects: u32,
    /// Accepted for upstream compatibility; the stub never shrinks, so this
    /// is never consulted.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: 1024,
            max_shrink_iters: 1024,
        }
    }
}

/// Everything a property test module needs, mirroring upstream's prelude.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }` item
/// becomes a `#[test]` function that samples the strategies and runs the
/// body for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __proptest_config: $crate::ProptestConfig = $config;
                let mut __proptest_rng = $crate::test_runner::new_rng(stringify!($name));
                let mut __proptest_done: u32 = 0;
                let mut __proptest_attempts: u32 = 0;
                while __proptest_done < __proptest_config.cases {
                    // A `prop_assume!` rejection `continue`s straight past
                    // the `__proptest_done` increment below, so the case is
                    // regenerated rather than counted — only bodies that run
                    // to completion count toward `cases`.  The attempts/done
                    // deficit is then exactly the cumulative rejection count.
                    assert!(
                        __proptest_attempts - __proptest_done
                            <= __proptest_config.max_global_rejects,
                        "property test over-constrained: {} prop_assume! rejections \
                         with only {} of {} cases completed",
                        __proptest_attempts - __proptest_done,
                        __proptest_done,
                        __proptest_config.cases,
                    );
                    __proptest_attempts += 1;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    $body
                    __proptest_done += 1;
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure; the stub
/// does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Skips the current case when its sampled inputs don't meet a premise.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            continue;
        }
    };
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    static COMPLETED: AtomicU32 = AtomicU32::new(0);

    proptest! {
        #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]
        // Deliberately not #[test]: driven by the counting wrapper below so
        // the shared counter is only touched from one test thread.
        fn assume_heavy_body(n in 0u32..100) {
            prop_assume!(n % 3 == 0);
            COMPLETED.fetch_add(1, Ordering::Relaxed);
            prop_assert!(n % 3 == 0);
        }
    }

    #[test]
    fn assume_rejections_regenerate_instead_of_consuming_cases() {
        COMPLETED.store(0, Ordering::Relaxed);
        assume_heavy_body();
        // ~2/3 of samples are rejected; every rejection must be replaced by
        // a fresh sample so exactly `cases` bodies run to completion.
        assert_eq!(COMPLETED.load(Ordering::Relaxed), 20);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 4, max_global_rejects: 8, ..ProptestConfig::default() })]
        #[test]
        #[should_panic(expected = "over-constrained")]
        fn impossible_assume_fails_loudly(n in 0u32..100) {
            prop_assume!(n > 100);
            prop_assert!(n > 100); // unreachable
        }
    }
}
