//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`):
//! renders the stub `serde::Json` data model to text.

#![forbid(unsafe_code)]

use serde::{Json, Serialize};
use std::fmt;

/// Serialization error.  The stub data model is always serializable, so this
/// only exists to keep upstream-shaped signatures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Renders a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), None, 0, &mut out);
    Ok(out)
}

/// Renders a value as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(value: &Json, indent: Option<usize>, level: usize, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => write_number(*n, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => write_seq(
            items.iter(),
            |item, lvl, out| {
                write_value(item, indent, lvl, out);
            },
            '[',
            ']',
            indent,
            level,
            out,
        ),
        Json::Obj(entries) => write_seq(
            entries.iter(),
            |(key, item), lvl, out| {
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, lvl, out);
            },
            '{',
            '}',
            indent,
            level,
            out,
        ),
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(T, usize, &mut String),
    open: char,
    close: char,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (level + 1)));
        }
        write_item(item, level + 1, out);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
    out.push(close);
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Infinity
    } else if n == n.trunc() && n.abs() < 9_007_199_254_740_992.0 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let value = Json::Obj(vec![
            ("a".into(), Json::Num(1.0)),
            (
                "b".into(),
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Str("x\"y".into())]),
            ),
        ]);
        assert_eq!(
            to_string(&value).unwrap(),
            r#"{"a":1,"b":[null,true,"x\"y"]}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let value = Json::Obj(vec![("n".into(), Json::Num(1.5))]);
        assert_eq!(to_string_pretty(&value).unwrap(), "{\n  \"n\": 1.5\n}");
        assert_eq!(to_string_pretty(&Json::Arr(vec![])).unwrap(), "[]");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(to_string(&Json::Num(200.0)).unwrap(), "200");
        assert_eq!(to_string(&Json::Num(0.125)).unwrap(), "0.125");
        assert_eq!(to_string(&Json::Num(f64::NAN)).unwrap(), "null");
    }
}
