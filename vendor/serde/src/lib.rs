//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Serialization here goes through one concrete data model, [`Json`]:
//! [`Serialize`] renders a value into a `Json` tree, and `serde_json`
//! renders that tree to text.  That is all this workspace needs; the
//! `Serializer`-generic architecture of upstream serde is intentionally not
//! reproduced.

#![forbid(unsafe_code)]

// Lets the `serde::…` paths emitted by the derive macro resolve even inside
// this crate's own tests.
extern crate self as serde;

pub use serde_derive::Serialize;

/// A JSON value: the single serialization data model of the stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number (rendered via `f64`; integers keep exact values up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, Json)>),
}

/// Types that can render themselves as a [`Json`] value.
pub trait Serialize {
    /// Renders `self` as a JSON tree.
    fn to_json(&self) -> Json;
}

macro_rules! impl_serialize_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
    )*};
}

impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl Serialize for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(3usize.to_json(), Json::Num(3.0));
        assert_eq!((-2i32).to_json(), Json::Num(-2.0));
        assert_eq!(true.to_json(), Json::Bool(true));
        assert_eq!("hi".to_json(), Json::Str("hi".into()));
        assert_eq!(None::<f64>.to_json(), Json::Null);
        assert_eq!(Some(1.5f64).to_json(), Json::Num(1.5));
        assert_eq!(
            vec![1u8, 2].to_json(),
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])
        );
    }

    #[test]
    fn derive_builds_objects() {
        #[derive(Serialize)]
        struct Point {
            x: usize,
            label: &'static str,
            maybe: Option<f64>,
        }
        let json = Point {
            x: 4,
            label: "p",
            maybe: None,
        }
        .to_json();
        assert_eq!(
            json,
            Json::Obj(vec![
                ("x".into(), Json::Num(4.0)),
                ("label".into(), Json::Str("p".into())),
                ("maybe".into(), Json::Null),
            ])
        );
    }
}
