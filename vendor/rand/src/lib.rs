//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Provides the API subset this workspace uses: a seedable [`rngs::StdRng`],
//! the [`Rng`] extension trait with `gen_bool`/`gen_range`, and
//! [`seq::SliceRandom`] with `shuffle`/`choose`.  The generator is
//! SplitMix64 — statistically fine for tests and synthetic workloads, not
//! cryptographic, and deliberately simple so the whole crate stays
//! dependency-free.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next value truncated to 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that `gen_range` can sample uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (low as i128 + off) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + unit_f64(rng.next_u64()) * (high - low)
    }
}

/// Maps a `u64` to `[0, 1)` using the top 53 bits.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.  Panics if `p` is outside
    /// `[0, 1]` (as upstream rand does).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64 (not the upstream
    /// ChaCha-based `StdRng`; sequences are stable within this workspace
    /// only).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .all(|_| StdRng::seed_from_u64(42).gen_range(0..u64::MAX) == c.gen_range(0..u64::MAX));
        assert!(!same);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u8 = rng.gen_range(0..3);
            assert!(x < 3);
            let y: u16 = rng.gen_range(0..1000);
            assert!(y < 1000);
            let z: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&z));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "rate far off: {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.gen_bool(0.5);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "50 elements staying put is (astronomically) unlikely"
        );
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
