//! `#[derive(Serialize)]` for the vendored serde stand-in.
//!
//! Supports what the workspace derives on: plain `struct`s with named
//! fields and no generic parameters.  The macro hand-parses the token
//! stream (no `syn`/`quote`, which are unavailable offline) and emits an
//! `impl serde::Serialize` that renders the struct as a JSON object in
//! field order.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a plain named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, body) = match parse_struct(&tokens) {
        Ok(parts) => parts,
        Err(message) => {
            return format!("compile_error!({message:?});")
                .parse()
                .expect("valid error tokens")
        }
    };
    let fields = parse_field_names(body);
    let entries: String = fields
        .iter()
        .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_json(&self.{f})),"))
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_json(&self) -> serde::Json {{\n\
                 serde::Json::Obj(vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated impl parses")
}

/// Finds `struct <Name> { … }` in the (attribute-stripped) derive input and
/// returns the name plus the brace-group tokens.
fn parse_struct(tokens: &[TokenTree]) -> Result<(String, Vec<TokenTree>), String> {
    let mut iter = tokens.iter().peekable();
    while let Some(tree) = iter.next() {
        let TokenTree::Ident(ident) = tree else {
            continue;
        };
        if ident.to_string() != "struct" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            return Err("expected a struct name after `struct`".to_string());
        };
        for rest in iter {
            match rest {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    return Ok((name.to_string(), g.stream().into_iter().collect()));
                }
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    return Err(format!(
                        "serde stub: cannot derive Serialize for generic struct `{name}`"
                    ));
                }
                TokenTree::Punct(p) if p.as_char() == ';' => {
                    return Err(format!(
                        "serde stub: cannot derive Serialize for unit/tuple struct `{name}`"
                    ));
                }
                _ => {}
            }
        }
        return Err(format!(
            "serde stub: no field block found for struct `{name}`"
        ));
    }
    Err("serde stub: derive input is not a struct".to_string())
}

/// Extracts the field names from a named-field struct body: within each
/// top-level comma chunk (angle-bracket depth tracked so `Map<K, V>` types
/// don't split), the name is the identifier directly before the first `:`,
/// skipping `#[…]` attributes and visibility modifiers.
fn parse_field_names(body: Vec<TokenTree>) -> Vec<String> {
    let mut fields = Vec::new();
    let mut angle_depth = 0usize;
    let mut seen_colon = false;
    let mut pending: Option<String> = None;
    let mut iter = body.into_iter().peekable();
    while let Some(tree) = iter.next() {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                seen_colon = false;
                pending = None;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && angle_depth == 0 && !seen_colon => {
                seen_colon = true;
                if let Some(name) = pending.take() {
                    fields.push(name);
                }
            }
            TokenTree::Punct(p) if p.as_char() == '#' && !seen_colon => {
                // Skip the attribute group that follows.
                iter.next();
            }
            TokenTree::Ident(ident) if !seen_colon => {
                let text = ident.to_string();
                if text != "pub" {
                    pending = Some(text);
                }
            }
            _ => {}
        }
    }
    fields
}
