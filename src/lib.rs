//! # xmlprop — Propagating XML Constraints to Relations
//!
//! A Rust reproduction of *"Propagating XML Constraints to Relations"*
//! (Davidson, Fan, Hara, Qin — ICDE 2003).
//!
//! This facade crate re-exports the public API of the workspace crates so
//! that applications can depend on a single crate:
//!
//! * [`xmltree`] — XML data model, parser, serializer, `value()`;
//! * [`xmlpath`] — the path language `ε | l | P/P | P//P`, evaluation and
//!   containment;
//! * [`xmlkeys`] — XML keys (class `K^A`), satisfaction and implication;
//! * [`reldb`] — relational schemas, instances, functional dependencies,
//!   covers and normalization;
//! * [`xmltransform`] — the XML-to-relations transformation language of the
//!   paper, table trees and shredding semantics;
//! * [`core`] — the paper's algorithms: `propagation`, `naive_minimum_cover`,
//!   `minimum_cover`, `GminimumCover`, and the end-to-end schema refinement
//!   pipeline;
//! * [`workload`] — synthetic generators reproducing the experimental setup
//!   of Section 6;
//! * [`pipeline`] — the parallel corpus pipeline: one shared prepared
//!   bundle, many documents fanned out over worker threads.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `EXPERIMENTS.md` for the reproduction of the paper's evaluation.

#![forbid(unsafe_code)]

pub use xmlprop_core as core;
pub use xmlprop_pipeline as pipeline;
pub use xmlprop_reldb as reldb;
pub use xmlprop_workload as workload;
pub use xmlprop_xmlkeys as xmlkeys;
pub use xmlprop_xmlpath as xmlpath;
pub use xmlprop_xmltransform as xmltransform;
pub use xmlprop_xmltree as xmltree;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use xmlprop_core::{
        minimum_cover, naive_minimum_cover, propagate_all, propagation, GMinimumCover,
        PropagationEngine, PropagationOutcome, RefinedDesign,
    };
    pub use xmlprop_pipeline::{CorpusBundle, CorpusOptions, CorpusResult, Jobs};
    pub use xmlprop_reldb::{Fd, Relation, RelationSchema, Value};
    pub use xmlprop_xmlkeys::{KeySet, XmlKey};
    pub use xmlprop_xmlpath::{Path, PathExpr};
    pub use xmlprop_xmltransform::{TableRule, TableTree, Transformation};
    pub use xmlprop_xmltree::{Document, ElementBuilder, NodeId, NodeKind};
}
