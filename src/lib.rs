//! # xmlprop — Propagating XML Constraints to Relations
//!
//! A Rust reproduction of *"Propagating XML Constraints to Relations"*
//! (Davidson, Fan, Hara, Qin — ICDE 2003).
//!
//! This facade crate re-exports the public API of the workspace crates so
//! that applications can depend on a single crate:
//!
//! * [`xmltree`] — XML data model, parser, serializer, `value()`;
//! * [`xmlpath`] — the path language `ε | l | P/P | P//P`, evaluation and
//!   containment;
//! * [`xmlkeys`] — XML keys (class `K^A`), satisfaction and implication;
//! * [`reldb`] — relational schemas, instances, functional dependencies,
//!   covers and normalization;
//! * [`xmltransform`] — the XML-to-relations transformation language of the
//!   paper, table trees and shredding semantics;
//! * [`core`] — the paper's algorithms: `propagation`, `naive_minimum_cover`,
//!   `minimum_cover`, `GminimumCover`, and the end-to-end schema refinement
//!   pipeline;
//! * [`workload`] — synthetic generators reproducing the experimental setup
//!   of Section 6;
//! * [`pipeline`] — the parallel corpus pipeline: one shared prepared
//!   bundle, many documents fanned out over worker threads;
//! * [`server`] — the resident constraint server: hot-swappable prepared
//!   bundles behind the `xmlprop/1` line protocol;
//! * [`query`] — the key-aware query layer over the propagated design:
//!   select/project/join with a textual syntax, unique-key joins executed
//!   as hash lookups, FD-implied projections skipping deduplication.
//!
//! ## Streaming front end
//!
//! Every per-document task also runs **event-driven**, without building a
//! `Document` or a `DocIndex`: [`prelude::StreamParser`] pulls events off
//! raw XML text, [`prelude::StreamMatcher`] steps compiled path NFAs,
//! [`prelude::StreamKeyChecker`] validates Σ and
//! [`prelude::StreamShredder`] executes shred plans — all bounded by
//! document *depth* plus *open bindings*, not document size, and all
//! proven bit-for-bit equal to the DOM path.  The pipeline exposes the
//! whole stack as `CorpusOptions { stream: true, .. }` and
//! [`pipeline::CorpusBundle::stream_text`]; the CLI as
//! `validate --stream` / `shred --stream`.
//!
//! ## One-shot facades vs. prepared state
//!
//! The free functions ([`core::propagation`], [`core::minimum_cover`], …)
//! and one-shot methods re-prepare their inputs on every call.  That is
//! the right trade-off for a single query, but **inside a loop or a
//! service prefer the `prepare`-shaped constructors** —
//! [`prelude::KeySet::prepare`], [`prelude::Transformation::prepare`],
//! [`prelude::PropagationEngine::prepare`],
//! [`prelude::CorpusBundle::prepare`] — which compile once and answer
//! many times.  The resident server is built exclusively on the prepared
//! layer.
//!
//! Errors across the CLI, the pipeline and the server share one type,
//! [`Error`], whose [`ErrorKind`] table maps each class to both a CLI
//! exit code and a protocol wire code.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `EXPERIMENTS.md` for the reproduction of the paper's evaluation.

#![forbid(unsafe_code)]

pub use xmlprop_core as core;
pub use xmlprop_pipeline as pipeline;
pub use xmlprop_query as query;
pub use xmlprop_reldb as reldb;
pub use xmlprop_server as server;
pub use xmlprop_workload as workload;
pub use xmlprop_xmlkeys as xmlkeys;
pub use xmlprop_xmlpath as xmlpath;
pub use xmlprop_xmltransform as xmltransform;
pub use xmlprop_xmltree as xmltree;

pub use xmlprop_pipeline::{Error, ErrorKind};

/// Commonly used items, re-exported for convenience.
///
/// Alongside the parsed surface types this includes the whole **prepared
/// layer** — the `Prepared*`/`*Index`/`*Plan` types, their scratch
/// counterparts and the [`PreparedState`](xmlprop_pipeline::PreparedState)
/// boundary — so services can name
/// every compiled artifact through one import.
pub mod prelude {
    pub use xmlprop_core::{
        minimum_cover, naive_minimum_cover, propagate_all, propagation, GMinimumCover,
        PropagationEngine, PropagationOutcome, RefinedDesign,
    };
    pub use xmlprop_pipeline::{
        CorpusBundle, CorpusOptions, CorpusResult, Error, ErrorKind, Jobs, PreparedState,
        Published, RequestScratch, SwapCell,
    };
    pub use xmlprop_query::{parse_query, Catalog, JoinKind, KeyedTable, Plan, Query};
    pub use xmlprop_reldb::{Fd, FdIndex, Relation, RelationSchema, Value};
    pub use xmlprop_xmlkeys::{
        KeyIndex, KeySet, PreparedKey, StreamCheckReport, StreamKeyChecker, XmlKey,
    };
    pub use xmlprop_xmlpath::{
        EvalScratch, LabelUniverse, MatchState, Path, PathExpr, StreamMatcher,
    };
    pub use xmlprop_xmltransform::{
        ShredPlan, ShredScratch, StreamShredder, TableRule, TableTree, Transformation,
        TransformationPlan,
    };
    pub use xmlprop_xmltree::{
        DocIndex, Document, ElementBuilder, NodeId, NodeKind, StreamEvent, StreamParser,
    };
}
