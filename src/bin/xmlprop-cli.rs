//! `xmlprop-cli` — command-line front end for the library.
//!
//! ```text
//! xmlprop-cli validate  [--jobs N] <document.xml | corpus-dir> <keys.txt>
//! xmlprop-cli propagate <keys.txt> <rules.txt> <relation> "<X -> A>"
//! xmlprop-cli cover     <keys.txt> <rules.txt> <relation>
//! xmlprop-cli refine    <keys.txt> <rules.txt> <relation>
//! xmlprop-cli shred     [--jobs N] <document.xml | corpus-dir> <rules.txt> [relation]
//! xmlprop-cli import-xsd <schema.xsd>
//! ```
//!
//! *Keys files* contain one key per line in the paper's syntax
//! (`K2: (//book, (chapter, {@number}))`); `#` starts a comment.
//! *Rules files* use the transformation syntax of `xmlprop-xmltransform`
//! (`rule chapter(inBook, number, name) { … }`).
//!
//! When the document argument is a **directory**, `validate` and `shred`
//! switch to batch mode: every `*.xml` file in it (sorted by name, not
//! recursive) is processed through the parallel corpus pipeline over
//! `--jobs` worker threads.  A file that fails to parse is reported by name
//! and the batch continues; the exit code then signals failure without
//! aborting the remaining files.

use std::fs;
use std::path::Path;
use std::process::ExitCode;
use xmlprop::core::{minimum_cover, propagation_explained, refine};
use xmlprop::pipeline::{CorpusBundle, CorpusOptions, Jobs};
use xmlprop::prelude::*;
use xmlprop::xmlkeys::import_xsd_keys;
use xmlprop::xmlpath::LabelUniverse;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("validate") => cmd_validate(&args[1..]),
        Some("propagate") => cmd_propagate(&args[1..]),
        Some("cover") => cmd_cover(&args[1..]),
        Some("refine") => cmd_refine(&args[1..]),
        Some("shred") => cmd_shred(&args[1..]),
        Some("import-xsd") => cmd_import_xsd(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(true)
        }
        Some(other) => Err(format!(
            "unknown subcommand `{other}`; try `xmlprop-cli help`"
        )),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "xmlprop-cli — XML key propagation to relations (ICDE 2003)\n\n\
         USAGE:\n  \
           xmlprop-cli validate   [--jobs N] <document.xml | dir> <keys.txt>\n  \
           xmlprop-cli propagate  <keys.txt> <rules.txt> <relation> \"X -> A\"\n  \
           xmlprop-cli cover      <keys.txt> <rules.txt> <relation>\n  \
           xmlprop-cli refine     <keys.txt> <rules.txt> <relation>\n  \
           xmlprop-cli shred      [--jobs N] <document.xml | dir> <rules.txt> [relation]\n  \
           xmlprop-cli import-xsd <schema.xsd>\n\n\
         Passing a directory to `validate` or `shred` processes every *.xml\n\
         file in it (sorted by name) through the parallel corpus pipeline\n\
         over N worker threads (default 1)."
    );
}

/// Splits `--jobs N` / `--jobs=N` out of an argument list, validating the
/// value; everything else is returned as positional arguments in order.
fn parse_jobs(args: &[String]) -> Result<(Vec<String>, Jobs), String> {
    let mut positional = Vec::new();
    let mut jobs = Jobs::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = arg.strip_prefix("--jobs=") {
            jobs = value.parse().map_err(|e| format!("--jobs: {e}"))?;
        } else if arg == "--jobs" {
            let value = iter
                .next()
                .ok_or_else(|| "--jobs expects a thread count".to_string())?;
            jobs = value.parse().map_err(|e| format!("--jobs: {e}"))?;
        } else if arg.starts_with("--") {
            return Err(format!("unknown option `{arg}`"));
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, jobs))
}

/// The `*.xml` files of a corpus directory, sorted by file name so batch
/// output and document indices are stable across runs and platforms.
fn corpus_files(dir: &str) -> Result<Vec<(String, std::path::PathBuf)>, String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("cannot read directory `{dir}`: {e}"))?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read directory `{dir}`: {e}"))?;
        let path = entry.path();
        let is_xml = path
            .extension()
            .is_some_and(|ext| ext.eq_ignore_ascii_case("xml"));
        if path.is_file() && is_xml {
            let name = entry.file_name().to_string_lossy().into_owned();
            files.push((name, path));
        }
    }
    files.sort();
    Ok(files)
}

fn read_and_parse(path: &Path) -> Result<Document, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    Document::parse_str(&text).map_err(|e| e.to_string())
}

/// Reads and parses a corpus directory over `jobs` worker threads (I/O and
/// parsing dominate batch wall-clock on large corpora, so they share the
/// pipeline's thread budget rather than serializing in front of it — the
/// fan-out scaffold is the pipeline crate's).  Returns the parsed documents
/// (with file names, in name order) and the per-file parse failures — a
/// malformed file never aborts the batch.
#[allow(clippy::type_complexity)]
fn load_corpus(
    dir: &str,
    jobs: Jobs,
) -> Result<(Vec<(String, Document)>, Vec<(String, String)>), String> {
    let files = corpus_files(dir)?;
    let outcomes = xmlprop::pipeline::fan_out(
        &files,
        jobs.get(),
        1, // chunk of 1: file I/O has no per-worker cache to keep warm
        || (),
        |(), _, (_, path)| read_and_parse(path),
    );
    let mut parsed = Vec::new();
    let mut failed = Vec::new();
    for ((name, _), outcome) in files.into_iter().zip(outcomes) {
        match outcome {
            Ok(doc) => parsed.push((name, doc)),
            Err(e) => failed.push((name, e)),
        }
    }
    Ok((parsed, failed))
}

/// `--jobs` only fans out over directory batches; say so instead of
/// silently ignoring it on a single document.
fn warn_single_document_jobs(jobs: Jobs) {
    if jobs.get() > 1 {
        eprintln!(
            "note: --jobs only affects directory batches; a single document is processed on one thread"
        );
    }
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn load_keys(path: &str) -> Result<KeySet, String> {
    let text = read(path)?;
    let mut keys = KeySet::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let key = XmlKey::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        keys.add(key);
    }
    if keys.is_empty() {
        return Err(format!("`{path}` contains no keys"));
    }
    Ok(keys)
}

fn load_transformation(path: &str) -> Result<Transformation, String> {
    Transformation::parse(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

fn load_rule<'t>(t: &'t Transformation, relation: &str) -> Result<&'t TableRule, String> {
    t.rule(relation).ok_or_else(|| {
        let known: Vec<&str> = t.rules().iter().map(|r| r.schema().name()).collect();
        format!(
            "no rule for relation `{relation}` (known: {})",
            known.join(", ")
        )
    })
}

fn cmd_validate(args: &[String]) -> Result<bool, String> {
    let (positional, jobs) = parse_jobs(args)?;
    let [doc_path, keys_path] = positional.as_slice() else {
        return Err("usage: validate [--jobs N] <document.xml | dir> <keys.txt>".to_string());
    };
    if Path::new(doc_path).is_dir() {
        return batch_validate(doc_path, keys_path, jobs);
    }
    warn_single_document_jobs(jobs);
    let doc = Document::parse_str(&read(doc_path)?).map_err(|e| format!("{doc_path}: {e}"))?;
    let keys = load_keys(keys_path)?;
    // All keys validate against one prepared document index.
    let mut index = keys.prepare();
    let doc_index = index.index_document(&doc);
    let mut ok = true;
    for (k, key) in keys.iter().enumerate() {
        let broken = index.violations_of(k, &doc, &doc_index);
        if broken.is_empty() {
            println!("[ok]   {key}");
        } else {
            ok = false;
            println!("[FAIL] {key}");
            for v in broken {
                println!("         {v}");
            }
        }
    }
    Ok(ok)
}

fn cmd_propagate(args: &[String]) -> Result<bool, String> {
    let [keys_path, rules_path, relation, fd_text] = args else {
        return Err("usage: propagate <keys.txt> <rules.txt> <relation> \"X -> A\"".to_string());
    };
    let sigma = load_keys(keys_path)?;
    let t = load_transformation(rules_path)?;
    let rule = load_rule(&t, relation)?;
    let fd: Fd = fd_text
        .parse()
        .map_err(|e| format!("invalid FD `{fd_text}`: {e}"))?;
    let outcomes = propagation_explained(&sigma, rule, &fd);
    let mut all = true;
    for o in &outcomes {
        if o.propagated {
            println!(
                "GUARANTEED: every field `{}` value is determined (keyed ancestor variable: {})",
                o.field,
                o.keyed_ancestor.as_deref().unwrap_or("-"),
            );
        } else {
            all = false;
            println!("NOT GUARANTEED for field `{}`:", o.field);
            if o.keyed_ancestor.is_none() {
                println!(
                    "  - no ancestor of the field's variable is transitively keyed by the LHS"
                );
            }
            if !o.unresolved_fields.is_empty() {
                let fields: Vec<&str> = o.unresolved_fields.iter().map(String::as_str).collect();
                println!(
                    "  - LHS field(s) {} are not guaranteed non-null whenever `{}` is non-null",
                    fields.join(", "),
                    o.field
                );
            }
        }
    }
    Ok(all)
}

fn cmd_cover(args: &[String]) -> Result<bool, String> {
    let [keys_path, rules_path, relation] = args else {
        return Err("usage: cover <keys.txt> <rules.txt> <relation>".to_string());
    };
    let sigma = load_keys(keys_path)?;
    let t = load_transformation(rules_path)?;
    let rule = load_rule(&t, relation)?;
    let cover = minimum_cover(&sigma, rule);
    if cover.is_empty() {
        println!("(no non-trivial dependencies are propagated)");
    }
    for fd in cover {
        println!("{fd}");
    }
    Ok(true)
}

fn cmd_refine(args: &[String]) -> Result<bool, String> {
    let [keys_path, rules_path, relation] = args else {
        return Err("usage: refine <keys.txt> <rules.txt> <relation>".to_string());
    };
    let sigma = load_keys(keys_path)?;
    let t = load_transformation(rules_path)?;
    let rule = load_rule(&t, relation)?;
    let design = refine(&sigma, rule);
    println!("-- minimum cover of the propagated dependencies");
    for fd in &design.cover {
        println!("--   {fd}");
    }
    println!("\n-- BCNF decomposition\n{}", design.bcnf_sql());
    println!("\n-- 3NF synthesis\n{}", design.third_normal_form_sql());
    Ok(true)
}

fn cmd_shred(args: &[String]) -> Result<bool, String> {
    let (positional, jobs) = parse_jobs(args)?;
    let (doc_path, rules_path, relation) = match positional.as_slice() {
        [d, r] => (d, r, None),
        [d, r, rel] => (d, r, Some(rel.as_str())),
        _ => {
            return Err(
                "usage: shred [--jobs N] <document.xml | dir> <rules.txt> [relation]".to_string(),
            )
        }
    };
    if Path::new(doc_path).is_dir() {
        return batch_shred(doc_path, rules_path, relation, jobs);
    }
    warn_single_document_jobs(jobs);
    let doc = Document::parse_str(&read(doc_path)?).map_err(|e| format!("{doc_path}: {e}"))?;
    let t = load_transformation(rules_path)?;
    // Shred through the prepared plan + document index.
    let mut universe = LabelUniverse::new();
    let plan = t.prepare(&mut universe);
    let doc_index = xmlprop::xmltree::DocIndex::build(&doc, &mut universe);
    match relation {
        Some(rel) => {
            load_rule(&t, rel)?; // keeps the "unknown relation" diagnostics
            let rule_plan = plan.plan(rel).expect("plan exists for every rule");
            println!("{}", rule_plan.shred(&doc, &doc_index));
        }
        None => {
            for relation in plan.shred_all(&doc, &doc_index).relations() {
                println!("{relation}");
            }
        }
    }
    Ok(true)
}

/// Batch validation: every `*.xml` file of `dir` against the key set, over
/// the parallel corpus pipeline.
fn batch_validate(dir: &str, keys_path: &str, jobs: Jobs) -> Result<bool, String> {
    let keys = load_keys(keys_path)?;
    let (parsed, failed) = load_corpus(dir, jobs)?;
    if parsed.is_empty() && failed.is_empty() {
        println!("(no *.xml documents in `{dir}`)");
        return Ok(true);
    }
    let bundle = CorpusBundle::for_validation(keys);
    let (names, docs): (Vec<String>, Vec<Document>) = parsed.into_iter().unzip();
    let options = CorpusOptions {
        jobs,
        shred: false,
        validate: true,
        covers: false,
    };
    let result = bundle.run(&docs, &options);
    for (name, outcome) in names.iter().zip(&result.documents) {
        if outcome.violations.is_empty() {
            println!("[ok]   {name}");
        } else {
            println!("[FAIL] {name} ({} violations)", outcome.violations.len());
            for v in &outcome.violations {
                println!("         {v}");
            }
        }
    }
    for (name, error) in &failed {
        println!("[SKIP] {name}: {error}");
    }
    println!(
        "{} documents: {} ok, {} with violations, {} unparseable ({} violations total, jobs={})",
        result.stats.documents + failed.len(),
        result.stats.documents - result.stats.invalid_documents,
        result.stats.invalid_documents,
        failed.len(),
        result.stats.violations,
        jobs.get(),
    );
    Ok(result.stats.invalid_documents == 0 && failed.is_empty())
}

/// Batch shredding: every `*.xml` file of `dir` through the prepared plans,
/// over the parallel corpus pipeline.  With a relation name only that
/// relation's tuple counts are reported.
fn batch_shred(
    dir: &str,
    rules_path: &str,
    relation: Option<&str>,
    jobs: Jobs,
) -> Result<bool, String> {
    let t = load_transformation(rules_path)?;
    // With a relation filter, reduce the transformation to that one rule
    // *before* preparing the bundle: the other rules are neither shredded
    // (no wasted work) nor counted in the totals reported below.
    let t = match relation {
        Some(rel) => {
            let rule = load_rule(&t, rel)?.clone(); // keeps the "unknown relation" diagnostics
            let mut only = Transformation::new(Vec::new());
            only.add_rule(rule);
            only
        }
        None => t,
    };
    let (parsed, failed) = load_corpus(dir, jobs)?;
    if parsed.is_empty() && failed.is_empty() {
        println!("(no *.xml documents in `{dir}`)");
        return Ok(true);
    }
    let bundle = CorpusBundle::for_shredding(t);
    let (names, docs): (Vec<String>, Vec<Document>) = parsed.into_iter().unzip();
    let options = CorpusOptions {
        jobs,
        shred: true,
        validate: false,
        covers: false,
    };
    let result = bundle.run(&docs, &options);
    for (name, outcome) in names.iter().zip(&result.documents) {
        let counts: Vec<String> = outcome
            .database
            .relations()
            .map(|r| format!("{}: {}", r.schema().name(), r.len()))
            .collect();
        println!("{name}: {}", counts.join(", "));
    }
    for (name, error) in &failed {
        println!("[SKIP] {name}: {error}");
    }
    println!(
        "{} documents shredded, {} tuples total, {} unparseable (jobs={})",
        result.stats.documents,
        result.stats.tuples,
        failed.len(),
        jobs.get(),
    );
    Ok(failed.is_empty())
}

fn cmd_import_xsd(args: &[String]) -> Result<bool, String> {
    let [xsd_path] = args else {
        return Err("usage: import-xsd <schema.xsd>".to_string());
    };
    let import = import_xsd_keys(&read(xsd_path)?).map_err(|e| e.to_string())?;
    for key in import.keys.iter() {
        println!("{key}");
    }
    for skipped in &import.skipped {
        eprintln!("skipped: {skipped}");
    }
    Ok(import.skipped.is_empty() || !import.keys.is_empty())
}
