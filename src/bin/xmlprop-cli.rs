//! `xmlprop-cli` — command-line front end for the library.
//!
//! ```text
//! xmlprop-cli validate  [--jobs N] <document.xml | corpus-dir> <keys.txt>
//! xmlprop-cli propagate <keys.txt> <rules.txt> <relation> "<X -> A>"
//! xmlprop-cli cover     <keys.txt> <rules.txt> <relation>
//! xmlprop-cli refine    <keys.txt> <rules.txt> <relation>
//! xmlprop-cli shred     [--jobs N] <document.xml | corpus-dir> <rules.txt> [relation]
//! xmlprop-cli mutate    <document.xml> <keys.txt> <rules.txt> <script.edits>
//! xmlprop-cli query     <document.xml> <keys.txt> <rules.txt> "<select ...>"
//! xmlprop-cli serve     [--addr HOST:PORT] [--jobs N] [--script FILE] [--read-timeout-ms N]
//!                       [--request-deadline-ms N] [--shed-wait-ms N] [--drain-ms N]
//!                       [--faults SPEC] [--fault-seed N] <keys.txt> <rules.txt>
//! xmlprop-cli import-xsd <schema.xsd>
//! ```
//!
//! *Keys files* contain one key per line in the paper's syntax
//! (`K2: (//book, (chapter, {@number}))`); `#` starts a comment.
//! *Rules files* use the transformation syntax of `xmlprop-xmltransform`
//! (`rule chapter(inBook, number, name) { … }`).
//!
//! When the document argument is a **directory**, `validate` and `shred`
//! switch to batch mode: every `*.xml` file in it (sorted by name, not
//! recursive) is processed through the parallel corpus pipeline over
//! `--jobs` worker threads.  A file that fails to parse is reported by name
//! and the batch continues; the exit code then signals failure without
//! aborting the remaining files.
//!
//! `mutate` opens a document for **incremental revalidation**: it applies
//! an edit script (one `settext`/`remove`/`insert` per line, nodes named
//! by their `n<id>` as printed in violation reports) and after each edit
//! patches the prepared index, the key-validation state and the shredded
//! database in place — reporting per edit the node count, the violation
//! count and the tuple-level insert/delete effect per relation, instead of
//! re-running the whole pipeline per edit.
//!
//! `query` runs one select/project/join query (the `xmlprop-query`
//! grammar) against the relations shredded from a document: the bundle is
//! prepared, the document shredded, and the plan printed alongside the
//! result table — joins on a propagated key execute as hash lookups, shown
//! as `[key lookup]` in the plan line.
//!
//! `serve` keeps the prepared bundle **resident** behind the `xmlprop/1`
//! line protocol (see the `xmlprop-server` crate docs): clients validate,
//! shred, propagate and cover against a shared snapshot, and an admin
//! `reload` hot-swaps a new bundle without blocking readers.  With
//! `--script FILE` the CLI instead starts an ephemeral server, drives the
//! scripted session against it, prints the deterministic transcript and
//! exits — the goldenable mode CI uses.
//!
//! Exit codes: `0` success, `1` domain verdict (violations found,
//! propagation not guaranteed, files skipped), `2` error — the mapping
//! comes from the shared [`xmlprop::ErrorKind`] table, so an error class
//! exits identically from every subcommand and maps onto the same wire
//! code over the server protocol.

use std::fs;
use std::path::Path;
use std::process::ExitCode;
use xmlprop::core::refine;
use xmlprop::pipeline::{
    parse_keys_text, parse_rules_text, CorpusBundle, CorpusOptions, DocOutcome, Faults, Jobs,
    PreparedState,
};
use xmlprop::prelude::*;
use xmlprop::server::render;
use xmlprop::server::{parse_script, run_script, Server, ServiceConfig};
use xmlprop::xmlkeys::import_xsd_keys;
use xmlprop::Error;

/// The one subcommand table: name, argument spec, and handler.  The main
/// dispatch, the `help` synopsis and every per-command usage error are all
/// generated from it, so the surfaces cannot drift apart — a subcommand
/// cannot exist without a usage line, and a usage line cannot survive its
/// subcommand's removal.
type Handler = fn(&[String]) -> Result<bool, Error>;
const COMMANDS: &[(&str, &str, Handler)] = &[
    (
        "validate",
        "[--jobs N] [--stream] <document.xml | dir> <keys.txt>",
        cmd_validate,
    ),
    (
        "propagate",
        "<keys.txt> <rules.txt> <relation> \"X -> A\"",
        cmd_propagate,
    ),
    ("cover", "<keys.txt> <rules.txt> <relation>", cmd_cover),
    ("refine", "<keys.txt> <rules.txt> <relation>", cmd_refine),
    (
        "shred",
        "[--jobs N] [--stream] <document.xml | dir> <rules.txt> [relation]",
        cmd_shred,
    ),
    (
        "mutate",
        "<document.xml> <keys.txt> <rules.txt> <script.edits>",
        cmd_mutate,
    ),
    (
        "query",
        "<document.xml> <keys.txt> <rules.txt> \"<select ...>\"",
        cmd_query,
    ),
    (
        "serve",
        "[--addr HOST:PORT] [--jobs N] [--script FILE] [--read-timeout-ms N] \
         [--request-deadline-ms N] [--shed-wait-ms N] [--drain-ms N] \
         [--faults SPEC] [--fault-seed N] <keys.txt> <rules.txt>",
        cmd_serve,
    ),
    ("import-xsd", "<schema.xsd>", cmd_import_xsd),
];

/// Every `--` option any subcommand accepts.  Kept next to the spec table
/// so the usage test can assert each one is documented; a flag parsed in
/// code but missing here (or here but absent from every spec line) fails
/// the test.
#[cfg(test)]
const FLAGS: &[&str] = &[
    "--jobs",
    "--stream",
    "--addr",
    "--script",
    "--read-timeout-ms",
    "--request-deadline-ms",
    "--shed-wait-ms",
    "--drain-ms",
    "--faults",
    "--fault-seed",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("help") | None => {
            print!("{}", usage_text());
            Ok(true)
        }
        Some(cmd) => match COMMANDS.iter().find(|(name, _, _)| *name == cmd) {
            Some((_, _, handler)) => handler(&args[1..]),
            None => Err(Error::usage(format!(
                "unknown subcommand `{cmd}`; try `xmlprop-cli help`"
            ))),
        },
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::from(error.exit_code())
        }
    }
}

/// The usage error for one subcommand, generated from [`COMMANDS`] so the
/// message a failing invocation prints is the same line `help` shows.
fn usage_error(cmd: &str) -> Error {
    let spec = COMMANDS
        .iter()
        .find(|(name, _, _)| *name == cmd)
        .map(|(_, spec, _)| *spec)
        .expect("usage_error is only called with table commands");
    Error::usage(format!("usage: {cmd} {spec}"))
}

/// Greedy word-wrap of a spec string into lines of at most `width`
/// characters, for the `help` synopsis; continuation lines get `indent`.
fn wrap_spec(spec: &str, width: usize, indent: &str) -> String {
    let mut lines: Vec<String> = Vec::new();
    for word in spec.split_whitespace() {
        match lines.last_mut() {
            Some(line) if line.len() + 1 + word.len() <= width => {
                line.push(' ');
                line.push_str(word);
            }
            _ => lines.push(word.to_string()),
        }
    }
    lines.join(&format!("\n{indent}"))
}

fn usage_text() -> String {
    let mut out =
        String::from("xmlprop-cli — XML key propagation to relations (ICDE 2003)\n\nUSAGE:\n");
    for (name, spec, _) in COMMANDS {
        let head = format!("  xmlprop-cli {name:<10} ");
        let indent = " ".repeat(head.len());
        out.push_str(&head);
        out.push_str(&wrap_spec(spec, 52, &indent));
        out.push('\n');
    }
    out.push_str("  xmlprop-cli help\n");
    out.push_str(
        "\nPassing a directory to `validate` or `shred` processes every *.xml\n\
         file in it (sorted by name) through the parallel corpus pipeline\n\
         over N worker threads (default 1).\n\n\
         `mutate` applies an edit script (settext/remove/insert lines over\n\
         n<id> node names) to the document, incrementally maintaining the\n\
         index, the key validation and the shredded relations per edit.\n\n\
         `query` shreds the document and runs one select/project/join query\n\
         against the resulting relations; joins equated on a propagated key\n\
         execute as hash lookups ([key lookup] in the printed plan).\n\n\
         `serve` answers validate/shred/propagate/cover/query requests over\n\
         the xmlprop/1 line protocol from a resident prepared bundle\n\
         (default address 127.0.0.1:7878, default 8 connection threads);\n\
         `reload` hot-swaps new keys/rules without blocking readers.  With\n\
         --script the session is self-driven and the transcript printed to\n\
         stdout.  Timeout flags harden the service (read/write timeout,\n\
         per-request deadline, bounded admission wait, shutdown drain\n\
         budget); --faults installs a seeded fault-injection schedule\n\
         (builds with the `faultline` feature only), e.g.\n\
         --faults conn.read=10%delay:2\n",
    );
    out
}

/// Strips every occurrence of a boolean flag (e.g. `--stream`) from an
/// argument list, reporting whether it was present.  Runs before
/// [`parse_jobs`], which rejects unknown `--` options.
fn split_flag(args: &[String], flag: &str) -> (Vec<String>, bool) {
    let mut found = false;
    let mut rest = Vec::with_capacity(args.len());
    for arg in args {
        if arg == flag {
            found = true;
        } else {
            rest.push(arg.clone());
        }
    }
    (rest, found)
}

/// Splits `--jobs N` / `--jobs=N` out of an argument list, validating the
/// value; everything else is returned as positional arguments in order.
/// This is the **one** jobs path: batch commands default the `None` to one
/// worker, `serve` to its gate width, and the `--jobs 0` / over-maximum
/// rejections are identical everywhere.
fn parse_jobs(args: &[String]) -> Result<(Vec<String>, Option<Jobs>), Error> {
    let mut positional = Vec::new();
    let mut jobs = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = arg.strip_prefix("--jobs=") {
            jobs = Some(parse_jobs_value(value)?);
        } else if arg == "--jobs" {
            let value = iter
                .next()
                .ok_or_else(|| Error::usage("--jobs expects a thread count"))?;
            jobs = Some(parse_jobs_value(value)?);
        } else if arg.starts_with("--") {
            return Err(Error::usage(format!("unknown option `{arg}`")));
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, jobs))
}

fn parse_jobs_value(value: &str) -> Result<Jobs, Error> {
    value
        .parse()
        .map_err(|e: Error| Error::jobs(format!("--jobs: {e}")))
}

/// The `*.xml` files of a corpus directory, sorted by file name so batch
/// output and document indices are stable across runs and platforms.
fn corpus_files(dir: &str) -> Result<Vec<(String, std::path::PathBuf)>, Error> {
    let entries =
        fs::read_dir(dir).map_err(|e| Error::io(format!("cannot read directory `{dir}`: {e}")))?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| Error::io(format!("cannot read directory `{dir}`: {e}")))?;
        let path = entry.path();
        let is_xml = path
            .extension()
            .is_some_and(|ext| ext.eq_ignore_ascii_case("xml"));
        if path.is_file() && is_xml {
            let name = entry.file_name().to_string_lossy().into_owned();
            files.push((name, path));
        }
    }
    files.sort();
    Ok(files)
}

fn read_and_parse(path: &Path) -> Result<Document, Error> {
    let text = fs::read_to_string(path).map_err(|e| Error::io(format!("cannot read: {e}")))?;
    Document::parse_str(&text).map_err(|e| Error::Parse(e.to_string()))
}

/// Reads and parses a corpus directory over `jobs` worker threads (I/O and
/// parsing dominate batch wall-clock on large corpora, so they share the
/// pipeline's thread budget rather than serializing in front of it — the
/// fan-out scaffold is the pipeline crate's).  Returns the parsed documents
/// (with file names, in name order) and the per-file parse failures — a
/// malformed file never aborts the batch.
#[allow(clippy::type_complexity)]
fn load_corpus(
    dir: &str,
    jobs: Jobs,
) -> Result<(Vec<(String, Document)>, Vec<(String, String)>), Error> {
    let files = corpus_files(dir)?;
    let outcomes = xmlprop::pipeline::fan_out(
        &files,
        jobs.get(),
        1, // chunk of 1: file I/O has no per-worker cache to keep warm
        || (),
        |(), _, (_, path)| read_and_parse(path),
    );
    let mut parsed = Vec::new();
    let mut failed = Vec::new();
    for ((name, _), outcome) in files.into_iter().zip(outcomes) {
        match outcome {
            Ok(doc) => parsed.push((name, doc)),
            Err(e) => failed.push((name, e.to_string())),
        }
    }
    Ok((parsed, failed))
}

/// `--jobs` only fans out over directory batches; say so instead of
/// silently ignoring it on a single document.
fn warn_single_document_jobs(jobs: Option<Jobs>) {
    if jobs.map(|j| j.get()).unwrap_or(1) > 1 {
        eprintln!(
            "note: --jobs only affects directory batches; a single document is processed on one thread"
        );
    }
}

fn read(path: &str) -> Result<String, Error> {
    fs::read_to_string(path).map_err(|e| Error::read(path, e))
}

fn load_keys(path: &str) -> Result<KeySet, Error> {
    parse_keys_text(&read(path)?, path)
}

fn load_transformation(path: &str) -> Result<Transformation, Error> {
    parse_rules_text(&read(path)?, path)
}

fn load_rule<'t>(t: &'t Transformation, relation: &str) -> Result<&'t TableRule, Error> {
    t.rule(relation).ok_or_else(|| {
        let known = t
            .rules()
            .iter()
            .map(|r| r.schema().name().to_string())
            .collect();
        Error::unknown_relation(relation, known)
    })
}

fn cmd_validate(args: &[String]) -> Result<bool, Error> {
    let (args, stream) = split_flag(args, "--stream");
    let (positional, jobs) = parse_jobs(&args)?;
    let [doc_path, keys_path] = positional.as_slice() else {
        return Err(usage_error("validate"));
    };
    if Path::new(doc_path).is_dir() {
        return batch_validate(doc_path, keys_path, jobs.unwrap_or_default(), stream);
    }
    warn_single_document_jobs(jobs);
    // The server's renderer against a validation-only bundle: a `validate`
    // request and this one-shot print identical bytes by construction.
    let bundle = CorpusBundle::for_validation(load_keys(keys_path)?);
    if stream {
        // The event-driven front end: the file's text goes straight through
        // the streaming checker — no document tree is ever built.
        let (ok, report) = render::validate_report_streaming(&bundle, &read(doc_path)?, doc_path)?;
        print!("{report}");
        return Ok(ok);
    }
    let doc = Document::parse_str(&read(doc_path)?).map_err(|e| Error::parse(doc_path, e))?;
    let mut scratch = bundle.scratch();
    let (ok, report) = render::validate_report(&bundle, &doc, &mut scratch);
    print!("{report}");
    Ok(ok)
}

fn cmd_propagate(args: &[String]) -> Result<bool, Error> {
    let [keys_path, rules_path, relation, fd_text] = args else {
        return Err(usage_error("propagate"));
    };
    let sigma = load_keys(keys_path)?;
    let t = load_transformation(rules_path)?;
    let rule = load_rule(&t, relation)?;
    let engine = PropagationEngine::prepare(&sigma, rule);
    let fd = render::parse_fd(fd_text)?;
    let (all, report) = render::propagate_report(&engine.propagation_explained(&fd));
    print!("{report}");
    Ok(all)
}

fn cmd_cover(args: &[String]) -> Result<bool, Error> {
    let [keys_path, rules_path, relation] = args else {
        return Err(usage_error("cover"));
    };
    let sigma = load_keys(keys_path)?;
    let t = load_transformation(rules_path)?;
    let rule = load_rule(&t, relation)?;
    let engine = PropagationEngine::prepare(&sigma, rule);
    print!("{}", render::render_cover(&engine.minimum_cover()));
    Ok(true)
}

fn cmd_refine(args: &[String]) -> Result<bool, Error> {
    let [keys_path, rules_path, relation] = args else {
        return Err(usage_error("refine"));
    };
    let sigma = load_keys(keys_path)?;
    let t = load_transformation(rules_path)?;
    let rule = load_rule(&t, relation)?;
    let design = refine(&sigma, rule);
    println!("-- minimum cover of the propagated dependencies");
    for fd in &design.cover {
        println!("--   {fd}");
    }
    println!("\n-- BCNF decomposition\n{}", design.bcnf_sql());
    println!("\n-- 3NF synthesis\n{}", design.third_normal_form_sql());
    Ok(true)
}

fn cmd_shred(args: &[String]) -> Result<bool, Error> {
    let (args, stream) = split_flag(args, "--stream");
    let (positional, jobs) = parse_jobs(&args)?;
    let (doc_path, rules_path, relation) = match positional.as_slice() {
        [d, r] => (d, r, None),
        [d, r, rel] => (d, r, Some(rel.as_str())),
        _ => return Err(usage_error("shred")),
    };
    if Path::new(doc_path).is_dir() {
        return batch_shred(
            doc_path,
            rules_path,
            relation,
            jobs.unwrap_or_default(),
            stream,
        );
    }
    warn_single_document_jobs(jobs);
    // The server's renderer against a shredding-only bundle: a `shred`
    // request and this one-shot print identical bytes by construction.
    let bundle = CorpusBundle::for_shredding(load_transformation(rules_path)?);
    if stream {
        let (_tuples, report) =
            render::shred_report_streaming(&bundle, &read(doc_path)?, doc_path, relation)?;
        print!("{report}");
        return Ok(true);
    }
    let doc = Document::parse_str(&read(doc_path)?).map_err(|e| Error::parse(doc_path, e))?;
    let mut scratch = bundle.scratch();
    let (_tuples, report) = render::shred_report(&bundle, &doc, &mut scratch, relation)?;
    print!("{report}");
    Ok(true)
}

/// One line naming an edit the way the script wrote it, for per-edit
/// reporting.
fn describe_edit(delta: &xmlprop::xmltree::Delta) -> String {
    use xmlprop::xmltree::Delta;
    match delta {
        Delta::SetText { node, .. } => format!("settext {node}"),
        Delta::RemoveSubtree { node } => format!("remove {node}"),
        Delta::InsertSubtree {
            parent, position, ..
        } => format!("insert {parent} {position}"),
    }
}

fn cmd_mutate(args: &[String]) -> Result<bool, Error> {
    let [doc_path, keys_path, rules_path, script_path] = args else {
        return Err(usage_error("mutate"));
    };
    let bundle = CorpusBundle::prepare(load_keys(keys_path)?, load_transformation(rules_path)?);
    let doc = Document::parse_str(&read(doc_path)?).map_err(|e| Error::parse(doc_path, e))?;
    let edits = xmlprop::pipeline::parse_edit_script(&read(script_path)?, script_path)?;
    let mut state = bundle.open_incremental(doc);
    println!(
        "{doc_path}: {} nodes, {} violations",
        state.document().len(),
        state.violation_count(),
    );
    let total = edits.len();
    for (line, delta) in &edits {
        // A semantically invalid edit (unknown node, position out of
        // range, …) aborts with the script line as its origin; the
        // document and all maintained state are left as of the previous
        // edit, exactly like a parse error before any edit ran.
        let report = bundle
            .apply_delta(&mut state, delta)
            .map_err(|e| Error::parse(&format!("{script_path}:{line}"), e))?;
        let inserted: usize = report.relations.iter().map(|d| d.inserted().len()).sum();
        let deleted: usize = report.relations.iter().map(|d| d.deleted().len()).sum();
        println!(
            "{script_path}:{line}: {} -> {} nodes, {} violations, tuples +{inserted} -{deleted}",
            describe_edit(delta),
            report.nodes,
            report.violations,
        );
    }
    for violation in state.violations() {
        println!("  {violation}");
    }
    println!(
        "{total} edits applied: {} nodes, {} violations",
        state.document().len(),
        state.violation_count(),
    );
    Ok(state.satisfies())
}

fn cmd_query(args: &[String]) -> Result<bool, Error> {
    let [doc_path, keys_path, rules_path, query_text] = args else {
        return Err(usage_error("query"));
    };
    // The server's renderer against the full prepared bundle: a `query`
    // request and this one-shot print identical bytes by construction.
    let bundle = CorpusBundle::prepare(load_keys(keys_path)?, load_transformation(rules_path)?);
    let doc = Document::parse_str(&read(doc_path)?).map_err(|e| Error::parse(doc_path, e))?;
    let mut scratch = bundle.scratch();
    let (_rows, report) = render::query_report(&bundle, &doc, &mut scratch, query_text)?;
    print!("{report}");
    Ok(true)
}

/// Matches a `--flag=value` or `--flag value` option, returning the value
/// (and consuming it from `iter` in the two-token form).
fn opt_value(
    arg: &str,
    iter: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<Option<String>, Error> {
    if let Some(value) = arg.strip_prefix(flag) {
        if let Some(value) = value.strip_prefix('=') {
            return Ok(Some(value.to_string()));
        }
        if value.is_empty() {
            return match iter.next() {
                Some(value) => Ok(Some(value.clone())),
                None => Err(Error::usage(format!("{flag} expects a value"))),
            };
        }
    }
    Ok(None)
}

/// Parses a positive millisecond count for a serve timeout flag.
fn parse_ms(flag: &str, value: &str) -> Result<std::time::Duration, Error> {
    let ms: u64 = value
        .parse()
        .map_err(|_| Error::usage(format!("{flag} expects milliseconds, got `{value}`")))?;
    if ms == 0 {
        return Err(Error::usage(format!("{flag} must be positive")));
    }
    Ok(std::time::Duration::from_millis(ms))
}

fn cmd_serve(args: &[String]) -> Result<bool, Error> {
    let mut rest = Vec::new();
    let mut addr: Option<String> = None;
    let mut script: Option<String> = None;
    let mut faults_spec: Option<String> = None;
    let mut fault_seed: u64 = 0;
    let mut config = ServiceConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(value) = opt_value(arg, &mut iter, "--addr")? {
            addr = Some(value);
        } else if let Some(value) = opt_value(arg, &mut iter, "--script")? {
            script = Some(value);
        } else if let Some(value) = opt_value(arg, &mut iter, "--read-timeout-ms")? {
            // One flag governs both socket directions; the request
            // deadline has its own.
            let timeout = parse_ms("--read-timeout-ms", &value)?;
            config.read_timeout = timeout;
            config.write_timeout = timeout;
        } else if let Some(value) = opt_value(arg, &mut iter, "--request-deadline-ms")? {
            config.request_deadline = parse_ms("--request-deadline-ms", &value)?;
        } else if let Some(value) = opt_value(arg, &mut iter, "--shed-wait-ms")? {
            config.shed_wait = parse_ms("--shed-wait-ms", &value)?;
        } else if let Some(value) = opt_value(arg, &mut iter, "--drain-ms")? {
            config.drain_timeout = parse_ms("--drain-ms", &value)?;
        } else if let Some(value) = opt_value(arg, &mut iter, "--faults")? {
            faults_spec = Some(value);
        } else if let Some(value) = opt_value(arg, &mut iter, "--fault-seed")? {
            fault_seed = value
                .parse()
                .map_err(|_| Error::usage(format!("--fault-seed expects a u64, got `{value}`")))?;
        } else {
            rest.push(arg.clone());
        }
    }
    let (positional, jobs) = parse_jobs(&rest)?;
    let [keys_path, rules_path] = positional.as_slice() else {
        return Err(usage_error("serve"));
    };
    // In builds without the `faultline` feature this reports a usage error
    // ("not compiled in") — release servers cannot inject faults at all.
    let faults = match faults_spec {
        Some(spec) => Faults::parse(&spec, fault_seed)?,
        None => Faults::disabled(),
    };
    let bundle = CorpusBundle::prepare(load_keys(keys_path)?, load_transformation(rules_path)?);
    // Resident service default: enough gate width for concurrent clients;
    // batch commands keep their single-worker default.
    let jobs = match jobs {
        Some(jobs) => jobs,
        None => Jobs::new(8).expect("8 is a valid thread count"),
    };
    match script {
        Some(script_path) => {
            let text = read(&script_path)?;
            let base = Path::new(&script_path)
                .parent()
                .filter(|p| !p.as_os_str().is_empty())
                .unwrap_or(Path::new("."));
            let steps = parse_script(&text, base)?;
            let server = Server::bind_with(
                addr.as_deref().unwrap_or("127.0.0.1:0"),
                bundle,
                jobs,
                config,
                faults,
            )?;
            let mut out = std::io::stdout().lock();
            let outcome = run_script(server.local_addr(), &steps, &mut out);
            server.shutdown();
            outcome.map(|()| true)
        }
        None => {
            let active = faults.is_active();
            let server = Server::bind_with(
                addr.as_deref().unwrap_or("127.0.0.1:7878"),
                bundle,
                jobs,
                config,
                faults,
            )?;
            eprintln!(
                "xmlprop-cli serve: listening on {} (jobs={}, bundle epoch {}{})",
                server.local_addr(),
                jobs.get(),
                server.epoch(),
                if active { ", fault injection ON" } else { "" },
            );
            server.join();
            Ok(true)
        }
    }
}

/// Runs a directory batch: the DOM pipeline over parsed documents, or —
/// with `options.stream` — one streaming pass per file straight off its
/// text (no document trees at all).  Returns `(name, outcome)` pairs in
/// file-name order plus the per-file failures, or `None` for an empty
/// directory.
#[allow(clippy::type_complexity)]
fn batch_outcomes(
    dir: &str,
    bundle: &CorpusBundle,
    options: &CorpusOptions,
) -> Result<Option<(Vec<(String, DocOutcome)>, Vec<(String, String)>)>, Error> {
    if options.stream {
        let files = corpus_files(dir)?;
        if files.is_empty() {
            return Ok(None);
        }
        let results = xmlprop::pipeline::fan_out(
            &files,
            options.jobs.get(),
            1, // chunk of 1: file I/O has no per-worker cache to keep warm
            || (),
            |(), _, (_, path)| {
                fs::read_to_string(path)
                    .map_err(|e| Error::io(format!("cannot read: {e}")))
                    .and_then(|text| {
                        bundle
                            .stream_text(&text, options)
                            .map_err(|e| Error::Parse(e.to_string()))
                    })
            },
        );
        let mut outcomes = Vec::new();
        let mut failed = Vec::new();
        for ((name, _), result) in files.into_iter().zip(results) {
            match result {
                Ok(outcome) => outcomes.push((name, outcome)),
                Err(e) => failed.push((name, e.to_string())),
            }
        }
        Ok(Some((outcomes, failed)))
    } else {
        let (parsed, failed) = load_corpus(dir, options.jobs)?;
        if parsed.is_empty() && failed.is_empty() {
            return Ok(None);
        }
        let (names, docs): (Vec<String>, Vec<Document>) = parsed.into_iter().unzip();
        let result = bundle.run(&docs, options);
        Ok(Some((
            names.into_iter().zip(result.documents).collect(),
            failed,
        )))
    }
}

/// Batch validation: every `*.xml` file of `dir` against the key set, over
/// the parallel corpus pipeline (or its streaming front end).
fn batch_validate(dir: &str, keys_path: &str, jobs: Jobs, stream: bool) -> Result<bool, Error> {
    let bundle = CorpusBundle::for_validation(load_keys(keys_path)?);
    let options = CorpusOptions {
        jobs,
        shred: false,
        validate: true,
        covers: false,
        stream,
    };
    let Some((outcomes, failed)) = batch_outcomes(dir, &bundle, &options)? else {
        println!("(no *.xml documents in `{dir}`)");
        return Ok(true);
    };
    let mut invalid = 0usize;
    let mut violations_total = 0usize;
    for (name, outcome) in &outcomes {
        if outcome.violations.is_empty() {
            println!("[ok]   {name}");
        } else {
            invalid += 1;
            violations_total += outcome.violations.len();
            println!("[FAIL] {name} ({} violations)", outcome.violations.len());
            for v in &outcome.violations {
                println!("         {v}");
            }
        }
    }
    for (name, error) in &failed {
        println!("[SKIP] {name}: {error}");
    }
    println!(
        "{} documents: {} ok, {} with violations, {} unparseable ({} violations total, jobs={})",
        outcomes.len() + failed.len(),
        outcomes.len() - invalid,
        invalid,
        failed.len(),
        violations_total,
        jobs.get(),
    );
    Ok(invalid == 0 && failed.is_empty())
}

/// Batch shredding: every `*.xml` file of `dir` through the prepared plans,
/// over the parallel corpus pipeline (or its streaming front end).  With a
/// relation name only that relation's tuple counts are reported.
fn batch_shred(
    dir: &str,
    rules_path: &str,
    relation: Option<&str>,
    jobs: Jobs,
    stream: bool,
) -> Result<bool, Error> {
    let t = load_transformation(rules_path)?;
    // With a relation filter, reduce the transformation to that one rule
    // *before* preparing the bundle: the other rules are neither shredded
    // (no wasted work) nor counted in the totals reported below.
    let t = match relation {
        Some(rel) => {
            let rule = load_rule(&t, rel)?.clone(); // keeps the "unknown relation" diagnostics
            let mut only = Transformation::new(Vec::new());
            only.add_rule(rule);
            only
        }
        None => t,
    };
    let bundle = CorpusBundle::for_shredding(t);
    let options = CorpusOptions {
        jobs,
        shred: true,
        validate: false,
        covers: false,
        stream,
    };
    let Some((outcomes, failed)) = batch_outcomes(dir, &bundle, &options)? else {
        println!("(no *.xml documents in `{dir}`)");
        return Ok(true);
    };
    let mut tuples_total = 0usize;
    for (name, outcome) in &outcomes {
        tuples_total += outcome.tuples;
        let counts: Vec<String> = outcome
            .database
            .relations()
            .map(|r| format!("{}: {}", r.schema().name(), r.len()))
            .collect();
        println!("{name}: {}", counts.join(", "));
    }
    for (name, error) in &failed {
        println!("[SKIP] {name}: {error}");
    }
    println!(
        "{} documents shredded, {} tuples total, {} unparseable (jobs={})",
        outcomes.len(),
        tuples_total,
        failed.len(),
        jobs.get(),
    );
    Ok(failed.is_empty())
}

fn cmd_import_xsd(args: &[String]) -> Result<bool, Error> {
    let [xsd_path] = args else {
        return Err(usage_error("import-xsd"));
    };
    let import = import_xsd_keys(&read(xsd_path)?).map_err(|e| Error::parse(xsd_path, e))?;
    for key in import.keys.iter() {
        println!("{key}");
    }
    for skipped in &import.skipped {
        eprintln!("skipped: {skipped}");
    }
    Ok(import.skipped.is_empty() || !import.keys.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_covers_every_subcommand_and_flag() {
        let usage = usage_text();
        for (name, _, _) in COMMANDS {
            assert!(
                usage.contains(&format!("xmlprop-cli {name}")),
                "subcommand `{name}` missing from usage:\n{usage}"
            );
        }
        assert!(usage.contains("xmlprop-cli help"), "help missing:\n{usage}");
        for flag in FLAGS {
            assert!(
                usage.contains(flag),
                "flag `{flag}` missing from usage:\n{usage}"
            );
            assert!(
                COMMANDS.iter().any(|(_, spec, _)| spec.contains(flag)),
                "flag `{flag}` absent from every command spec"
            );
        }
    }

    #[test]
    fn per_command_usage_errors_match_the_table() {
        for (name, spec, _) in COMMANDS {
            let text = usage_error(name).to_string();
            assert!(
                text.contains(&format!("usage: {name} ")) && text.contains(spec),
                "usage error for `{name}` drifted from the table: {text}"
            );
        }
    }
}
