//! `xmlprop-cli` — command-line front end for the library.
//!
//! ```text
//! xmlprop-cli validate  <document.xml> <keys.txt>
//! xmlprop-cli propagate <keys.txt> <rules.txt> <relation> "<X -> A>"
//! xmlprop-cli cover     <keys.txt> <rules.txt> <relation>
//! xmlprop-cli refine    <keys.txt> <rules.txt> <relation>
//! xmlprop-cli shred     <document.xml> <rules.txt> [relation]
//! xmlprop-cli import-xsd <schema.xsd>
//! ```
//!
//! *Keys files* contain one key per line in the paper's syntax
//! (`K2: (//book, (chapter, {@number}))`); `#` starts a comment.
//! *Rules files* use the transformation syntax of `xmlprop-xmltransform`
//! (`rule chapter(inBook, number, name) { … }`).

use std::fs;
use std::process::ExitCode;
use xmlprop::core::{minimum_cover, propagation_explained, refine};
use xmlprop::prelude::*;
use xmlprop::xmlkeys::import_xsd_keys;
use xmlprop::xmlpath::LabelUniverse;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("validate") => cmd_validate(&args[1..]),
        Some("propagate") => cmd_propagate(&args[1..]),
        Some("cover") => cmd_cover(&args[1..]),
        Some("refine") => cmd_refine(&args[1..]),
        Some("shred") => cmd_shred(&args[1..]),
        Some("import-xsd") => cmd_import_xsd(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(true)
        }
        Some(other) => Err(format!(
            "unknown subcommand `{other}`; try `xmlprop-cli help`"
        )),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "xmlprop-cli — XML key propagation to relations (ICDE 2003)\n\n\
         USAGE:\n  \
           xmlprop-cli validate   <document.xml> <keys.txt>\n  \
           xmlprop-cli propagate  <keys.txt> <rules.txt> <relation> \"X -> A\"\n  \
           xmlprop-cli cover      <keys.txt> <rules.txt> <relation>\n  \
           xmlprop-cli refine     <keys.txt> <rules.txt> <relation>\n  \
           xmlprop-cli shred      <document.xml> <rules.txt> [relation]\n  \
           xmlprop-cli import-xsd <schema.xsd>"
    );
}

fn read(path: &str) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))
}

fn load_keys(path: &str) -> Result<KeySet, String> {
    let text = read(path)?;
    let mut keys = KeySet::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let key = XmlKey::parse(line).map_err(|e| format!("{path}:{}: {e}", lineno + 1))?;
        keys.add(key);
    }
    if keys.is_empty() {
        return Err(format!("`{path}` contains no keys"));
    }
    Ok(keys)
}

fn load_transformation(path: &str) -> Result<Transformation, String> {
    Transformation::parse(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

fn load_rule<'t>(t: &'t Transformation, relation: &str) -> Result<&'t TableRule, String> {
    t.rule(relation).ok_or_else(|| {
        let known: Vec<&str> = t.rules().iter().map(|r| r.schema().name()).collect();
        format!(
            "no rule for relation `{relation}` (known: {})",
            known.join(", ")
        )
    })
}

fn cmd_validate(args: &[String]) -> Result<bool, String> {
    let [doc_path, keys_path] = args else {
        return Err("usage: validate <document.xml> <keys.txt>".to_string());
    };
    let doc = Document::parse_str(&read(doc_path)?).map_err(|e| format!("{doc_path}: {e}"))?;
    let keys = load_keys(keys_path)?;
    // All keys validate against one prepared document index.
    let mut index = keys.prepare();
    let doc_index = index.index_document(&doc);
    let mut ok = true;
    for (k, key) in keys.iter().enumerate() {
        let broken = index.violations_of(k, &doc, &doc_index);
        if broken.is_empty() {
            println!("[ok]   {key}");
        } else {
            ok = false;
            println!("[FAIL] {key}");
            for v in broken {
                println!("         {v}");
            }
        }
    }
    Ok(ok)
}

fn cmd_propagate(args: &[String]) -> Result<bool, String> {
    let [keys_path, rules_path, relation, fd_text] = args else {
        return Err("usage: propagate <keys.txt> <rules.txt> <relation> \"X -> A\"".to_string());
    };
    let sigma = load_keys(keys_path)?;
    let t = load_transformation(rules_path)?;
    let rule = load_rule(&t, relation)?;
    let fd: Fd = fd_text
        .parse()
        .map_err(|e| format!("invalid FD `{fd_text}`: {e}"))?;
    let outcomes = propagation_explained(&sigma, rule, &fd);
    let mut all = true;
    for o in &outcomes {
        if o.propagated {
            println!(
                "GUARANTEED: every field `{}` value is determined (keyed ancestor variable: {})",
                o.field,
                o.keyed_ancestor.as_deref().unwrap_or("-"),
            );
        } else {
            all = false;
            println!("NOT GUARANTEED for field `{}`:", o.field);
            if o.keyed_ancestor.is_none() {
                println!(
                    "  - no ancestor of the field's variable is transitively keyed by the LHS"
                );
            }
            if !o.unresolved_fields.is_empty() {
                let fields: Vec<&str> = o.unresolved_fields.iter().map(String::as_str).collect();
                println!(
                    "  - LHS field(s) {} are not guaranteed non-null whenever `{}` is non-null",
                    fields.join(", "),
                    o.field
                );
            }
        }
    }
    Ok(all)
}

fn cmd_cover(args: &[String]) -> Result<bool, String> {
    let [keys_path, rules_path, relation] = args else {
        return Err("usage: cover <keys.txt> <rules.txt> <relation>".to_string());
    };
    let sigma = load_keys(keys_path)?;
    let t = load_transformation(rules_path)?;
    let rule = load_rule(&t, relation)?;
    let cover = minimum_cover(&sigma, rule);
    if cover.is_empty() {
        println!("(no non-trivial dependencies are propagated)");
    }
    for fd in cover {
        println!("{fd}");
    }
    Ok(true)
}

fn cmd_refine(args: &[String]) -> Result<bool, String> {
    let [keys_path, rules_path, relation] = args else {
        return Err("usage: refine <keys.txt> <rules.txt> <relation>".to_string());
    };
    let sigma = load_keys(keys_path)?;
    let t = load_transformation(rules_path)?;
    let rule = load_rule(&t, relation)?;
    let design = refine(&sigma, rule);
    println!("-- minimum cover of the propagated dependencies");
    for fd in &design.cover {
        println!("--   {fd}");
    }
    println!("\n-- BCNF decomposition\n{}", design.bcnf_sql());
    println!("\n-- 3NF synthesis\n{}", design.third_normal_form_sql());
    Ok(true)
}

fn cmd_shred(args: &[String]) -> Result<bool, String> {
    let (doc_path, rules_path, relation) = match args {
        [d, r] => (d, r, None),
        [d, r, rel] => (d, r, Some(rel.as_str())),
        _ => return Err("usage: shred <document.xml> <rules.txt> [relation]".to_string()),
    };
    let doc = Document::parse_str(&read(doc_path)?).map_err(|e| format!("{doc_path}: {e}"))?;
    let t = load_transformation(rules_path)?;
    // Shred through the prepared plan + document index.
    let mut universe = LabelUniverse::new();
    let plan = t.prepare(&mut universe);
    let doc_index = xmlprop::xmltree::DocIndex::build(&doc, &mut universe);
    match relation {
        Some(rel) => {
            load_rule(&t, rel)?; // keeps the "unknown relation" diagnostics
            let rule_plan = plan.plan(rel).expect("plan exists for every rule");
            println!("{}", rule_plan.shred(&doc, &doc_index));
        }
        None => {
            for relation in plan.shred_all(&doc, &doc_index).relations() {
                println!("{relation}");
            }
        }
    }
    Ok(true)
}

fn cmd_import_xsd(args: &[String]) -> Result<bool, String> {
    let [xsd_path] = args else {
        return Err("usage: import-xsd <schema.xsd>".to_string());
    };
    let import = import_xsd_keys(&read(xsd_path)?).map_err(|e| e.to_string())?;
    for key in import.keys.iter() {
        println!("{key}");
    }
    for skipped in &import.skipped {
        eprintln!("skipped: {skipped}");
    }
    Ok(import.skipped.is_empty() || !import.keys.is_empty())
}
