//! FD-engine bench: attribute closure and `minimum_cover` at the
//! 10³–10⁴-FD scale.
//!
//! The paper leans on FD implication being "checked in linear time using the
//! Armstrong's Axioms"; this bench pins that claim on the interned engine of
//! `xmlprop-reldb`:
//!
//! * `closure_indexed` — one closure query over a prepared [`FdIndex`]
//!   (counters already built): the pure linear-time inner loop;
//! * `closure` — the `String` facade, including interning the FD set, as
//!   the examples and the CLI call it;
//! * `minimum_cover` — the quadratic cover minimization whose inner
//!   implication tests dominate the Fig. 7(a) curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmlprop_reldb::intern::{AttrUniverse, FdIndex};
use xmlprop_reldb::{closure, minimum_cover};
use xmlprop_workload::{closure_seed, generate_fds, FdSetConfig};

const SIZES: [usize; 3] = [1_000, 5_000, 10_000];

fn bench_closure_indexed(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure_indexed");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n in SIZES {
        let config = FdSetConfig::sized(n);
        let fds = generate_fds(&config);
        let mut u = AttrUniverse::from_fds(&fds);
        let interned: Vec<_> = fds.iter().map(|fd| u.intern_fd(fd)).collect();
        let index = FdIndex::new(u.len(), &interned);
        let seed = u.lookup_set(&closure_seed(&config, 3));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| index.closure(&seed));
        });
    }
    group.finish();
}

fn bench_closure_facade(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n in SIZES {
        let config = FdSetConfig::sized(n);
        let fds = generate_fds(&config);
        let seed = closure_seed(&config, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| closure(&seed, &fds));
        });
    }
    group.finish();
}

fn bench_minimum_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimum_cover");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for n in SIZES {
        let fds = generate_fds(&FdSetConfig::sized(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| minimum_cover(&fds));
        });
    }
    group.finish();
}

criterion_group!(
    fd_engine,
    bench_closure_indexed,
    bench_closure_facade,
    bench_minimum_cover
);
criterion_main!(fd_engine);
