//! Criterion bench for Fig. 7(b): effect of the table-tree depth on checking
//! key propagation (fields = 15, keys = 10), comparing Algorithm
//! `propagation` against `GminimumCover`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmlprop_bench::{probe_fds, FIG7B_FIELDS, FIG7B_KEYS};
use xmlprop_core::{propagation, GMinimumCover, PropagationEngine};
use xmlprop_workload::{generate, WorkloadConfig};

fn bench_depth(c: &mut Criterion) {
    let mut prop_group = c.benchmark_group("fig7b_propagation_by_depth");
    prop_group.sample_size(20);
    prop_group.measurement_time(std::time::Duration::from_secs(2));
    prop_group.warm_up_time(std::time::Duration::from_secs(1));
    for depth in [2usize, 5, 10, 15, 20] {
        let fields = FIG7B_FIELDS.max(depth);
        let w = generate(&WorkloadConfig::new(fields, depth, FIG7B_KEYS));
        let probes = probe_fds(&w, 4);
        prop_group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                probes
                    .iter()
                    .map(|fd| propagation(&w.sigma, &w.universal, fd))
                    .collect::<Vec<_>>()
            });
        });
    }
    prop_group.finish();

    let mut engine_group = c.benchmark_group("fig7b_engine_by_depth");
    engine_group.sample_size(20);
    engine_group.measurement_time(std::time::Duration::from_secs(2));
    engine_group.warm_up_time(std::time::Duration::from_secs(1));
    for depth in [2usize, 5, 10, 15, 20] {
        let fields = FIG7B_FIELDS.max(depth);
        let w = generate(&WorkloadConfig::new(fields, depth, FIG7B_KEYS));
        let probes = probe_fds(&w, 4);
        let engine = PropagationEngine::new(&w.sigma, &w.universal);
        engine_group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| engine.propagate_all(&probes));
        });
    }
    engine_group.finish();

    let mut g_group = c.benchmark_group("fig7b_gminimumcover_by_depth");
    g_group.sample_size(10);
    g_group.measurement_time(std::time::Duration::from_secs(2));
    g_group.warm_up_time(std::time::Duration::from_secs(1));
    for depth in [2usize, 5, 10, 15, 20] {
        let fields = FIG7B_FIELDS.max(depth);
        let w = generate(&WorkloadConfig::new(fields, depth, FIG7B_KEYS));
        let probes = probe_fds(&w, 4);
        g_group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| {
                let checker = GMinimumCover::new(w.sigma.clone(), w.universal.clone());
                probes
                    .iter()
                    .map(|fd| checker.check(fd))
                    .collect::<Vec<_>>()
            });
        });
    }
    g_group.finish();
}

criterion_group!(fig7b, bench_depth);
criterion_main!(fig7b);
