//! Corpus-pipeline bench: whole-corpus shredding and validation through
//! one shared [`xmlprop_pipeline::CorpusBundle`] at 1/2/4 worker threads.
//!
//! The corpus-shaped companion to the single-document `shred` bench: the
//! prepared bundle is built once outside the timed region (that is the
//! deployment model — one schema, many documents), so the measured cost is
//! pure fan-out + per-document engine time + ordered merge.  Thread-scaling
//! headroom depends on the host's core count; the wider 1–8-thread sweep
//! with committed numbers lives in the `corpus` experiment of
//! `paper_experiments` (tracked as `corpus_*` rows in `BENCH_fig7.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmlprop_bench::corpus_setup;
use xmlprop_pipeline::{CorpusOptions, Jobs};

fn bench_corpus_shred(c: &mut Criterion) {
    let (bundle, docs, report) = corpus_setup(true);
    let mut group = c.benchmark_group("corpus_shred");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for jobs in [1usize, 2, 4] {
        let options = CorpusOptions {
            jobs: Jobs::new(jobs).unwrap(),
            shred: true,
            validate: false,
            covers: false,
            stream: false,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}nodes/{jobs}j", report.total_nodes)),
            &jobs,
            |b, _| {
                b.iter(|| bundle.run(&docs, &options));
            },
        );
    }
    group.finish();
}

fn bench_corpus_validate(c: &mut Criterion) {
    let (bundle, docs, report) = corpus_setup(true);
    let mut group = c.benchmark_group("corpus_validate");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for jobs in [1usize, 2, 4] {
        let options = CorpusOptions {
            jobs: Jobs::new(jobs).unwrap(),
            shred: false,
            validate: true,
            covers: false,
            stream: false,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}nodes/{jobs}j", report.total_nodes)),
            &jobs,
            |b, _| {
                b.iter(|| bundle.run(&docs, &options));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_corpus_shred, bench_corpus_validate);
criterion_main!(benches);
