//! Criterion bench for Fig. 7(c): effect of the number of XML keys on
//! checking key propagation (fields = 15, depth = 10), comparing Algorithm
//! `propagation` against `GminimumCover`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmlprop_bench::{probe_fds, FIG7C_DEPTH, FIG7C_FIELDS};
use xmlprop_core::{propagation, GMinimumCover, PropagationEngine};
use xmlprop_workload::{generate, WorkloadConfig};

fn bench_keys(c: &mut Criterion) {
    let mut prop_group = c.benchmark_group("fig7c_propagation_by_keys");
    prop_group.sample_size(20);
    prop_group.measurement_time(std::time::Duration::from_secs(2));
    prop_group.warm_up_time(std::time::Duration::from_secs(1));
    for keys in [10usize, 25, 50, 75, 100] {
        let w = generate(&WorkloadConfig::new(FIG7C_FIELDS, FIG7C_DEPTH, keys));
        let probes = probe_fds(&w, 4);
        prop_group.bench_with_input(BenchmarkId::from_parameter(keys), &keys, |b, _| {
            b.iter(|| {
                probes
                    .iter()
                    .map(|fd| propagation(&w.sigma, &w.universal, fd))
                    .collect::<Vec<_>>()
            });
        });
    }
    prop_group.finish();

    let mut engine_group = c.benchmark_group("fig7c_engine_by_keys");
    engine_group.sample_size(20);
    engine_group.measurement_time(std::time::Duration::from_secs(2));
    engine_group.warm_up_time(std::time::Duration::from_secs(1));
    for keys in [10usize, 25, 50, 75, 100] {
        let w = generate(&WorkloadConfig::new(FIG7C_FIELDS, FIG7C_DEPTH, keys));
        let probes = probe_fds(&w, 4);
        let engine = PropagationEngine::new(&w.sigma, &w.universal);
        engine_group.bench_with_input(BenchmarkId::from_parameter(keys), &keys, |b, _| {
            b.iter(|| engine.propagate_all(&probes));
        });
    }
    engine_group.finish();

    let mut g_group = c.benchmark_group("fig7c_gminimumcover_by_keys");
    g_group.sample_size(10);
    g_group.measurement_time(std::time::Duration::from_secs(2));
    g_group.warm_up_time(std::time::Duration::from_secs(1));
    for keys in [10usize, 25, 50, 75, 100] {
        let w = generate(&WorkloadConfig::new(FIG7C_FIELDS, FIG7C_DEPTH, keys));
        let probes = probe_fds(&w, 4);
        g_group.bench_with_input(BenchmarkId::from_parameter(keys), &keys, |b, _| {
            b.iter(|| {
                let checker = GMinimumCover::new(w.sigma.clone(), w.universal.clone());
                probes
                    .iter()
                    .map(|fd| checker.check(fd))
                    .collect::<Vec<_>>()
            });
        });
    }
    g_group.finish();
}

criterion_group!(fig7c, bench_keys);
criterion_main!(fig7c);
