//! Criterion bench for Fig. 7(a): minimum-cover computation time as a
//! function of the number of universal-relation fields, with the exponential
//! `naive` baseline on the small sizes where it is tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmlprop_bench::{FIG7A_DEPTH, FIG7A_KEYS};
use xmlprop_core::{minimum_cover, naive_minimum_cover, PropagationEngine};
use xmlprop_workload::{generate, WorkloadConfig};

fn bench_minimum_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_minimum_cover");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for fields in [5usize, 10, 25, 50, 100, 200] {
        let w = generate(&WorkloadConfig::new(fields, FIG7A_DEPTH, FIG7A_KEYS));
        group.bench_with_input(BenchmarkId::from_parameter(fields), &w, |b, w| {
            b.iter(|| minimum_cover(&w.sigma, &w.universal));
        });
    }
    group.finish();

    // The same computation from a prepared engine: isolates the cover
    // algorithm itself from the per-call Σ/tree preparation of the facade.
    let mut group = c.benchmark_group("fig7a_minimum_cover_prepared");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for fields in [5usize, 10, 25, 50, 100, 200] {
        let w = generate(&WorkloadConfig::new(fields, FIG7A_DEPTH, FIG7A_KEYS));
        let engine = PropagationEngine::new(&w.sigma, &w.universal);
        group.bench_with_input(BenchmarkId::from_parameter(fields), &engine, |b, engine| {
            b.iter(|| engine.minimum_cover());
        });
    }
    group.finish();
}

fn bench_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_naive_baseline");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for fields in [5usize, 8, 10, 12] {
        let w = generate(&WorkloadConfig::new(
            fields,
            FIG7A_DEPTH.min(fields),
            FIG7A_KEYS,
        ));
        group.bench_with_input(BenchmarkId::from_parameter(fields), &w, |b, w| {
            b.iter(|| naive_minimum_cover(&w.sigma, &w.universal));
        });
    }
    group.finish();
}

criterion_group!(fig7a, bench_minimum_cover, bench_naive);
criterion_main!(fig7a);
