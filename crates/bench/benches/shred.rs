//! Document-engine bench: shredding and key validation at the 10⁴-node
//! scale, facade versus prepared.
//!
//! The DOM-to-relational literature identifies the shredding pass as the
//! throughput bottleneck of XML→relational mapping; this bench pins the
//! compiled document engine against the string baseline on one generated
//! workload document:
//!
//! * `shred_facade` — [`xmlprop_xmltransform::TableRule::shred`], the
//!   string walk with cloned `BTreeMap` bindings;
//! * `shred_prepared` — [`xmlprop_xmltransform::ShredPlan::shred`] over a
//!   prebuilt [`xmlprop_xmltree::DocIndex`];
//! * `validate_facade` — [`xmlprop_xmlkeys::satisfies_all`] string walk;
//! * `validate_prepared` — [`xmlprop_xmlkeys::KeyIndex::satisfies`] over a
//!   prebuilt index;
//! * `doc_index_build` — the one-time `DocIndex` preparation the prepared
//!   rows amortize.
//!
//! The wider 10⁴–10⁶-node sweep lives in the `docs` experiment of
//! `paper_experiments` (tracked in `BENCH_fig7.json`); this Criterion bench
//! keeps a statistically measured point inside the CI bench-smoke gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmlprop_workload::{generate, generate_document_with_report, DocConfig, WorkloadConfig};
use xmlprop_xmltree::{DocIndex, Document, LabelUniverse};

/// One generated workload document of roughly 10⁴ nodes.
fn workload_doc() -> (xmlprop_workload::Workload, Document, usize) {
    let w = generate(&WorkloadConfig::new(15, 4, 10));
    let (doc, report) = generate_document_with_report(
        &w,
        &DocConfig {
            branching: 6,
            omission_probability: 0.1,
            seed: 11,
            depth: Some(4),
        },
    );
    (w, doc, report.nodes)
}

fn bench_shred_facade(c: &mut Criterion) {
    let (w, doc, nodes) = workload_doc();
    let mut group = c.benchmark_group("shred_facade");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
        b.iter(|| w.universal.shred(&doc));
    });
    group.finish();
}

fn bench_shred_prepared(c: &mut Criterion) {
    let (w, doc, nodes) = workload_doc();
    let mut universe = LabelUniverse::new();
    let plan = w.universal.prepare(&mut universe);
    let index = DocIndex::build(&doc, &mut universe);
    let mut group = c.benchmark_group("shred_prepared");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
        b.iter(|| plan.shred(&doc, &index));
    });
    group.finish();
}

fn bench_validate_facade(c: &mut Criterion) {
    let (w, doc, nodes) = workload_doc();
    let mut group = c.benchmark_group("validate_facade");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
        b.iter(|| xmlprop_xmlkeys::satisfies_all(&doc, w.sigma.iter()));
    });
    group.finish();
}

fn bench_validate_prepared(c: &mut Criterion) {
    let (w, doc, nodes) = workload_doc();
    let mut key_index = w.sigma.prepare();
    let doc_index = key_index.index_document(&doc);
    let mut group = c.benchmark_group("validate_prepared");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
        b.iter(|| key_index.satisfies(&doc, &doc_index));
    });
    group.finish();
}

fn bench_doc_index_build(c: &mut Criterion) {
    let (_w, doc, nodes) = workload_doc();
    let mut group = c.benchmark_group("doc_index_build");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
        b.iter(|| {
            let mut universe = LabelUniverse::new();
            DocIndex::build(&doc, &mut universe)
        });
    });
    group.finish();
}

criterion_group!(
    document_engine,
    bench_shred_facade,
    bench_shred_prepared,
    bench_validate_facade,
    bench_validate_prepared,
    bench_doc_index_build
);
criterion_main!(document_engine);
