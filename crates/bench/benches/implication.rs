//! Ablation bench: the key-implication procedure in isolation.
//!
//! Section 6 of the paper explains both Fig. 7(b) and Fig. 7(c) through the
//! cost of the `implication` calls that `propagation` and `GminimumCover`
//! make: their running time is a function of the size of the XML keys, which
//! grows with the table-tree depth and with the number of keys.  This bench
//! isolates that inner loop so the explanation can be checked directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmlprop_workload::{generate, WorkloadConfig};
use xmlprop_xmlkeys::{implies, XmlKey};
use xmlprop_xmlpath::PathExpr;

/// A probe key representative of what Algorithm `propagation` asks: is the
/// deepest entity level keyed (relative to the level above) by its id?
fn probe_for(depth: usize) -> XmlKey {
    let mut context = PathExpr::epsilon().descendant("e0");
    for level in 1..depth.saturating_sub(1) {
        context = context.child(format!("e{level}"));
    }
    XmlKey::new(
        context,
        PathExpr::label(format!("e{}", depth - 1)),
        [format!("@id{}", depth - 1)],
    )
}

fn bench_by_keys(c: &mut Criterion) {
    let mut group = c.benchmark_group("implication_by_keys");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for keys in [10usize, 25, 50, 100] {
        let w = generate(&WorkloadConfig::new(20, 5, keys));
        let probe = probe_for(5);
        group.bench_with_input(BenchmarkId::from_parameter(keys), &keys, |b, _| {
            b.iter(|| implies(&w.sigma, &probe));
        });
    }
    group.finish();
}

fn bench_by_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("implication_by_depth");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for depth in [2usize, 5, 10, 20] {
        let w = generate(&WorkloadConfig::new(20.max(depth), depth, 10));
        let probe = probe_for(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| implies(&w.sigma, &probe));
        });
    }
    group.finish();
}

criterion_group!(implication, bench_by_keys, bench_by_depth);
criterion_main!(implication);
