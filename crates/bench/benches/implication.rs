//! Ablation bench: the key-implication procedure in isolation.
//!
//! Section 6 of the paper explains both Fig. 7(b) and Fig. 7(c) through the
//! cost of the `implication` calls that `propagation` and `GminimumCover`
//! make: their running time is a function of the size of the XML keys, which
//! grows with the table-tree depth and with the number of keys.  This bench
//! isolates that inner loop so the explanation can be checked directly.
//!
//! Each group measures the one-shot facade ([`implies`], which rebuilds the
//! key index per call) next to the prepared path (one
//! [`xmlprop_xmlkeys::KeyIndex`] + one compiled probe, queried repeatedly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmlprop_bench::implication_probe;
use xmlprop_workload::{generate, WorkloadConfig};
use xmlprop_xmlkeys::implies;

fn bench_by_keys(c: &mut Criterion) {
    let mut group = c.benchmark_group("implication_by_keys");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for keys in [10usize, 25, 50, 100] {
        let w = generate(&WorkloadConfig::new(20, 5, keys));
        let probe = implication_probe(5);
        group.bench_with_input(BenchmarkId::from_parameter(keys), &keys, |b, _| {
            b.iter(|| implies(&w.sigma, &probe));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("implication_prepared_by_keys");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for keys in [10usize, 25, 50, 100] {
        let w = generate(&WorkloadConfig::new(20, 5, keys));
        let mut index = w.sigma.prepare();
        let probe = index.prepare(&implication_probe(5));
        group.bench_with_input(BenchmarkId::from_parameter(keys), &keys, |b, _| {
            b.iter(|| index.implies(&probe));
        });
    }
    group.finish();
}

fn bench_by_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("implication_by_depth");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for depth in [2usize, 5, 10, 20] {
        let w = generate(&WorkloadConfig::new(20.max(depth), depth, 10));
        let probe = implication_probe(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| implies(&w.sigma, &probe));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("implication_prepared_by_depth");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for depth in [2usize, 5, 10, 20] {
        let w = generate(&WorkloadConfig::new(20.max(depth), depth, 10));
        let mut index = w.sigma.prepare();
        let probe = index.prepare(&implication_probe(depth));
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| index.implies(&probe));
        });
    }
    group.finish();
}

criterion_group!(implication, bench_by_keys, bench_by_depth);
criterion_main!(implication);
