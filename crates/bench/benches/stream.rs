//! Streaming front-end bench: the event-driven path versus the DOM path,
//! end to end, at the 10⁴-node scale.
//!
//! Both sides start from the same serialized text and produce the same
//! result (asserted at setup, before any measurement):
//!
//! * `stream_shred` / `stream_validate` —
//!   [`xmlprop_pipeline::CorpusBundle::stream_text`], one pull-parser pass
//!   feeding the plans' [`xmlprop_xmltransform::StreamShredder`]s and the
//!   [`xmlprop_xmlkeys::StreamKeyChecker`]; no `Document`, no `DocIndex`;
//! * `dom_shred_e2e` / `dom_validate_e2e` — `Document::parse_str` plus
//!   [`xmlprop_pipeline::CorpusBundle::process`], the prepared DOM path
//!   *including* its parse and index build (that is what streaming
//!   replaces).
//!
//! The wider 10⁴–10⁶-node sweep lives in the `stream` experiment of
//! `paper_experiments` (tracked in `BENCH_fig7.json`); this Criterion
//! bench keeps a statistically measured point inside the CI bench-smoke
//! gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xmlprop_pipeline::{CorpusBundle, CorpusOptions, Jobs, PreparedState};
use xmlprop_workload::{generate, generate_document_with_report, DocConfig, WorkloadConfig};
use xmlprop_xmltree::Document;

/// A prepared bundle plus the serialized ~10⁴-node workload document both
/// sides consume.  Asserts stream/DOM agreement before returning.
fn stream_setup() -> (CorpusBundle, String, usize) {
    let w = generate(&WorkloadConfig::new(15, 4, 10));
    let (doc, report) = generate_document_with_report(
        &w,
        &DocConfig {
            branching: 6,
            omission_probability: 0.1,
            seed: 11,
            depth: Some(4),
        },
    );
    let text = xmlprop_xmltree::to_xml(&doc);
    let transformation = {
        let mut t = xmlprop_xmltransform::Transformation::new(Vec::new());
        t.add_rule(w.universal.clone());
        t
    };
    let bundle = CorpusBundle::new(w.sigma.clone(), transformation);
    let streamed = bundle
        .stream_text(&text, &options(true, true, true))
        .expect("serialized workload documents stream");
    let mut scratch = bundle.scratch();
    let dom = bundle.process(&doc, &mut scratch, &options(true, true, false));
    assert_eq!(streamed.database, dom.database, "stream/DOM shred disagree");
    assert_eq!(
        streamed.violations, dom.violations,
        "stream/DOM validation disagree"
    );
    (bundle, text, report.nodes)
}

fn options(shred: bool, validate: bool, stream: bool) -> CorpusOptions {
    CorpusOptions {
        jobs: Jobs::default(),
        shred,
        validate,
        covers: false,
        stream,
    }
}

fn bench_stream_shred(c: &mut Criterion) {
    let (bundle, text, nodes) = stream_setup();
    let opts = options(true, false, true);
    let mut group = c.benchmark_group("stream_shred");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
        b.iter(|| bundle.stream_text(&text, &opts).expect("streams"));
    });
    group.finish();
}

fn bench_stream_validate(c: &mut Criterion) {
    let (bundle, text, nodes) = stream_setup();
    let opts = options(false, true, true);
    let mut group = c.benchmark_group("stream_validate");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
        b.iter(|| bundle.stream_text(&text, &opts).expect("streams"));
    });
    group.finish();
}

fn bench_dom_shred_e2e(c: &mut Criterion) {
    let (bundle, text, nodes) = stream_setup();
    let mut scratch = bundle.scratch();
    let opts = options(true, false, false);
    let mut group = c.benchmark_group("dom_shred_e2e");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
        b.iter(|| {
            let doc = Document::parse_str(&text).expect("reparses");
            bundle.process(&doc, &mut scratch, &opts)
        });
    });
    group.finish();
}

fn bench_dom_validate_e2e(c: &mut Criterion) {
    let (bundle, text, nodes) = stream_setup();
    let mut scratch = bundle.scratch();
    let opts = options(false, true, false);
    let mut group = c.benchmark_group("dom_validate_e2e");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, _| {
        b.iter(|| {
            let doc = Document::parse_str(&text).expect("reparses");
            bundle.process(&doc, &mut scratch, &opts)
        });
    });
    group.finish();
}

criterion_group!(
    streaming_front_end,
    bench_stream_shred,
    bench_stream_validate,
    bench_dom_shred_e2e,
    bench_dom_validate_e2e
);
criterion_main!(streaming_front_end);
