//! Regenerates the evaluation of Section 6 of the paper and prints the
//! series of Fig. 7(a)–(c) plus the in-text large-scale spot checks.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p xmlprop-bench --bin paper_experiments            # all experiments
//! cargo run --release -p xmlprop-bench --bin paper_experiments -- fig7a   # one experiment
//! cargo run --release -p xmlprop-bench --bin paper_experiments -- quick   # reduced grids
//! ```
//!
//! Experiments: `fig7a`, `fig7b`, `fig7c`, `large`, `prepared` (the
//! prepared-engine ablation comparing one-shot facades against prepared
//! state), `docs` (the document engine: facade vs prepared shredding
//! and key validation at 10⁴–10⁶-node documents), `stream` (the
//! event-driven front end versus the DOM path end to end, on the same
//! document grid), `corpus` (the parallel corpus pipeline at 1/2/4/8
//! worker threads), `serve` (the resident constraint server: validate
//! requests/sec at 1/2/4/8 client threads against one shared
//! hot-swappable bundle), `incremental` (delta-maintained
//! revalidation and re-shredding under a single small edit versus the
//! from-scratch pipeline, on the same document grid), and `query` (the
//! key-aware join executed as a hash lookup against the propagated key
//! versus the naive nested-loop baseline).
//!
//! Results are printed as text tables and also written as JSON files under
//! `target/paper_experiments/` for archival (EXPERIMENTS.md quotes them).

use std::fs;
use std::path::PathBuf;
use xmlprop_bench::{
    corpus_experiment, corpus_rows, docs_experiment, docs_rows, fig7a, fig7a_rows, fig7b, fig7c,
    incremental_experiment, incremental_rows, large_scale, large_scale_rows, prepared_rows,
    prepared_speedups, propagation_rows, query_experiment, query_rows, render_table,
    serve_experiment, serve_rows, stream_experiment, stream_rows, Fig7Row,
};

fn out_dir() -> PathBuf {
    let dir = PathBuf::from("target/paper_experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// `BENCH_fig7.json` lives at the repository root (two levels above this
/// crate's manifest), independent of the working directory the binary was
/// started from, so successive PRs overwrite the same tracked file.
fn bench_json_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_fig7.json")
}

fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = out_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

fn run_fig7a(quick: bool) -> Vec<Fig7Row> {
    println!("== Fig. 7(a): minimum-cover computation time vs. number of fields ==");
    println!("   (depth = 5, keys = 10; naive is the exponential baseline)\n");
    let fields: Vec<usize> = if quick {
        vec![5, 10, 15, 20, 40, 80]
    } else {
        vec![5, 10, 15, 20, 25, 50, 75, 100, 150, 200, 300, 400, 500]
    };
    // The naive baseline doubles its work with every added field (the paper
    // reports a ~200x blow-up per +5 fields); 15 fields already takes
    // seconds, so the sweep stops there.
    let naive_cutoff = 15;
    let points = fig7a(&fields, naive_cutoff);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.fields.to_string(),
                format!("{:.3}", p.minimum_cover_ms),
                p.cover_size.to_string(),
                p.naive_ms
                    .map(|ms| format!("{ms:.3}"))
                    .unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["fields", "minimumCover (ms)", "cover size", "naive (ms)"],
            &rows
        )
    );
    write_json("fig7a", &points);
    fig7a_rows(&points)
}

fn run_fig7b(quick: bool) -> Vec<Fig7Row> {
    println!("== Fig. 7(b): effect of table-tree depth (fields = 15, keys = 10) ==\n");
    let depths: Vec<usize> = if quick {
        vec![2, 5, 10, 15]
    } else {
        vec![2, 4, 6, 8, 10, 12, 14, 16, 18, 20]
    };
    let points = fig7b(&depths);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.parameter.to_string(),
                format!("{:.3}", p.propagation_ms),
                format!("{:.3}", p.propagation_prepared_ms),
                format!("{:.3}", p.g_minimum_cover_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "depth",
                "propagation (ms)",
                "prepared (ms)",
                "GminimumCover (ms)"
            ],
            &rows
        )
    );
    write_json("fig7b", &points);
    propagation_rows("fig7b", &points)
}

fn run_fig7c(quick: bool) -> Vec<Fig7Row> {
    println!("== Fig. 7(c): effect of the number of XML keys (fields = 15, depth = 10) ==\n");
    let keys: Vec<usize> = if quick {
        vec![10, 25, 50]
    } else {
        vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
    };
    let points = fig7c(&keys);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.parameter.to_string(),
                format!("{:.3}", p.propagation_ms),
                format!("{:.3}", p.propagation_prepared_ms),
                format!("{:.3}", p.g_minimum_cover_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "keys",
                "propagation (ms)",
                "prepared (ms)",
                "GminimumCover (ms)"
            ],
            &rows
        )
    );
    write_json("fig7c", &points);
    propagation_rows("fig7c", &points)
}

fn run_prepared(quick: bool) -> Vec<Fig7Row> {
    println!("== Prepared-engine ablation: one-shot facades vs. prepared state ==");
    println!("   (implication: 50/100-key Σ, repeated probes; batch: 10k candidate FDs)\n");
    let points = prepared_speedups(quick);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.workload.to_string(),
                p.n.to_string(),
                format!("{:.3}", p.facade_ms),
                format!("{:.3}", p.prepared_ms),
                format!("{:.1}x", p.speedup()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["workload", "n", "facade (ms)", "prepared (ms)", "speedup"],
            &rows
        )
    );
    write_json("prepared", &points);
    prepared_rows(&points)
}

fn run_docs(quick: bool) -> Vec<Fig7Row> {
    println!("== Document engine: facade vs prepared shredding / validation ==");
    println!("   (workload documents; prepared = DocIndex + ShredPlan / KeyIndex)\n");
    let points = docs_experiment(quick);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                p.rows.to_string(),
                format!("{:.3}", p.index_build_ms),
                format!("{:.3}", p.shred_facade_ms),
                format!("{:.3}", p.shred_prepared_ms),
                format!("{:.1}x", p.shred_speedup()),
                format!("{:.3}", p.validate_facade_ms),
                format!("{:.3}", p.validate_prepared_ms),
                format!("{:.1}x", p.validate_speedup()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "nodes",
                "tuples",
                "index (ms)",
                "shred facade (ms)",
                "shred prep (ms)",
                "speedup",
                "validate facade (ms)",
                "validate prep (ms)",
                "speedup"
            ],
            &rows
        )
    );
    write_json("docs", &points);
    docs_rows(&points)
}

fn run_stream(quick: bool) -> Vec<Fig7Row> {
    println!("== Streaming front end: event-driven vs DOM end-to-end ==");
    println!("   (same documents as `docs`; DOM side includes parse + index build)\n");
    let points = stream_experiment(quick);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                p.rows.to_string(),
                format!("{:.3}", p.stream_shred_ms),
                format!("{:.3}", p.dom_shred_ms),
                format!("{:.2}x", p.shred_speedup()),
                format!("{:.3}", p.stream_validate_ms),
                format!("{:.3}", p.dom_validate_ms),
                format!("{:.2}x", p.validate_speedup()),
                p.peak_open_bindings.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "nodes",
                "tuples",
                "stream shred (ms)",
                "dom e2e (ms)",
                "speedup",
                "stream validate (ms)",
                "dom e2e (ms)",
                "speedup",
                "peak open"
            ],
            &rows
        )
    );
    write_json("stream", &points);
    stream_rows(&points)
}

fn run_corpus(quick: bool) -> Vec<Fig7Row> {
    println!("== Corpus pipeline: whole-corpus shred / validate vs worker threads ==");
    println!("   (one shared prepared bundle; outputs asserted equal to sequential)\n");
    let points = corpus_experiment(quick);
    let baseline = points[0].clone();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.jobs.to_string(),
                p.documents.to_string(),
                p.total_nodes.to_string(),
                format!("{:.3}", p.shred_ms),
                format!("{:.2}x", p.shred_speedup_over(&baseline)),
                format!("{:.3}", p.validate_ms),
                format!("{:.2}x", p.validate_speedup_over(&baseline)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "jobs",
                "docs",
                "nodes",
                "shred (ms)",
                "speedup",
                "validate (ms)",
                "speedup"
            ],
            &rows
        )
    );
    write_json("corpus", &points);
    corpus_rows(&points)
}

fn run_serve(quick: bool) -> Vec<Fig7Row> {
    println!("== Resident server: validate requests/sec vs client threads ==");
    println!("   (one shared bundle behind the swap cell; every response byte-checked;");
    println!("    the `faults` grid injects the 10% delay/short-write schedule)\n");
    let points = serve_experiment(quick);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.client_threads.to_string(),
                p.requests.to_string(),
                p.documents.to_string(),
                if p.faults { "10%" } else { "off" }.to_string(),
                format!("{:.3}", p.elapsed_ms),
                format!("{:.0}", p.requests_per_sec),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "clients",
                "requests",
                "docs",
                "faults",
                "elapsed (ms)",
                "req/s"
            ],
            &rows
        )
    );
    write_json("serve", &points);
    serve_rows(&points)
}

fn run_incremental(quick: bool) -> Vec<Fig7Row> {
    println!("== Incremental revalidation: delta maintenance vs from-scratch ==");
    println!("   (one steady-state text edit; scratch = index rebuild + full pass)\n");
    let points = incremental_experiment(quick);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.nodes.to_string(),
                p.rows.to_string(),
                format!("{:.3}", p.incr_validate_ms),
                format!("{:.3}", p.scratch_validate_ms),
                format!("{:.1}x", p.validate_speedup()),
                format!("{:.3}", p.incr_shred_ms),
                format!("{:.3}", p.scratch_shred_ms),
                format!("{:.1}x", p.shred_speedup()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "nodes",
                "tuples",
                "incr validate (ms)",
                "scratch validate (ms)",
                "speedup",
                "incr shred (ms)",
                "scratch shred (ms)",
                "speedup"
            ],
            &rows
        )
    );
    write_json("incremental", &points);
    incremental_rows(&points)
}

fn run_large() -> Vec<Fig7Row> {
    println!("== Section 6 in-text large-scale spot checks ==\n");
    let points = large_scale();
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.algorithm.to_string(),
                p.fields.to_string(),
                p.keys.to_string(),
                format!("{:.3}", p.elapsed_ms),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["algorithm", "fields", "keys", "elapsed (ms)"], &rows)
    );
    write_json("large_scale", &points);
    large_scale_rows(&points)
}

fn run_query(quick: bool) -> Vec<Fig7Row> {
    println!("== Query layer: unique-key hash-lookup join vs nested loop ==");
    println!("   (fact ⋈ dim on the propagated key `id`; outputs asserted identical)\n");
    let points = query_experiment(quick);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.rows.to_string(),
                p.result_rows.to_string(),
                format!("{:.3}", p.naive_ms),
                format!("{:.3}", p.keyed_ms),
                format!("{:.1}x", p.speedup()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["rows", "result rows", "naive (ms)", "keyed (ms)", "speedup"],
            &rows
        )
    );
    write_json("query", &points);
    query_rows(&points)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let wanted: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| *a != "quick")
        .collect();
    let run_all = wanted.is_empty();

    let mut rows: Vec<Fig7Row> = Vec::new();
    if run_all || wanted.contains(&"fig7a") {
        rows.extend(run_fig7a(quick));
    }
    if run_all || wanted.contains(&"fig7b") {
        rows.extend(run_fig7b(quick));
    }
    if run_all || wanted.contains(&"fig7c") {
        rows.extend(run_fig7c(quick));
    }
    if run_all || wanted.contains(&"large") {
        rows.extend(run_large());
    }
    if run_all || wanted.contains(&"prepared") {
        rows.extend(run_prepared(quick));
    }
    if run_all || wanted.contains(&"docs") {
        rows.extend(run_docs(quick));
    }
    if run_all || wanted.contains(&"stream") {
        rows.extend(run_stream(quick));
    }
    if run_all || wanted.contains(&"corpus") {
        rows.extend(run_corpus(quick));
    }
    if run_all || wanted.contains(&"serve") {
        rows.extend(run_serve(quick));
    }
    if run_all || wanted.contains(&"incremental") {
        rows.extend(run_incremental(quick));
    }
    if run_all || wanted.contains(&"query") {
        rows.extend(run_query(quick));
    }
    println!("JSON copies written to {}", out_dir().display());
    // The consolidated tracking file is only refreshed by a full run: a
    // figure-filtered invocation would silently drop the other figures' rows
    // from the cross-PR record, and a `quick` run (what CI's bench-smoke
    // does) would truncate the full grids down to the reduced ones.
    if run_all && !quick && !rows.is_empty() {
        let path = bench_json_path();
        match serde_json::to_string_pretty(&rows) {
            Ok(json) => match fs::write(&path, json + "\n") {
                Ok(()) => println!("Consolidated rows written to {}", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            },
            Err(e) => eprintln!("warning: could not serialize consolidated rows: {e}"),
        }
    }
}
