//! Experiment harness reproducing the evaluation of Section 6 (Fig. 7).
//!
//! Each figure of the paper's evaluation corresponds to one function here
//! returning a series of measured points; the `paper_experiments` binary
//! prints them as text tables and writes machine-readable JSON, and the
//! Criterion benches (`benches/fig7*.rs`) measure the same operations with
//! statistical rigor on a reduced parameter grid.
//!
//! The absolute numbers will differ from the paper's 2003 hardware; what is
//! being reproduced is the *shape* of each curve:
//!
//! * Fig. 7(a): `minimumCover` grows polynomially with the number of fields
//!   while `naive` explodes exponentially (≈200× per +5 fields);
//! * Fig. 7(b): both `propagation` and `GminimumCover` are insensitive to
//!   the table-tree depth, and `propagation` is much faster;
//! * Fig. 7(c): `propagation` grows roughly linearly with the number of
//!   keys, `GminimumCover` faster.

#![forbid(unsafe_code)]

use serde::Serialize;
use std::time::{Duration, Instant};
use xmlprop_core::{
    minimum_cover, naive_minimum_cover, propagation, GMinimumCover, PropagationEngine,
};
use xmlprop_query::{execute, parse_query, plan, plan_naive, Catalog, JoinKind};
use xmlprop_reldb::{Database, Fd, Relation, RelationSchema, Tuple, Value};
use xmlprop_workload::{
    generate, generate_document_with_report, target_fd, DocConfig, Workload, WorkloadConfig,
};
use xmlprop_xmltree::{DocIndex, LabelUniverse};

/// Milliseconds with fractional precision, for compact reporting.
fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Times a closure, returning (elapsed ms, result).
pub fn time<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (millis(start.elapsed()), out)
}

/// Times a closure `reps` times and returns (best elapsed ms, last result)
/// — single-shot wall-clock timings on shared hardware jitter by 2×, so
/// comparisons committed to the BENCH record take the minimum of a few
/// runs on both sides.
pub fn time_best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let (mut best, mut out) = time(&mut f);
    for _ in 1..reps.max(1) {
        let (ms, next) = time(&mut f);
        if ms < best {
            best = ms;
        }
        out = next;
    }
    (best, out)
}

/// Default depth used by the Fig. 7(a) sweep (the paper fixes depth and keys
/// while varying the number of fields; exact values are not printed, so we
/// use the Fig. 7(b)/(c) defaults: depth 5, keys 10).
pub const FIG7A_DEPTH: usize = 5;
/// Default key count for Fig. 7(a).
pub const FIG7A_KEYS: usize = 10;
/// Fields default of Fig. 7(b) as stated in the paper.
pub const FIG7B_FIELDS: usize = 15;
/// Number of keys used in Fig. 7(b) as stated in the paper.
pub const FIG7B_KEYS: usize = 10;
/// Fields default of Fig. 7(c).
pub const FIG7C_FIELDS: usize = 15;
/// Table-tree depth used in Fig. 7(c) (the paper states depth = 10).
pub const FIG7C_DEPTH: usize = 10;

/// One measured point of Fig. 7(a).
#[derive(Debug, Clone, Serialize)]
pub struct Fig7aPoint {
    /// Number of universal-relation fields.
    pub fields: usize,
    /// Time to compute the minimum cover with the polynomial algorithm (ms).
    pub minimum_cover_ms: f64,
    /// Size of the produced cover.
    pub cover_size: usize,
    /// Time of the exponential `naive` algorithm (ms), only measured while
    /// it stays tractable (`None` beyond the cut-off).
    pub naive_ms: Option<f64>,
}

/// Runs the Fig. 7(a) sweep: minimum-cover time vs. number of fields.
/// `naive_max_fields` bounds the exponential baseline (the paper itself only
/// reports `naive` on small inputs, noting a ~200× blow-up per +5 fields).
pub fn fig7a(field_counts: &[usize], naive_max_fields: usize) -> Vec<Fig7aPoint> {
    field_counts
        .iter()
        .map(|&fields| {
            let w = generate(&WorkloadConfig::new(
                fields,
                FIG7A_DEPTH.min(fields),
                FIG7A_KEYS,
            ));
            let (minimum_cover_ms, cover) = time(|| minimum_cover(&w.sigma, &w.universal));
            let naive_ms = (fields <= naive_max_fields)
                .then(|| time(|| naive_minimum_cover(&w.sigma, &w.universal)).0);
            Fig7aPoint {
                fields,
                minimum_cover_ms,
                cover_size: cover.len(),
                naive_ms,
            }
        })
        .collect()
}

/// One measured point of Fig. 7(b) / Fig. 7(c): the propagation-checking
/// algorithms on the same probe FDs.
#[derive(Debug, Clone, Serialize)]
pub struct PropagationPoint {
    /// The varied parameter (depth for Fig. 7(b), keys for Fig. 7(c)).
    pub parameter: usize,
    /// Time of Algorithm `propagation` through the one-shot facade (ms)
    /// over the probe set — each call re-prepares the `(Σ, rule)` pair.
    pub propagation_ms: f64,
    /// Time of the same probe set against a prepared
    /// [`PropagationEngine`] (ms); the engine is built once outside the
    /// timed region, the measured cost is pure query time.
    pub propagation_prepared_ms: f64,
    /// Time of `GminimumCover` (ms) for the same probes, including the
    /// minimum-cover computation it performs.
    pub g_minimum_cover_ms: f64,
    /// Whether the representative probe FD was reported propagated (sanity:
    /// all algorithms must agree).
    pub probe_propagated: bool,
}

/// Builds the probe FDs used by the propagation experiments: the positive
/// chain FD plus `extra` random ones.
pub fn probe_fds(workload: &Workload, extra: usize) -> Vec<Fd> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(workload.config.seed ^ 0xfd);
    let mut probes = vec![target_fd(workload)];
    for i in 0..extra {
        probes.push(xmlprop_workload::random_fd(workload, &mut rng, 1 + i % 3));
    }
    probes
}

fn propagation_point(parameter: usize, w: &Workload) -> PropagationPoint {
    let probes = probe_fds(w, 4);
    let (propagation_ms, results) = time(|| {
        probes
            .iter()
            .map(|fd| propagation(&w.sigma, &w.universal, fd))
            .collect::<Vec<_>>()
    });
    let engine = PropagationEngine::new(&w.sigma, &w.universal);
    let (propagation_prepared_ms, prepared_results) = time(|| engine.propagate_all(&probes));
    let (g_minimum_cover_ms, g_results) = time(|| {
        let checker = GMinimumCover::new(w.sigma.clone(), w.universal.clone());
        probes
            .iter()
            .map(|fd| checker.check(fd))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        results, prepared_results,
        "facade and prepared engine disagree on {probes:?}"
    );
    assert_eq!(
        results, g_results,
        "propagation and GminimumCover disagree on {probes:?}"
    );
    PropagationPoint {
        parameter,
        propagation_ms,
        propagation_prepared_ms,
        g_minimum_cover_ms,
        probe_propagated: results[0],
    }
}

/// Fig. 7(b): effect of table-tree depth (fields = 15, keys = 10).
pub fn fig7b(depths: &[usize]) -> Vec<PropagationPoint> {
    depths
        .iter()
        .map(|&depth| {
            let fields = FIG7B_FIELDS.max(depth);
            let w = generate(&WorkloadConfig::new(fields, depth, FIG7B_KEYS));
            propagation_point(depth, &w)
        })
        .collect()
}

/// Fig. 7(c): effect of the number of XML keys (fields = 15, depth = 10).
pub fn fig7c(key_counts: &[usize]) -> Vec<PropagationPoint> {
    key_counts
        .iter()
        .map(|&keys| {
            let w = generate(&WorkloadConfig::new(FIG7C_FIELDS, FIG7C_DEPTH, keys));
            propagation_point(keys, &w)
        })
        .collect()
}

/// One of the in-text large-scale spot checks of Section 6.
#[derive(Debug, Clone, Serialize)]
pub struct LargeScalePoint {
    /// Which algorithm was measured.
    pub algorithm: &'static str,
    /// Number of fields.
    pub fields: usize,
    /// Number of keys.
    pub keys: usize,
    /// Elapsed time in milliseconds.
    pub elapsed_ms: f64,
}

/// The in-text measurements of Section 6: `GminimumCover` at (200 fields,
/// 50 keys) and (150, 100), and `propagation` at 1000 fields (the Oracle
/// column limit) with 50 and 100 keys.
pub fn large_scale() -> Vec<LargeScalePoint> {
    let mut out = Vec::new();
    for (fields, keys) in [(200usize, 50usize), (150, 100)] {
        let w = generate(&WorkloadConfig::new(fields, 10, keys));
        let probe = target_fd(&w);
        let (elapsed_ms, _) = time(|| {
            let checker = GMinimumCover::new(w.sigma.clone(), w.universal.clone());
            checker.check(&probe)
        });
        out.push(LargeScalePoint {
            algorithm: "GminimumCover",
            fields,
            keys,
            elapsed_ms,
        });
    }
    for keys in [50usize, 100] {
        let w = generate(&WorkloadConfig::new(1000, 10, keys));
        let probe = target_fd(&w);
        let (elapsed_ms, _) = time(|| propagation(&w.sigma, &w.universal, &probe));
        out.push(LargeScalePoint {
            algorithm: "propagation",
            fields: 1000,
            keys,
            elapsed_ms,
        });
    }
    out
}

/// One measured point of the prepared-engine ablation: the same query
/// workload answered through the one-shot facades (which re-prepare Σ and
/// the rule per call) and through prepared state built once.
#[derive(Debug, Clone, Serialize)]
pub struct PreparedPoint {
    /// Which workload was measured (`implication` or `batch_propagation`).
    pub workload: &'static str,
    /// The scale parameter: number of keys for `implication`, number of
    /// candidate FDs for `batch_propagation`.
    pub n: usize,
    /// Facade time (ms) for the whole query set.
    pub facade_ms: f64,
    /// Prepared time (ms) for the same query set, *including* the one-time
    /// preparation.
    pub prepared_ms: f64,
}

impl PreparedPoint {
    /// Facade-over-prepared speedup.
    pub fn speedup(&self) -> f64 {
        self.facade_ms / self.prepared_ms.max(f64::MIN_POSITIVE)
    }
}

/// A representative implication probe for a chain workload of the given
/// depth: is the deepest entity level keyed (relative to the level above)
/// by its id?  Shared by the `implication` Criterion bench and the
/// prepared-engine ablation.
pub fn implication_probe(depth: usize) -> xmlprop_xmlkeys::XmlKey {
    use xmlprop_xmlpath::PathExpr;
    let mut context = PathExpr::epsilon().descendant("e0");
    for level in 1..depth.saturating_sub(1) {
        context = context.child(format!("e{level}"));
    }
    xmlprop_xmlkeys::XmlKey::new(
        context,
        PathExpr::label(format!("e{}", depth - 1)),
        [format!("@id{}", depth - 1)],
    )
}

/// The prepared-engine ablation behind the `prepared` experiment:
///
/// * **implication** — a large Σ (50/100 keys), the same probe key asked
///   2 000 times through [`xmlprop_xmlkeys::implies`] (which rebuilds the
///   [`xmlprop_xmlkeys::KeyIndex`] per call) versus one prepared index;
/// * **batch_propagation** — a 10 000-FD candidate grid over a deep
///   large-Σ workload through the [`propagation`] facade (one engine per
///   call) versus one [`PropagationEngine::propagate_all`].
///
/// `quick` shrinks the grids for the CI smoke run.  Both variants must
/// return identical verdicts; the function asserts it.
pub fn prepared_speedups(quick: bool) -> Vec<PreparedPoint> {
    use rand::SeedableRng;
    let mut out = Vec::new();

    let implication_reps = if quick { 200usize } else { 2_000 };
    let key_counts: &[usize] = if quick { &[50] } else { &[50, 100] };
    for &keys in key_counts {
        let w = generate(&WorkloadConfig::new(20, 5, keys));
        let probe = implication_probe(5);
        let (facade_ms, facade_verdict) = time(|| {
            (0..implication_reps).fold(false, |_, _| xmlprop_xmlkeys::implies(&w.sigma, &probe))
        });
        let (prepared_ms, prepared_verdict) = time(|| {
            let mut index = w.sigma.prepare();
            let prepared = index.prepare(&probe);
            (0..implication_reps).fold(false, |_, _| index.implies(&prepared))
        });
        assert_eq!(facade_verdict, prepared_verdict, "implication disagreement");
        out.push(PreparedPoint {
            workload: "implication",
            n: keys,
            facade_ms,
            prepared_ms,
        });
    }

    let n_fds = if quick { 1_000usize } else { 10_000 };
    let w = generate(&WorkloadConfig::new(15, 10, 100));
    let mut rng = rand::rngs::StdRng::seed_from_u64(w.config.seed ^ 0xba7c4);
    let mut probes = vec![target_fd(&w)];
    for i in 0..n_fds - 1 {
        probes.push(xmlprop_workload::random_fd(&w, &mut rng, 1 + i % 3));
    }
    let (facade_ms, facade_verdicts) = time(|| {
        probes
            .iter()
            .map(|fd| propagation(&w.sigma, &w.universal, fd))
            .collect::<Vec<_>>()
    });
    let (prepared_ms, prepared_verdicts) =
        time(|| PropagationEngine::new(&w.sigma, &w.universal).propagate_all(&probes));
    assert_eq!(
        facade_verdicts, prepared_verdicts,
        "batch propagation disagreement"
    );
    out.push(PreparedPoint {
        workload: "batch_propagation",
        n: n_fds,
        facade_ms,
        prepared_ms,
    });

    out
}

/// One measured point of the document-engine experiment: shredding and key
/// validation of one generated document through the string facades versus
/// the prepared engines (`DocIndex` + `ShredPlan` / `KeyIndex`).
#[derive(Debug, Clone, Serialize)]
pub struct DocPoint {
    /// Total node count of the generated document (the scale parameter).
    pub nodes: usize,
    /// Number of tuples the universal-relation shred produced.
    pub rows: usize,
    /// One-time `DocIndex` build (ms) — the preparation the engine rows
    /// amortize.
    pub index_build_ms: f64,
    /// `TableRule::shred` — the string walk (ms).
    pub shred_facade_ms: f64,
    /// `ShredPlan::shred` over the prebuilt index (ms).
    pub shred_prepared_ms: f64,
    /// `satisfies_all` — the string walk over all keys (ms).
    pub validate_facade_ms: f64,
    /// `KeyIndex::satisfies` over the prebuilt index (ms).
    pub validate_prepared_ms: f64,
}

impl DocPoint {
    /// Facade-over-prepared speedup of the shred.
    pub fn shred_speedup(&self) -> f64 {
        self.shred_facade_ms / self.shred_prepared_ms.max(f64::MIN_POSITIVE)
    }

    /// Facade-over-prepared speedup of the validation.
    pub fn validate_speedup(&self) -> f64 {
        self.validate_facade_ms / self.validate_prepared_ms.max(f64::MIN_POSITIVE)
    }
}

/// The `docs` experiment: document-side throughput at 10⁴–10⁶ nodes.
///
/// For each grid point a workload document is generated (the report's exact
/// node count is recorded, no silent caps), then measured four ways:
/// facade/prepared shredding of the universal relation and facade/prepared
/// validation of the whole key set.  Facade and prepared results are
/// asserted identical (relation equality / same verdict); the one-time
/// `DocIndex` build is timed separately so the query rows are pure engine
/// time.  `quick` keeps only the ~10⁴-node point for the CI smoke run.
pub fn docs_experiment(quick: bool) -> Vec<DocPoint> {
    // (fields, depth, keys, branching) — chosen to land near 10⁴, 10⁵ and
    // 10⁶ nodes with the workload's per-entity field multiplier.
    let grids: &[(usize, usize, usize, usize)] = if quick {
        &[(15, 4, 10, 6)]
    } else {
        &[(15, 4, 10, 6), (15, 5, 10, 8), (18, 6, 10, 8)]
    };
    grids
        .iter()
        .map(|&(fields, depth, keys, branching)| {
            let w = generate(&WorkloadConfig::new(fields, depth, keys));
            let (doc, report) = generate_document_with_report(
                &w,
                &DocConfig {
                    branching,
                    omission_probability: 0.1,
                    seed: 11,
                    // Explicit depth: the document dial is (depth,
                    // branching); the generator panics rather than silently
                    // capping if the workload cannot honor it.
                    depth: Some(depth),
                },
            );

            // Shredding: string facade vs prepared plan (best of `reps`
            // on both sides; single-shot timings jitter on shared
            // hardware).
            let reps = if quick { 1 } else { 3 };
            let (shred_facade_ms, facade_rel) = time_best_of(reps, || w.universal.shred(&doc));
            let mut universe = LabelUniverse::new();
            let plan = w.universal.prepare(&mut universe);
            let (index_build_ms, doc_index) = time(|| DocIndex::build(&doc, &mut universe));
            let (shred_prepared_ms, prepared_rel) =
                time_best_of(reps, || plan.shred(&doc, &doc_index));
            assert_eq!(facade_rel, prepared_rel, "shred facade/engine disagree");

            // Validation: string facade vs prepared key index.
            let (validate_facade_ms, facade_ok) = time_best_of(reps, || {
                xmlprop_xmlkeys::satisfies_all(&doc, w.sigma.iter())
            });
            let mut key_index = w.sigma.prepare();
            let key_doc_index = key_index.index_document(&doc);
            let (validate_prepared_ms, prepared_ok) =
                time_best_of(reps, || key_index.satisfies(&doc, &key_doc_index));
            assert_eq!(facade_ok, prepared_ok, "validation facade/engine disagree");
            assert!(facade_ok, "generated documents satisfy their own Σ");

            DocPoint {
                nodes: report.nodes,
                rows: facade_rel.len(),
                index_build_ms,
                shred_facade_ms,
                shred_prepared_ms,
                validate_facade_ms,
                validate_prepared_ms,
            }
        })
        .collect()
}

/// One measured point of the streaming front-end experiment: one generated
/// document, event-driven shredding/validation straight off the serialized
/// text versus the prepared DOM path **end to end** (parse + `DocIndex`
/// build + engine run — the honest baseline, since streaming includes its
/// own tokenization).
#[derive(Debug, Clone, Serialize)]
pub struct StreamPoint {
    /// Total node count of the generated document (the scale parameter).
    pub nodes: usize,
    /// Number of tuples the universal-relation shred produced.
    pub rows: usize,
    /// `CorpusBundle::stream_text`, shred-only (ms).
    pub stream_shred_ms: f64,
    /// `CorpusBundle::stream_text`, validate-only (ms).
    pub stream_validate_ms: f64,
    /// DOM end to end, shred-only: `Document::parse_str` + index + plan (ms).
    pub dom_shred_ms: f64,
    /// DOM end to end, validate-only: parse + index + key checks (ms).
    pub dom_validate_ms: f64,
    /// Peak open binding instances + key contexts of the streaming pass —
    /// the bounded-memory stat (`O(depth + open bindings)`, not `O(nodes)`).
    pub peak_open_bindings: usize,
}

impl StreamPoint {
    /// Streaming throughput gain over the DOM end-to-end shred.
    pub fn shred_speedup(&self) -> f64 {
        self.dom_shred_ms / self.stream_shred_ms.max(f64::MIN_POSITIVE)
    }

    /// Streaming throughput gain over the DOM end-to-end validation.
    pub fn validate_speedup(&self) -> f64 {
        self.dom_validate_ms / self.stream_validate_ms.max(f64::MIN_POSITIVE)
    }
}

/// The `stream` experiment: the event-driven front end versus the DOM path
/// at the same 10⁴–10⁶-node grid the `docs` experiment uses, so the
/// `stream_*` rows of `BENCH_fig7.json` are directly comparable to the
/// `docs_*` rows at identical node counts.
///
/// Streaming and DOM outcomes (relations, violations, node counts) are
/// asserted bit-for-bit equal *before* anything is timed.  The DOM side is
/// timed **end to end** — text to result, including parsing and the
/// `DocIndex` build — because that is what the streaming pass replaces.
/// `quick` keeps only the ~10⁴-node point for the CI smoke run.
pub fn stream_experiment(quick: bool) -> Vec<StreamPoint> {
    use xmlprop_pipeline::{CorpusBundle, CorpusOptions, Jobs, PreparedState};
    use xmlprop_xmltree::Document;
    let grids: &[(usize, usize, usize, usize)] = if quick {
        &[(15, 4, 10, 6)]
    } else {
        &[(15, 4, 10, 6), (15, 5, 10, 8), (18, 6, 10, 8)]
    };
    grids
        .iter()
        .map(|&(fields, depth, keys, branching)| {
            let w = generate(&WorkloadConfig::new(fields, depth, keys));
            let (doc, report) = generate_document_with_report(
                &w,
                &DocConfig {
                    branching,
                    omission_probability: 0.1,
                    seed: 11,
                    depth: Some(depth),
                },
            );
            let text = xmlprop_xmltree::to_xml(&doc);
            drop(doc); // the streaming side must stand on the text alone
            let transformation = {
                let mut t = xmlprop_xmltransform::Transformation::new(Vec::new());
                t.add_rule(w.universal.clone());
                t
            };
            let bundle = CorpusBundle::new(w.sigma.clone(), transformation);
            let options = |shred: bool, validate: bool, stream: bool| CorpusOptions {
                jobs: Jobs::default(),
                shred,
                validate,
                covers: false,
                stream,
            };

            // Equivalence gate: both fronts, full task set, bit for bit —
            // nothing is timed until the streamed output is proven equal.
            let streamed = bundle
                .stream_text(&text, &options(true, true, true))
                .expect("serialized workload documents stream");
            let mut scratch = bundle.scratch();
            let parsed = Document::parse_str(&text).expect("serialized documents reparse");
            let dom = bundle.process(&parsed, &mut scratch, &options(true, true, false));
            assert_eq!(streamed.database, dom.database, "stream/DOM shred disagree");
            assert_eq!(
                streamed.violations, dom.violations,
                "stream/DOM validation disagree"
            );
            assert_eq!(streamed.nodes, dom.nodes, "stream/DOM node counts disagree");
            assert!(
                streamed.violations.is_empty(),
                "generated documents satisfy their own Σ"
            );
            drop(parsed);

            let reps = if quick { 1 } else { 5 };
            let (stream_shred_ms, _) = time_best_of(reps, || {
                bundle.stream_text(&text, &options(true, false, true))
            });
            let (stream_validate_ms, _) = time_best_of(reps, || {
                bundle.stream_text(&text, &options(false, true, true))
            });
            let (dom_shred_ms, _) = time_best_of(reps, || {
                let d = Document::parse_str(&text).expect("reparse");
                bundle.process(&d, &mut scratch, &options(true, false, false))
            });
            let (dom_validate_ms, _) = time_best_of(reps, || {
                let d = Document::parse_str(&text).expect("reparse");
                bundle.process(&d, &mut scratch, &options(false, true, false))
            });

            StreamPoint {
                nodes: report.nodes,
                rows: streamed.tuples,
                stream_shred_ms,
                stream_validate_ms,
                dom_shred_ms,
                dom_validate_ms,
                peak_open_bindings: streamed.peak_open_bindings,
            }
        })
        .collect()
}

/// Consolidates streaming points into [`Fig7Row`]s, five per point
/// (`stream_{shred, validate}`, `dom_{shred, validate}_e2e` and
/// `stream_peak_open_bindings`), with `n` the exact node count.  The peak
/// row records a *count*, not a duration: its `seconds` field carries the
/// frontier size so the bounded-memory trajectory is tracked in the same
/// file.
pub fn stream_rows(points: &[StreamPoint]) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for p in points {
        rows.push(Fig7Row::new("stream_shred", p.nodes, p.stream_shred_ms));
        rows.push(Fig7Row::new(
            "stream_validate",
            p.nodes,
            p.stream_validate_ms,
        ));
        rows.push(Fig7Row::new("dom_shred_e2e", p.nodes, p.dom_shred_ms));
        rows.push(Fig7Row::new("dom_validate_e2e", p.nodes, p.dom_validate_ms));
        rows.push(Fig7Row {
            bench: "stream_peak_open_bindings".to_string(),
            n: p.nodes,
            seconds: p.peak_open_bindings as f64,
        });
    }
    rows
}

/// One measured point of the corpus-pipeline experiment: one thread count,
/// same corpus, shred-only and validate-only timings.
#[derive(Debug, Clone, Serialize)]
pub struct CorpusPoint {
    /// Worker threads used.
    pub jobs: usize,
    /// Number of corpus documents.
    pub documents: usize,
    /// Total node count across the corpus (the scale parameter; the
    /// acceptance grid requires ≥100k on the full run).
    pub total_nodes: usize,
    /// Whole-corpus shredding time (ms) at this thread count.
    pub shred_ms: f64,
    /// Whole-corpus validation time (ms) at this thread count.
    pub validate_ms: f64,
    /// Total tuples shredded (identical at every thread count).
    pub tuples: usize,
}

impl CorpusPoint {
    /// Throughput gain of this point over a 1-thread shred baseline.
    pub fn shred_speedup_over(&self, baseline: &CorpusPoint) -> f64 {
        baseline.shred_ms / self.shred_ms.max(f64::MIN_POSITIVE)
    }

    /// Throughput gain of this point over a 1-thread validation baseline.
    pub fn validate_speedup_over(&self, baseline: &CorpusPoint) -> f64 {
        baseline.validate_ms / self.validate_ms.max(f64::MIN_POSITIVE)
    }
}

/// The corpus workload shared by the `corpus` experiment and the `corpus`
/// Criterion bench: one prepared [`xmlprop_pipeline::CorpusBundle`] plus a
/// generated corpus (documents satisfy Σ; per-document seeds).  `quick`
/// shrinks the corpus for the CI smoke run; the full corpus exceeds 100k
/// total nodes (asserted).
pub fn corpus_setup(
    quick: bool,
) -> (
    xmlprop_pipeline::CorpusBundle,
    Vec<xmlprop_xmltree::Document>,
    xmlprop_workload::CorpusReport,
) {
    use xmlprop_workload::{generate_corpus, CorpusConfig};
    let w = generate(&WorkloadConfig::new(15, 4, 10));
    let config = CorpusConfig {
        documents: if quick { 6 } else { 24 },
        base: DocConfig {
            branching: 6,
            omission_probability: 0.1,
            seed: 23,
            depth: Some(4),
        },
    };
    let (docs, report) = generate_corpus(&w, &config);
    if !quick {
        assert!(
            report.total_nodes >= 100_000,
            "full corpus must exceed 100k nodes, got {}",
            report.total_nodes
        );
    }
    let transformation = {
        let mut t = xmlprop_xmltransform::Transformation::new(Vec::new());
        t.add_rule(w.universal.clone());
        t
    };
    let bundle = xmlprop_pipeline::CorpusBundle::new(w.sigma.clone(), transformation);
    (bundle, docs, report)
}

/// The `corpus` experiment: whole-corpus shredding and validation
/// throughput at 1/2/4/8 worker threads over one shared prepared bundle.
///
/// Shred-only and validate-only runs are timed separately (best-of-`reps`)
/// so each `BENCH_fig7.json` row isolates one pipeline stage; every
/// thread count's full output is asserted bit-for-bit equal to the
/// sequential facade before anything is recorded.  Scaling beyond the
/// machine's core count is bounded by hardware: the committed rows record
/// whatever the benchmark host provides (CI and laptops differ), which is
/// exactly why the thread count is the row's `n`.
pub fn corpus_experiment(quick: bool) -> Vec<CorpusPoint> {
    use xmlprop_pipeline::{CorpusOptions, Jobs};
    let (bundle, docs, report) = corpus_setup(quick);
    let reps = if quick { 1 } else { 3 };

    let reference = bundle.run_sequential(&docs, &CorpusOptions::default());
    let job_grid: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    job_grid
        .iter()
        .map(|&jobs| {
            let shred_only = CorpusOptions {
                jobs: Jobs::new(jobs).expect("grid thread counts are valid"),
                shred: true,
                validate: false,
                covers: false,
                stream: false,
            };
            let validate_only = CorpusOptions {
                shred: false,
                validate: true,
                ..shred_only.clone()
            };
            let (shred_ms, shredded) = time_best_of(reps, || bundle.run(&docs, &shred_only));
            let (validate_ms, validated) = time_best_of(reps, || bundle.run(&docs, &validate_only));
            // Equivalence gate: the parallel merge must reproduce the
            // sequential result exactly, whatever the completion order.
            assert_eq!(reference.documents.len(), shredded.documents.len());
            assert_eq!(reference.documents.len(), validated.documents.len());
            for (i, (seq, shred)) in reference
                .documents
                .iter()
                .zip(&shredded.documents)
                .enumerate()
            {
                assert_eq!(seq.database, shred.database, "doc {i} at jobs={jobs}");
            }
            for (i, (seq, val)) in reference
                .documents
                .iter()
                .zip(&validated.documents)
                .enumerate()
            {
                assert_eq!(seq.violations, val.violations, "doc {i} at jobs={jobs}");
            }
            assert_eq!(
                validated.stats.violations, 0,
                "generated corpora satisfy their own Σ"
            );
            CorpusPoint {
                jobs,
                documents: report.documents,
                total_nodes: report.total_nodes,
                shred_ms,
                validate_ms,
                tuples: shredded.stats.tuples,
            }
        })
        .collect()
}

/// Consolidates corpus-pipeline points into [`Fig7Row`]s, two per point
/// (`corpus_shred` and `corpus_validate`), with `n` the **thread count**
/// (the corpus itself is fixed per run; its size is in the experiment
/// JSON).
pub fn corpus_rows(points: &[CorpusPoint]) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for p in points {
        rows.push(Fig7Row::new("corpus_shred", p.jobs, p.shred_ms));
        rows.push(Fig7Row::new("corpus_validate", p.jobs, p.validate_ms));
    }
    rows
}

/// One measured point of the incremental-revalidation experiment: the cost
/// of keeping validation and shredding current under a single small edit,
/// through the delta-maintained engines versus re-running from scratch
/// (index rebuild + full pass) on the same mutated document.
#[derive(Debug, Clone, Serialize)]
pub struct IncrementalPoint {
    /// Total node count of the generated document (the scale parameter).
    pub nodes: usize,
    /// Number of tuples the universal-relation shred produces.
    pub rows: usize,
    /// Incremental validation: `Document::apply` + `DocIndex::apply_delta`
    /// + `IncrementalValidator::apply` for one edit (ms).
    pub incr_validate_ms: f64,
    /// From-scratch validation of the same mutated document: apply +
    /// `DocIndex::build` + `KeyIndex::violations` (ms).
    pub scratch_validate_ms: f64,
    /// Incremental shredding: apply + index delta +
    /// `IncrementalShredder::apply` for one edit (ms).
    pub incr_shred_ms: f64,
    /// From-scratch shredding of the same mutated document: apply +
    /// `DocIndex::build` + `TransformationPlan::shred_all` (ms).
    pub scratch_shred_ms: f64,
}

impl IncrementalPoint {
    /// Scratch-over-incremental speedup of the validation.
    pub fn validate_speedup(&self) -> f64 {
        self.scratch_validate_ms / self.incr_validate_ms.max(f64::MIN_POSITIVE)
    }

    /// Scratch-over-incremental speedup of the shred.
    pub fn shred_speedup(&self) -> f64 {
        self.scratch_shred_ms / self.incr_shred_ms.max(f64::MIN_POSITIVE)
    }
}

/// The `incremental` experiment: delta maintenance versus from-scratch
/// recomputation under document mutation, at the same 10⁴–10⁶-node grid
/// the `docs` and `stream` experiments use.
///
/// The steady-state edit is a text toggle on the document's last text leaf
/// — a single small edit whose dirty region is one root-to-leaf chain, the
/// workload the incremental engines are built for.  Each grid point keeps
/// two identical documents: one maintained incrementally, one re-indexed
/// and re-processed from scratch after every edit.  The two sides are
/// measured **interleaved** (incremental edit *i*, then the scratch side
/// applying the same edit *i*), best-of-`reps`, so jitter hits both
/// equally; before and after the timed region the maintained state is
/// asserted bit-for-bit equal to the from-scratch result.  `quick` keeps
/// only the ~10⁴-node point for the CI smoke run.
pub fn incremental_experiment(quick: bool) -> Vec<IncrementalPoint> {
    use xmlprop_xmlkeys::IncrementalValidator;
    use xmlprop_xmltransform::{IncrementalShredder, TransformationPlan};
    use xmlprop_xmltree::{Delta, NodeKind};
    let grids: &[(usize, usize, usize, usize)] = if quick {
        &[(15, 4, 10, 6)]
    } else {
        &[(15, 4, 10, 6), (15, 5, 10, 8), (18, 6, 10, 8)]
    };
    grids
        .iter()
        .map(|&(fields, depth, keys, branching)| {
            let w = generate(&WorkloadConfig::new(fields, depth, keys));
            let (doc, report) = generate_document_with_report(
                &w,
                &DocConfig {
                    branching,
                    omission_probability: 0.1,
                    seed: 11,
                    depth: Some(depth),
                },
            );
            let target = doc
                .all_nodes()
                .into_iter()
                .rev()
                .find(|&n| matches!(doc.kind(n), NodeKind::Text))
                .expect("workload documents contain text leaves");
            let edit = |i: usize| Delta::SetText {
                node: target,
                text: format!("edit-{}", i % 2),
            };
            let reps = if quick { 1 } else { 5 };

            // Validation: delta-maintained KeyIndex state versus index
            // rebuild + full violation walk.  The scratch side extends a
            // worker copy of the key index's universe (append-only ids).
            let keys_index = w.sigma.prepare();
            let mut universe = keys_index.universe().clone();
            let mut vdoc = doc.clone();
            let mut vindex = DocIndex::build(&vdoc, &mut universe);
            let mut validator = IncrementalValidator::new(&keys_index, &vdoc, &vindex);
            let mut sdoc = doc.clone();

            // Equivalence gate: one untimed edit through both paths.
            {
                let applied = vdoc.apply(&edit(0)).expect("toggle applies");
                vindex.apply_delta(&vdoc, &applied, &mut universe);
                validator.apply(&keys_index, &vdoc, &vindex, &applied);
                sdoc.apply(&edit(0)).expect("toggle applies");
                let sindex = DocIndex::build(&sdoc, &mut universe);
                assert_eq!(
                    validator.violations(),
                    keys_index.violations(&sdoc, &sindex),
                    "incremental/scratch validation disagree"
                );
            }

            let mut incr_validate_ms = f64::INFINITY;
            let mut scratch_validate_ms = f64::INFINITY;
            for i in 1..=reps {
                let delta = edit(i);
                let (ms, _) = time(|| {
                    let applied = vdoc.apply(&delta).expect("toggle applies");
                    vindex.apply_delta(&vdoc, &applied, &mut universe);
                    validator.apply(&keys_index, &vdoc, &vindex, &applied);
                    validator.violation_count()
                });
                incr_validate_ms = incr_validate_ms.min(ms);
                let (ms, _) = time(|| {
                    sdoc.apply(&delta).expect("toggle applies");
                    let sindex = DocIndex::build(&sdoc, &mut universe);
                    keys_index.violations(&sdoc, &sindex).len()
                });
                scratch_validate_ms = scratch_validate_ms.min(ms);
            }
            let sindex = DocIndex::build(&sdoc, &mut universe);
            assert_eq!(
                validator.violations(),
                keys_index.violations(&sdoc, &sindex),
                "incremental validation drifted across the timed edits"
            );

            // Shredding: delta-maintained tuple blocks versus index rebuild
            // + full re-shred of the universal relation.
            let transformation = {
                let mut t = xmlprop_xmltransform::Transformation::new(Vec::new());
                t.add_rule(w.universal.clone());
                t
            };
            let mut shred_universe = LabelUniverse::new();
            let plan = TransformationPlan::new(&transformation, &mut shred_universe);
            let mut pdoc = doc.clone();
            let mut pindex = DocIndex::build(&pdoc, &mut shred_universe);
            let mut shredder = IncrementalShredder::new(&plan, &pdoc, &pindex);
            let mut qdoc = doc.clone();

            let rows = {
                let applied = pdoc.apply(&edit(0)).expect("toggle applies");
                pindex.apply_delta(&pdoc, &applied, &mut shred_universe);
                shredder.apply(&plan, &pdoc, &pindex, &applied);
                qdoc.apply(&edit(0)).expect("toggle applies");
                let qindex = DocIndex::build(&qdoc, &mut shred_universe);
                let scratch_db = plan.shred_all(&qdoc, &qindex);
                assert_eq!(
                    shredder.database(&plan),
                    scratch_db,
                    "incremental/scratch shredding disagree"
                );
                scratch_db.relations().map(Relation::len).sum()
            };

            let mut incr_shred_ms = f64::INFINITY;
            let mut scratch_shred_ms = f64::INFINITY;
            for i in 1..=reps {
                let delta = edit(i);
                let (ms, _) = time(|| {
                    let applied = pdoc.apply(&delta).expect("toggle applies");
                    pindex.apply_delta(&pdoc, &applied, &mut shred_universe);
                    shredder.apply(&plan, &pdoc, &pindex, &applied).len()
                });
                incr_shred_ms = incr_shred_ms.min(ms);
                let (ms, _) = time(|| {
                    qdoc.apply(&delta).expect("toggle applies");
                    let qindex = DocIndex::build(&qdoc, &mut shred_universe);
                    plan.shred_all(&qdoc, &qindex)
                        .relations()
                        .map(Relation::len)
                        .sum::<usize>()
                });
                scratch_shred_ms = scratch_shred_ms.min(ms);
            }
            let qindex = DocIndex::build(&qdoc, &mut shred_universe);
            assert_eq!(
                shredder.database(&plan),
                plan.shred_all(&qdoc, &qindex),
                "incremental shredding drifted across the timed edits"
            );

            IncrementalPoint {
                nodes: report.nodes,
                rows,
                incr_validate_ms,
                scratch_validate_ms,
                incr_shred_ms,
                scratch_shred_ms,
            }
        })
        .collect()
}

/// Consolidates incremental-revalidation points into [`Fig7Row`]s, four per
/// point (`incr_validate`, `scratch_validate`, `incr_shred`,
/// `scratch_shred`), with `n` the exact node count.
pub fn incremental_rows(points: &[IncrementalPoint]) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for p in points {
        rows.push(Fig7Row::new("incr_validate", p.nodes, p.incr_validate_ms));
        rows.push(Fig7Row::new(
            "scratch_validate",
            p.nodes,
            p.scratch_validate_ms,
        ));
        rows.push(Fig7Row::new("incr_shred", p.nodes, p.incr_shred_ms));
        rows.push(Fig7Row::new("scratch_shred", p.nodes, p.scratch_shred_ms));
    }
    rows
}

/// One measured point of the `serve` experiment: N client threads issuing
/// validate requests against one resident server.
#[derive(Debug, Clone, Serialize)]
pub struct ServePoint {
    /// Concurrent client connections driving requests.
    pub client_threads: usize,
    /// Total requests completed across all clients.
    pub requests: usize,
    /// Distinct documents round-robined across the requests.
    pub documents: usize,
    /// Wall-clock time (ms) from first send to last response.
    pub elapsed_ms: f64,
    /// Aggregate throughput, `requests / elapsed`.
    pub requests_per_sec: f64,
    /// Whether this point was measured under [`FAULTY_SERVE_SPEC`].
    pub faults: bool,
}

/// The seeded schedule the faulty serve grid runs under: 10% of server
/// reads delayed by 1 ms, 10% of server writes fragmented to 16 bytes —
/// real transport jitter, but no torn connections, so every response
/// still completes and byte-checks.
pub const FAULTY_SERVE_SPEC: &str = "conn.read=10%delay:1,conn.write=10%short:16";

/// The `serve` experiment: aggregate request throughput of the resident
/// server at 1/2/4/8 concurrent client connections (1/2 under `quick`),
/// over a real TCP loopback session per client.
///
/// Every served response is asserted byte-equal to the sequential
/// renderer's output for the same document *before* any timing is
/// recorded — the concurrent server must agree with the one-shot path
/// exactly, whatever interleaving the gate produces.
pub fn serve_experiment(quick: bool) -> Vec<ServePoint> {
    use xmlprop_pipeline::{Faults, Jobs, PreparedState};
    use xmlprop_server::{render, Server, ServiceConfig};
    let (bundle, docs, _report) = corpus_setup(quick);
    let doc_texts: Vec<String> = docs.iter().take(4).map(xmlprop_xmltree::to_xml).collect();
    // The sequential reference: what a one-shot run prints per document.
    let expected: Vec<String> = {
        let mut scratch = bundle.scratch();
        doc_texts
            .iter()
            .map(|text| {
                let doc = xmlprop_xmltree::Document::parse_str(text)
                    .expect("serialized corpus documents reparse");
                render::validate_report(&bundle, &doc, &mut scratch).1
            })
            .collect()
    };
    let grid: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let total_requests = if quick { 24 } else { 240 };

    let server = Server::bind(
        "127.0.0.1:0",
        bundle,
        Jobs::new(8).expect("8 is a valid thread count"),
    )
    .expect("loopback bind");
    let mut points = measure_serve_grid(
        server.local_addr(),
        &doc_texts,
        &expected,
        grid,
        total_requests,
        false,
    );
    server.shutdown();

    // The same grid with the transport degraded by [`FAULTY_SERVE_SPEC`].
    // The stub build cannot carry a schedule (`parse` errors), so the
    // faulty rows only land when the `faultline` feature is compiled in.
    match Faults::parse(FAULTY_SERVE_SPEC, 42) {
        Ok(faults) => {
            let (bundle, _, _) = corpus_setup(quick);
            let server = Server::bind_with(
                "127.0.0.1:0",
                bundle,
                Jobs::new(8).expect("8 is a valid thread count"),
                ServiceConfig::default(),
                faults,
            )
            .expect("loopback bind");
            points.extend(measure_serve_grid(
                server.local_addr(),
                &doc_texts,
                &expected,
                grid,
                total_requests,
                true,
            ));
            server.shutdown();
        }
        Err(_) => println!(
            "   (fault injection not compiled in; skipping the faulty serve grid — \
             rebuild with --features faultline)"
        ),
    }
    points
}

/// Runs the serve grid against an already-bound server, byte-checking
/// every response against the sequential renderer before timing.
fn measure_serve_grid(
    addr: std::net::SocketAddr,
    doc_texts: &[String],
    expected: &[String],
    grid: &[usize],
    total_requests: usize,
    faults: bool,
) -> Vec<ServePoint> {
    use xmlprop_server::{Client, Request};
    grid.iter()
        .map(|&threads| {
            let per_thread = total_requests / threads;
            let start = Instant::now();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        scope.spawn(move || {
                            let mut client = Client::connect(addr).expect("loopback connect");
                            for i in 0..per_thread {
                                let j = (t + i) % doc_texts.len();
                                let resp = client
                                    .send(&Request::Validate {
                                        document: doc_texts[j].clone(),
                                    })
                                    .expect("request round-trip");
                                assert_eq!(
                                    resp.payload, expected[j],
                                    "served response must equal the sequential renderer output"
                                );
                            }
                        })
                    })
                    .collect();
                for handle in handles {
                    handle.join().expect("client thread");
                }
            });
            let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
            let requests = per_thread * threads;
            ServePoint {
                client_threads: threads,
                requests,
                documents: doc_texts.len(),
                elapsed_ms,
                requests_per_sec: requests as f64 / (elapsed_ms / 1e3),
                faults,
            }
        })
        .collect()
}

/// Consolidates serve points into [`Fig7Row`]s — `serve_requests_per_sec`
/// for the clean grid, `serve_requests_per_sec_faulty` for the grid under
/// [`FAULTY_SERVE_SPEC`] — with `n` the **client thread count** and
/// `seconds` the mean seconds per request (throughput is its reciprocal),
/// keeping the shared `BENCH_fig7.json` row schema.
pub fn serve_rows(points: &[ServePoint]) -> Vec<Fig7Row> {
    points
        .iter()
        .map(|p| {
            let name = if p.faults {
                "serve_requests_per_sec_faulty"
            } else {
                "serve_requests_per_sec"
            };
            Fig7Row::new(name, p.client_threads, p.elapsed_ms / p.requests as f64)
        })
        .collect()
}

/// Consolidates document-engine points into [`Fig7Row`]s, five per point
/// (`docs_{index_build, shred_facade, shred_prepared, validate_facade,
/// validate_prepared}`), with `n` the exact node count.
pub fn docs_rows(points: &[DocPoint]) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for p in points {
        rows.push(Fig7Row::new("docs_index_build", p.nodes, p.index_build_ms));
        rows.push(Fig7Row::new(
            "docs_shred_facade",
            p.nodes,
            p.shred_facade_ms,
        ));
        rows.push(Fig7Row::new(
            "docs_shred_prepared",
            p.nodes,
            p.shred_prepared_ms,
        ));
        rows.push(Fig7Row::new(
            "docs_validate_facade",
            p.nodes,
            p.validate_facade_ms,
        ));
        rows.push(Fig7Row::new(
            "docs_validate_prepared",
            p.nodes,
            p.validate_prepared_ms,
        ));
    }
    rows
}

/// Consolidates prepared-ablation points into two [`Fig7Row`]s per point
/// (`<workload>_facade` and `<workload>_prepared`).
pub fn prepared_rows(points: &[PreparedPoint]) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for p in points {
        rows.push(Fig7Row::new(
            &format!("{}_facade", p.workload),
            p.n,
            p.facade_ms,
        ));
        rows.push(Fig7Row::new(
            &format!("{}_prepared", p.workload),
            p.n,
            p.prepared_ms,
        ));
    }
    rows
}

/// One point of the query experiment: the same unique-key join executed
/// by the key-aware plan (hash lookup against the propagated key) and by
/// the naive nested-loop baseline, on `rows`-per-relation instances.
#[derive(Debug, Clone, Serialize)]
pub struct QueryPoint {
    /// Rows in each of the two joined relations.
    pub rows: usize,
    /// Rows in the join result (identical for both plans).
    pub result_rows: usize,
    /// Best-of-reps naive nested-loop execution time.
    pub naive_ms: f64,
    /// Best-of-reps key-lookup execution time.
    pub keyed_ms: f64,
}

impl QueryPoint {
    /// How many times faster the keyed join ran.
    pub fn speedup(&self) -> f64 {
        self.naive_ms / self.keyed_ms
    }
}

/// The query experiment: a foreign-key join between a fact table and a
/// dimension table whose propagated cover makes `id` a key (`id ->
/// payload`), so the optimizer executes it as a hash lookup.  Both plans
/// are executed on the same instance and their outputs asserted equal row
/// for row before timing is recorded.
pub fn query_experiment(quick: bool) -> Vec<QueryPoint> {
    let sizes: &[usize] = if quick {
        &[200, 400]
    } else {
        &[500, 1000, 2000, 4000]
    };
    let reps = if quick { 3 } else { 5 };

    sizes
        .iter()
        .map(|&n| {
            let mut dim = Relation::new(RelationSchema::new("dim", ["id", "payload"]));
            for i in 0..n {
                dim.insert(Tuple::new(vec![
                    Value::text(format!("k{i}")),
                    Value::text(format!("p{i}")),
                ]));
            }
            let mut fact = Relation::new(RelationSchema::new("fact", ["fid", "val"]));
            for i in 0..n {
                // Every fact row hits a dimension row; a few carry a NULL
                // key to keep the null-semantics path (never matches) on
                // the measured path.
                let fid = if i % 16 == 15 {
                    Value::Null
                } else {
                    Value::text(format!("k{}", i % n))
                };
                fact.insert(Tuple::new(vec![fid, Value::text(format!("v{i}"))]));
            }
            let mut db = Database::new();
            let mut catalog = Catalog::new();
            catalog.add_relation(
                dim.schema().clone(),
                &[Fd::parse("id -> payload").expect("well-formed FD")],
            );
            catalog.add_relation(fact.schema().clone(), &[]);
            db.insert(dim);
            db.insert(fact);

            let query = parse_query("select val, payload from fact join dim on fid = id")
                .expect("experiment query parses");
            let keyed_plan = plan(&query, &catalog).expect("query binds");
            assert_eq!(
                keyed_plan.joins[0].kind,
                JoinKind::KeyLookup,
                "the dimension join must plan as a hash lookup"
            );
            let naive_plan = plan_naive(&query, &catalog).expect("query binds");

            let (naive_ms, naive_out) =
                time_best_of(reps, || execute(&naive_plan, &db).expect("naive execution"));
            let (keyed_ms, keyed_out) =
                time_best_of(reps, || execute(&keyed_plan, &db).expect("keyed execution"));
            assert_eq!(
                naive_out.rows(),
                keyed_out.rows(),
                "keyed and naive outputs must be identical"
            );

            QueryPoint {
                rows: n,
                result_rows: keyed_out.len(),
                naive_ms,
                keyed_ms,
            }
        })
        .collect()
}

/// Consolidates query points into two [`Fig7Row`]s per point
/// (`query_naive` and `query_keyed`), with `n` the per-relation row count.
pub fn query_rows(points: &[QueryPoint]) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for p in points {
        rows.push(Fig7Row::new("query_naive", p.rows, p.naive_ms));
        rows.push(Fig7Row::new("query_keyed", p.rows, p.keyed_ms));
    }
    rows
}

/// One consolidated benchmark row, as archived in `BENCH_fig7.json` at the
/// repository root so the performance trajectory is comparable across PRs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fig7Row {
    /// Benchmark identifier, e.g. `fig7a_minimum_cover`.
    pub bench: String,
    /// The varied parameter (fields, depth or keys, per figure).
    pub n: usize,
    /// Elapsed wall-clock time in seconds.
    pub seconds: f64,
}

impl Fig7Row {
    fn new(bench: &str, n: usize, ms: f64) -> Self {
        Fig7Row {
            bench: bench.to_string(),
            n,
            seconds: ms / 1e3,
        }
    }
}

/// Consolidates Fig. 7(a) points into [`Fig7Row`]s (the exponential `naive`
/// baseline contributes rows only where it was measured).
pub fn fig7a_rows(points: &[Fig7aPoint]) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for p in points {
        rows.push(Fig7Row::new(
            "fig7a_minimum_cover",
            p.fields,
            p.minimum_cover_ms,
        ));
        if let Some(naive_ms) = p.naive_ms {
            rows.push(Fig7Row::new("fig7a_naive", p.fields, naive_ms));
        }
    }
    rows
}

/// Consolidates Fig. 7(b)/(c) points into [`Fig7Row`]s, three per point
/// (`<figure>_propagation`, `<figure>_propagation_prepared` and
/// `<figure>_gminimumcover`).
pub fn propagation_rows(figure: &str, points: &[PropagationPoint]) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for p in points {
        rows.push(Fig7Row::new(
            &format!("{figure}_propagation"),
            p.parameter,
            p.propagation_ms,
        ));
        rows.push(Fig7Row::new(
            &format!("{figure}_propagation_prepared"),
            p.parameter,
            p.propagation_prepared_ms,
        ));
        rows.push(Fig7Row::new(
            &format!("{figure}_gminimumcover"),
            p.parameter,
            p.g_minimum_cover_ms,
        ));
    }
    rows
}

/// Consolidates the in-text large-scale spot checks into [`Fig7Row`]s,
/// keyed by algorithm and field count, with `n` the key count.
pub fn large_scale_rows(points: &[LargeScalePoint]) -> Vec<Fig7Row> {
    points
        .iter()
        .map(|p| {
            Fig7Row::new(
                &format!("large_{}_{}f", p.algorithm.to_lowercase(), p.fields),
                p.keys,
                p.elapsed_ms,
            )
        })
        .collect()
}

/// Renders a series of labelled rows as an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    let header_line = fmt_row(&header_cells);
    let mut out = header_line.clone();
    out.push('\n');
    out.push_str(&"-".repeat(header_line.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_small_sweep_runs() {
        let points = fig7a(&[6, 8, 10], 8);
        assert_eq!(points.len(), 3);
        assert!(points[0].naive_ms.is_some());
        assert!(points[2].naive_ms.is_none());
        assert!(points.iter().all(|p| p.minimum_cover_ms >= 0.0));
    }

    #[test]
    fn fig7b_and_7c_agreement_holds() {
        // propagation_point asserts that the two algorithms agree on every
        // probe; running a couple of points is the test.
        let b = fig7b(&[2, 4]);
        assert_eq!(b.len(), 2);
        let c = fig7c(&[4, 8]);
        assert_eq!(c.len(), 2);
        assert!(b[0].probe_propagated);
        assert!(c[0].probe_propagated);
    }

    #[test]
    fn consolidated_rows_cover_every_measurement() {
        let a = fig7a(&[6, 8], 6);
        let rows = fig7a_rows(&a);
        // One minimum-cover row per point, one naive row for fields <= 6.
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.seconds >= 0.0));
        assert_eq!(rows[0].bench, "fig7a_minimum_cover");
        assert_eq!(rows[0].n, 6);
        assert_eq!(rows[1].bench, "fig7a_naive");

        let b = fig7b(&[2]);
        let rows = propagation_rows("fig7b", &b);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].bench, "fig7b_propagation");
        assert_eq!(rows[1].bench, "fig7b_propagation_prepared");
        assert_eq!(rows[2].bench, "fig7b_gminimumcover");
        assert_eq!(rows[0].n, 2);

        let rows = large_scale_rows(&[LargeScalePoint {
            algorithm: "propagation",
            fields: 1000,
            keys: 50,
            elapsed_ms: 12.0,
        }]);
        assert_eq!(rows[0].bench, "large_propagation_1000f");
        assert_eq!(rows[0].n, 50);
        assert!((rows[0].seconds - 0.012).abs() < 1e-12);
    }

    #[test]
    fn prepared_ablation_runs_and_rows_cover_it() {
        // The quick grids: one implication point plus the batch point; the
        // function itself asserts facade/prepared agreement.
        let points = prepared_speedups(true);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].workload, "implication");
        assert_eq!(points[1].workload, "batch_propagation");
        assert_eq!(points[1].n, 1_000);
        assert!(points.iter().all(|p| p.speedup() > 0.0));
        let rows = prepared_rows(&points);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].bench, "implication_facade");
        assert_eq!(rows[1].bench, "implication_prepared");
        assert_eq!(rows[2].bench, "batch_propagation_facade");
        assert_eq!(rows[3].bench, "batch_propagation_prepared");
    }

    #[test]
    fn docs_experiment_runs_and_rows_cover_it() {
        // The quick grid: one ~10⁴-node point; the function itself asserts
        // facade/prepared agreement on both the shred and the validation.
        let points = docs_experiment(true);
        assert_eq!(points.len(), 1);
        assert!(points[0].nodes > 1_000);
        assert!(points[0].rows > 0);
        assert!(points[0].shred_speedup() > 0.0);
        assert!(points[0].validate_speedup() > 0.0);
        let rows = docs_rows(&points);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].bench, "docs_index_build");
        assert_eq!(rows[1].bench, "docs_shred_facade");
        assert_eq!(rows[2].bench, "docs_shred_prepared");
        assert_eq!(rows[3].bench, "docs_validate_facade");
        assert_eq!(rows[4].bench, "docs_validate_prepared");
        assert!(rows.iter().all(|r| r.n == points[0].nodes));
    }

    #[test]
    fn stream_experiment_runs_and_rows_cover_it() {
        // The quick grid: one ~10⁴-node point; the function itself asserts
        // stream/DOM agreement on relations, violations and node counts.
        let points = stream_experiment(true);
        assert_eq!(points.len(), 1);
        assert!(points[0].nodes > 1_000);
        assert!(points[0].rows > 0);
        assert!(points[0].shred_speedup() > 0.0);
        assert!(points[0].validate_speedup() > 0.0);
        assert!(
            points[0].peak_open_bindings > 0 && points[0].peak_open_bindings < points[0].nodes,
            "the frontier must be recorded and smaller than the document"
        );
        let rows = stream_rows(&points);
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].bench, "stream_shred");
        assert_eq!(rows[1].bench, "stream_validate");
        assert_eq!(rows[2].bench, "dom_shred_e2e");
        assert_eq!(rows[3].bench, "dom_validate_e2e");
        assert_eq!(rows[4].bench, "stream_peak_open_bindings");
        assert_eq!(rows[4].seconds, points[0].peak_open_bindings as f64);
        assert!(rows.iter().all(|r| r.n == points[0].nodes));
    }

    #[test]
    fn incremental_experiment_runs_and_rows_cover_it() {
        // The quick grid: one ~10⁴-node point, one timed edit per side; the
        // function itself asserts incremental/scratch agreement before and
        // after the timed region.
        let points = incremental_experiment(true);
        assert_eq!(points.len(), 1);
        assert!(points[0].nodes > 1_000);
        assert!(points[0].rows > 0);
        assert!(points[0].validate_speedup() > 0.0);
        assert!(points[0].shred_speedup() > 0.0);
        let rows = incremental_rows(&points);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].bench, "incr_validate");
        assert_eq!(rows[1].bench, "scratch_validate");
        assert_eq!(rows[2].bench, "incr_shred");
        assert_eq!(rows[3].bench, "scratch_shred");
        assert!(rows.iter().all(|r| r.n == points[0].nodes));
    }

    #[test]
    fn corpus_experiment_runs_and_rows_cover_it() {
        // The quick grid: 6 documents at jobs 1 and 2; the function itself
        // asserts bit-for-bit parallel/sequential agreement per document.
        let points = corpus_experiment(true);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].jobs, 1);
        assert_eq!(points[1].jobs, 2);
        assert_eq!(points[0].documents, 6);
        assert!(points[0].total_nodes > 10_000);
        assert!(points[0].tuples > 0);
        assert_eq!(points[0].tuples, points[1].tuples);
        assert!(points[1].shred_speedup_over(&points[0]) > 0.0);
        assert!(points[1].validate_speedup_over(&points[0]) > 0.0);
        let rows = corpus_rows(&points);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].bench, "corpus_shred");
        assert_eq!(rows[1].bench, "corpus_validate");
        assert_eq!(rows[0].n, 1);
        assert_eq!(rows[2].n, 2);
    }

    #[test]
    fn table_rendering_is_aligned() {
        let table = render_table(
            &["fields", "ms"],
            &[
                vec!["5".into(), "0.1".into()],
                vec!["500".into(), "123.4".into()],
            ],
        );
        assert!(table.contains("fields"));
        assert_eq!(table.lines().count(), 4);
    }
}
