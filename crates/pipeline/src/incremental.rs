//! Incremental revalidation: a mutable document kept consistent with its
//! prepared index, key validation and shredded database under edits.
//!
//! [`CorpusBundle::open_incremental`] pays the from-scratch cost once —
//! building the [`DocIndex`], the [`IncrementalValidator`] and the
//! [`IncrementalShredder`] — and every subsequent
//! [`CorpusBundle::apply_delta`] maintains all three in time proportional
//! to the edit's dirty region instead of the document:
//!
//! 1. [`Document::apply`] performs the structural edit;
//! 2. [`DocIndex::apply_delta`] renumbers only the affected subtree range;
//! 3. the validator re-probes only keys whose contexts/targets meet the
//!    dirty ancestor chain;
//! 4. the shredder re-shreds only the tuple blocks whose anchors meet it,
//!    reporting tuple-level [`RelationDelta`]s.
//!
//! The maintained state is bit-for-bit what re-running the whole pipeline
//! from scratch on the mutated document would produce — pinned by the
//! `incremental_equivalence` differential property tests.
//!
//! The module also hosts [`parse_edit_script`], the textual edit-script
//! format behind `xmlprop-cli mutate`:
//!
//! ```text
//! # comments and blank lines are skipped
//! settext n5 new text until end of line
//! remove n12
//! insert n3 0 <chapter number="9"><name>Nine</name></chapter>
//! insert n3 1 @isbn=123-456
//! insert n7 2 bare text until end of line
//! ```
//!
//! Nodes are named by their arena id as printed in violation reports
//! (`n5`); `insert` takes the parent node, the child position, and a
//! fragment — an XML element, `@name=value` attribute, or bare text.

use crate::bundle::CorpusBundle;
use crate::error::Error;
use xmlprop_reldb::Database;
use xmlprop_xmlkeys::{IncrementalValidator, Violation};
use xmlprop_xmlpath::LabelUniverse;
use xmlprop_xmltransform::{IncrementalShredder, RelationDelta};
use xmlprop_xmltree::{AppliedDelta, Delta, DeltaError, DocIndex, Document, Fragment, NodeId};

/// A document opened for incremental maintenance against a
/// [`CorpusBundle`]; see the module docs.
#[derive(Debug)]
pub struct IncrementalDocument {
    doc: Document,
    universe: LabelUniverse,
    index: DocIndex,
    validator: IncrementalValidator,
    shredder: IncrementalShredder,
}

/// What one applied edit did to the maintained state.
#[derive(Debug, Clone)]
pub struct EditReport {
    /// The normalized record of the edit.
    pub applied: AppliedDelta,
    /// Live nodes after the edit.
    pub nodes: usize,
    /// Total key violations after the edit.
    pub violations: usize,
    /// Tuple-level effect per relation the edit touched (empty when the
    /// shredded database is unchanged).
    pub relations: Vec<RelationDelta>,
}

impl CorpusBundle {
    /// Opens a document for incremental maintenance: builds its index,
    /// validation state and shredding state once, so that
    /// [`CorpusBundle::apply_delta`] can maintain them per edit.
    pub fn open_incremental(&self, doc: Document) -> IncrementalDocument {
        let mut universe = self.worker_universe();
        let index = DocIndex::build(&doc, &mut universe);
        let validator = IncrementalValidator::new(self.keys(), &doc, &index);
        let shredder = IncrementalShredder::new(self.plan(), &doc, &index);
        IncrementalDocument {
            doc,
            universe,
            index,
            validator,
            shredder,
        }
    }

    /// Applies one edit to an incrementally maintained document, patching
    /// the index, the validation state and the shredded database in place.
    /// On error the document and all maintained state are unchanged.
    pub fn apply_delta(
        &self,
        state: &mut IncrementalDocument,
        delta: &Delta,
    ) -> Result<EditReport, DeltaError> {
        let applied = state.doc.apply(delta)?;
        state
            .index
            .apply_delta(&state.doc, &applied, &mut state.universe);
        state
            .validator
            .apply(self.keys(), &state.doc, &state.index, &applied);
        let relations = state
            .shredder
            .apply(self.plan(), &state.doc, &state.index, &applied);
        Ok(EditReport {
            applied,
            nodes: state.doc.len(),
            violations: state.validator.violation_count(),
            relations,
        })
    }
}

impl IncrementalDocument {
    /// The current document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The maintained index (always current for the document).
    pub fn index(&self) -> &DocIndex {
        &self.index
    }

    /// All current key violations — bit-for-bit what a from-scratch
    /// validation of the current document reports.
    pub fn violations(&self) -> Vec<Violation> {
        self.validator.violations()
    }

    /// The number of current key violations.
    pub fn violation_count(&self) -> usize {
        self.validator.violation_count()
    }

    /// True if the current document satisfies Σ.
    pub fn satisfies(&self) -> bool {
        self.validator.satisfies()
    }

    /// The maintained shredded database — bit-for-bit what a from-scratch
    /// shred of the current document produces.
    pub fn database(&self, bundle: &CorpusBundle) -> Database {
        self.shredder.database(bundle.plan())
    }
}

/// Parses a textual edit script (see the module docs for the format) into
/// `(line number, delta)` pairs.  `origin` names the script in error
/// messages (`script.edits:3: …`); all failures are
/// [`ErrorKind::Parse`](crate::ErrorKind::Parse) and exit/wire-code like
/// every other parse error.
pub fn parse_edit_script(text: &str, origin: &str) -> Result<Vec<(usize, Delta)>, Error> {
    let mut edits = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let at = |msg: String| Error::parse(&format!("{origin}:{lineno}"), msg);
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim_start()),
            None => (line, ""),
        };
        let delta = match verb {
            "settext" => {
                let (node, text) = match rest.split_once(char::is_whitespace) {
                    Some((n, t)) => (n, t.trim_start()),
                    None if !rest.is_empty() => (rest, ""),
                    None => return Err(at("settext expects `settext <node> <text>`".into())),
                };
                Delta::SetText {
                    node: parse_node(node).map_err(&at)?,
                    text: text.to_string(),
                }
            }
            "remove" => {
                if rest.is_empty() || rest.contains(char::is_whitespace) {
                    return Err(at("remove expects `remove <node>`".into()));
                }
                Delta::RemoveSubtree {
                    node: parse_node(rest).map_err(&at)?,
                }
            }
            "insert" => {
                let (node, rest) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| at("insert expects `insert <node> <pos> <fragment>`".into()))?;
                let (pos, fragment) = rest
                    .trim_start()
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| at("insert expects `insert <node> <pos> <fragment>`".into()))?;
                let position: usize = pos
                    .parse()
                    .map_err(|_| at(format!("`{pos}` is not a child position")))?;
                Delta::InsertSubtree {
                    parent: parse_node(node).map_err(&at)?,
                    position,
                    fragment: parse_fragment(fragment.trim_start()).map_err(&at)?,
                }
            }
            other => {
                return Err(at(format!(
                    "unknown edit verb `{other}` (expected settext, remove or insert)"
                )))
            }
        };
        edits.push((lineno, delta));
    }
    Ok(edits)
}

/// Parses a node reference of the form `n<id>` (as nodes print).
fn parse_node(token: &str) -> Result<NodeId, String> {
    token
        .strip_prefix('n')
        .and_then(|digits| digits.parse::<usize>().ok())
        .map(NodeId::from_index)
        .ok_or_else(|| format!("`{token}` is not a node id (expected e.g. `n5`)"))
}

/// Parses an insert fragment: `<xml…>` element, `@name=value` attribute,
/// or bare text.
fn parse_fragment(text: &str) -> Result<Fragment, String> {
    if let Some(attr) = text.strip_prefix('@') {
        let (name, value) = attr.split_once('=').ok_or_else(|| {
            format!("`{text}` is not an attribute fragment (expected `@name=value`)")
        })?;
        if name.is_empty() {
            return Err("attribute fragment has an empty name".into());
        }
        return Ok(Fragment::Attribute {
            name: name.to_string(),
            value: value.to_string(),
        });
    }
    if text.starts_with('<') {
        let doc = Document::parse_str(text).map_err(|e| format!("fragment: {e}"))?;
        return Ok(Fragment::Element(doc));
    }
    Ok(Fragment::Text(text.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{parse_keys_text, parse_rules_text};

    fn bundle() -> CorpusBundle {
        CorpusBundle::prepare(
            parse_keys_text("K1: (ε, (//book, {@isbn}))", "keys").unwrap(),
            parse_rules_text(
                "rule book(isbn, title) {
                    xb := xr//book;
                    xi := xb/@isbn;
                    xt := xb/title;
                    isbn := value(xi);
                    title := value(xt);
                }",
                "rules",
            )
            .unwrap(),
        )
    }

    fn fresh_outcome(bundle: &CorpusBundle, doc: &Document) -> (Vec<Violation>, Database) {
        let mut scratch = crate::state::RequestScratch::for_bundle(bundle);
        let index = scratch.index_document(doc);
        (
            bundle.keys().violations(doc, &index),
            bundle.plan().shred_all(doc, &index),
        )
    }

    #[test]
    fn apply_delta_tracks_scratch_and_reports_tuple_deltas() {
        let bundle = bundle();
        let doc = Document::parse_str(
            r#"<db><book isbn="1"><title>A</title></book><book isbn="2"><title>B</title></book></db>"#,
        )
        .unwrap();
        let b0 = doc.children(doc.root()).next().unwrap();
        let isbn0 = doc.attribute_node(b0, "isbn").unwrap();
        let mut state = bundle.open_incremental(doc);

        // Collide the isbn values: one violation, one changed tuple.
        let report = bundle
            .apply_delta(
                &mut state,
                &Delta::SetText {
                    node: isbn0,
                    text: "2".into(),
                },
            )
            .unwrap();
        assert_eq!(report.violations, 1);
        assert_eq!(report.relations.len(), 1);
        assert_eq!(report.relations[0].relation(), "book");
        assert_eq!(report.relations[0].inserted().len(), 1);
        assert_eq!(report.relations[0].deleted().len(), 1);
        let (violations, db) = fresh_outcome(&bundle, state.document());
        assert_eq!(state.violations(), violations);
        assert_eq!(state.database(&bundle), db);

        // Remove the first book: violation gone, one tuple deleted.
        let report = bundle
            .apply_delta(&mut state, &Delta::RemoveSubtree { node: b0 })
            .unwrap();
        assert_eq!(report.violations, 0);
        assert!(state.satisfies());
        let (violations, db) = fresh_outcome(&bundle, state.document());
        assert_eq!(state.violations(), violations);
        assert_eq!(state.database(&bundle), db);
    }

    #[test]
    fn apply_delta_errors_leave_state_untouched() {
        let bundle = bundle();
        let doc =
            Document::parse_str(r#"<db><book isbn="1"><title>A</title></book></db>"#).unwrap();
        let mut state = bundle.open_incremental(doc);
        let before = state.document().clone();
        let err = bundle
            .apply_delta(
                &mut state,
                &Delta::RemoveSubtree {
                    node: NodeId::from_index(999),
                },
            )
            .unwrap_err();
        assert!(matches!(err, DeltaError::UnknownNode(_)));
        assert_eq!(state.document(), &before);
        assert_eq!(state.violation_count(), 0);
    }

    #[test]
    fn edit_scripts_parse_and_report_line_numbers() {
        let script = "\
# a comment
settext n5 hello world
remove n12

insert n3 0 <chapter number=\"9\"/>
insert n3 1 @isbn=123
insert n7 2 bare text
";
        let edits = parse_edit_script(script, "s.edits").unwrap();
        assert_eq!(edits.len(), 5);
        assert_eq!(edits[0].0, 2);
        assert!(matches!(
            &edits[0].1,
            Delta::SetText { text, .. } if text == "hello world"
        ));
        assert!(matches!(&edits[1].1, Delta::RemoveSubtree { .. }));
        assert!(matches!(
            &edits[2].1,
            Delta::InsertSubtree {
                position: 0,
                fragment: Fragment::Element(_),
                ..
            }
        ));
        assert!(matches!(
            &edits[3].1,
            Delta::InsertSubtree { fragment: Fragment::Attribute { name, value }, .. }
                if name == "isbn" && value == "123"
        ));
        assert!(matches!(
            &edits[4].1,
            Delta::InsertSubtree { fragment: Fragment::Text(t), .. } if t == "bare text"
        ));
    }

    #[test]
    fn malformed_edit_scripts_are_parse_errors_with_origin() {
        for (script, needle) in [
            ("frobnicate n1", "unknown edit verb"),
            ("settext", "settext expects"),
            ("remove", "remove expects"),
            ("remove n1 n2", "remove expects"),
            ("remove book", "not a node id"),
            ("settext x5 text", "not a node id"),
            ("insert n1", "insert expects"),
            ("insert n1 0", "insert expects"),
            ("insert n1 minusone <x/>", "not a child position"),
            ("insert n1 0 <unclosed", "fragment:"),
            ("insert n1 0 @=v", "empty name"),
            ("insert n1 0 @noequals", "not an attribute fragment"),
        ] {
            let err = parse_edit_script(script, "bad.edits").unwrap_err();
            assert!(
                matches!(err, Error::Parse(_)),
                "{script}: wrong kind {err:?}"
            );
            let msg = err.to_string();
            assert!(
                msg.starts_with("bad.edits:1: "),
                "{script}: missing origin in {msg}"
            );
            assert!(msg.contains(needle), "{script}: {msg}");
            assert_eq!(err.exit_code(), 2);
            assert_eq!(err.wire_code(), "parse");
        }
    }
}
