//! The shared-state / per-request boundary: [`PreparedState`] and
//! [`RequestScratch`].
//!
//! Every consumer of prepared state — the corpus runner's worker threads,
//! the resident server's connection handlers, a caller embedding the
//! library in its own service — has the same two-part shape:
//!
//! * **immutable shared state**, prepared once and read by many threads:
//!   the [`crate::CorpusBundle`] with its key index, shred plans,
//!   propagation engines and label universe;
//! * **per-request scratch**, owned by one thread and reused across its
//!   requests: a private [`LabelUniverse`] clone to intern novel document
//!   labels into, and a [`ShredScratch`] holding evaluation frontiers and
//!   the per-document `value()` memo.
//!
//! [`PreparedState`] names that boundary as a trait (shared state
//! manufactures its scratch), and [`RequestScratch`] is the scratch type
//! for a bundle.  A scratch is *derived from* a particular bundle (its
//! universe clone must agree with the bundle's compiled ids), so holders
//! of hot-swapped bundles re-derive their scratch when the published
//! epoch moves — see [`crate::SwapCell`] and the server crate.

use crate::bundle::CorpusBundle;
use xmlprop_xmltransform::ShredScratch;
use xmlprop_xmltree::{DocIndex, Document, LabelUniverse};

/// Immutable shared state that can manufacture the per-request scratch it
/// is queried with; see the module docs.
pub trait PreparedState: Send + Sync {
    /// The per-request mutable state one thread owns.
    type Scratch: Send;

    /// A fresh scratch derived from this state.
    fn scratch(&self) -> Self::Scratch;
}

impl PreparedState for CorpusBundle {
    type Scratch = RequestScratch;

    fn scratch(&self) -> RequestScratch {
        RequestScratch::for_bundle(self)
    }
}

/// One thread's mutable state for processing documents against a
/// [`CorpusBundle`], reused across all that thread's requests.
#[derive(Debug)]
pub struct RequestScratch {
    pub(crate) universe: LabelUniverse,
    pub(crate) shred: ShredScratch,
}

impl RequestScratch {
    /// A fresh scratch for `bundle`: a private clone of its label universe
    /// (ids are append-only; labels only a document uses never influence
    /// any output) plus empty shred buffers.
    pub fn for_bundle(bundle: &CorpusBundle) -> Self {
        RequestScratch {
            universe: bundle.worker_universe(),
            shred: ShredScratch::new(),
        }
    }

    /// Builds a [`DocIndex`] for `doc` against this scratch's private
    /// universe — the per-document preparation both shredding and key
    /// validation run on.
    pub fn index_document(&mut self, doc: &Document) -> DocIndex {
        DocIndex::build(doc, &mut self.universe)
    }

    /// The shred scratch, for callers driving
    /// [`xmlprop_xmltransform::ShredPlan::shred_with`] directly.
    pub fn shred_scratch(&mut self) -> &mut ShredScratch {
        &mut self.shred
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_xmlkeys::KeySet;
    use xmlprop_xmltransform::Transformation;

    #[test]
    fn prepared_state_is_object_safe_enough_for_generic_services() {
        fn scratch_of<S: PreparedState>(state: &S) -> S::Scratch {
            state.scratch()
        }
        let bundle = CorpusBundle::prepare(
            KeySet::new(),
            Transformation::parse(
                "rule book(isbn) { xb := xr//book; xi := xb/@isbn; isbn := value(xi); }",
            )
            .unwrap(),
        );
        let mut scratch = scratch_of(&bundle);
        let doc = xmlprop_xmltree::ElementBuilder::new("r").build();
        let index = scratch.index_document(&doc);
        assert_eq!(index.len(), doc.len());
    }
}
