//! Text-format loaders shared by the CLI and the server.
//!
//! Both front ends accept the same two schema inputs: a *keys file* (one
//! key per line in the paper's syntax, `#` starts a comment) and a *rules
//! file* (the transformation syntax of `xmlprop-xmltransform`).  The CLI
//! reads them from disk, the server receives them as `reload` request
//! bodies — the parsing, the empty-input rejection and the error phrasing
//! must not depend on which path the text arrived through, so this module
//! is the one copy of that logic, reporting failures as the workspace
//! [`Error`].

use crate::error::Error;
use xmlprop_xmlkeys::{KeySet, XmlKey};
use xmlprop_xmltransform::Transformation;

/// Parses a keys file: one key per line, `#` comments, blank lines
/// ignored; an input with no keys at all is rejected.  `origin` names the
/// input in errors (a path for the CLI, a body name for the server).
pub fn parse_keys_text(text: &str, origin: &str) -> Result<KeySet, Error> {
    let mut keys = KeySet::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let key = XmlKey::parse(line)
            .map_err(|e| Error::parse(&format!("{origin}:{}", lineno + 1), e))?;
        keys.add(key);
    }
    if keys.is_empty() {
        return Err(Error::parse(origin, "contains no keys"));
    }
    Ok(keys)
}

/// Parses a rules file into a [`Transformation`]; `origin` names the input
/// in errors.
pub fn parse_rules_text(text: &str, origin: &str) -> Result<Transformation, Error> {
    Transformation::parse(text).map_err(|e| Error::parse(origin, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;

    #[test]
    fn keys_files_parse_with_comments_and_report_line_numbers() {
        let keys = parse_keys_text(
            "# header\nK1: (ε, (//book, {@isbn}))  # trailing\n\nK2: (//book, (chapter, {@number}))\n",
            "keys.txt",
        )
        .unwrap();
        assert_eq!(keys.len(), 2);

        let err =
            parse_keys_text("K1: (ε, (//book, {@isbn}))\nnot a key\n", "keys.txt").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Parse);
        assert!(err.to_string().starts_with("keys.txt:2: "), "{err}");

        let err = parse_keys_text("# only comments\n", "reload.keys").unwrap_err();
        assert_eq!(err.to_string(), "reload.keys: contains no keys");
    }

    #[test]
    fn rules_files_parse_and_report_their_origin() {
        let t = parse_rules_text(
            "rule book(isbn) { xb := xr//book; xi := xb/@isbn; isbn := value(xi); }",
            "rules.txt",
        )
        .unwrap();
        assert_eq!(t.rules().len(), 1);

        let err = parse_rules_text("rule {", "rules.txt").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Parse);
        assert!(err.to_string().starts_with("rules.txt: "), "{err}");
    }
}
