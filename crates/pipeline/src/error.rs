//! The workspace error type: one enum, one exit-code table, one wire-code
//! table.
//!
//! Before this module every layer grew its own `Result<_, String>` surface
//! (the CLI assembled ad-hoc strings, [`crate::Jobs::new`] returned a bare
//! `String`, the parsers each had private error structs that callers
//! flattened with `to_string()`).  [`Error`] replaces those surfaces with a
//! single enum whose *kind* carries the classification every consumer
//! needs:
//!
//! * the CLI maps an error to its process exit code through
//!   [`ErrorKind::exit_code`] — the same table for every subcommand,
//!   including `serve`;
//! * the server's wire protocol maps an error to its `err <code> …`
//!   response line through [`ErrorKind::wire_code`] — so a scripted client
//!   session and a CLI invocation report the same failure the same way.
//!
//! The variants hold preformatted human-readable messages (the typed part
//! is the *kind*, which is what the two tables key on); the one structured
//! variant, [`Error::UnknownRelation`], keeps its fields because callers
//! render the candidate list in context.

use std::fmt;

/// The classification of an [`Error`] — the key into the exit-code and
/// wire-code tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// A malformed command line or request (wrong arity, unknown option).
    Usage,
    /// An I/O failure (unreadable file, socket error).
    Io,
    /// A parse failure in any of the input languages (documents, key
    /// files, rule files, FDs).
    Parse,
    /// An invalid worker-thread count.
    Jobs,
    /// A relation name that no rule of the transformation populates.
    UnknownRelation,
    /// A malformed or oversized wire request (server protocol framing).
    Protocol,
    /// A read/write timeout or an expired per-request deadline: the peer
    /// was too slow, not wrong.
    Timeout,
    /// The server shed the request because its connection gate stayed
    /// saturated past the bounded admission wait.
    Overloaded,
    /// An internal failure (an isolated handler panic); the service keeps
    /// running, the request does not.
    Internal,
}

impl ErrorKind {
    /// Every kind, in wire-code order (exercised by the table tests).
    pub const ALL: [ErrorKind; 9] = [
        ErrorKind::Usage,
        ErrorKind::Io,
        ErrorKind::Parse,
        ErrorKind::Jobs,
        ErrorKind::UnknownRelation,
        ErrorKind::Protocol,
        ErrorKind::Timeout,
        ErrorKind::Overloaded,
        ErrorKind::Internal,
    ];

    /// The stable `err <code> …` token the server protocol reports this
    /// kind as.
    pub fn wire_code(self) -> &'static str {
        match self {
            ErrorKind::Usage => "usage",
            ErrorKind::Io => "io",
            ErrorKind::Parse => "parse",
            ErrorKind::Jobs => "jobs",
            ErrorKind::UnknownRelation => "relation",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Internal => "internal",
        }
    }

    /// The stable process exit code the CLI maps this kind to.  Exit code
    /// 1 is *not* in this table: it reports a domain verdict (violations
    /// found, FD not propagated, files skipped), not an error.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorKind::Usage => 2,
            ErrorKind::Io => 2,
            ErrorKind::Parse => 2,
            ErrorKind::Jobs => 2,
            ErrorKind::UnknownRelation => 2,
            ErrorKind::Protocol => 2,
            ErrorKind::Timeout => 2,
            ErrorKind::Overloaded => 2,
            ErrorKind::Internal => 2,
        }
    }
}

/// The workspace error; see the module docs.  Constructed through the
/// kind-named helpers ([`Error::usage`], [`Error::io`], …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A malformed command line or request.
    Usage(String),
    /// An I/O failure, message includes the path or peer.
    Io(String),
    /// A parse failure, message includes the input's origin.
    Parse(String),
    /// An invalid worker-thread count.
    Jobs(String),
    /// A relation no rule populates, plus the known relation names.
    UnknownRelation {
        /// The relation that was asked for.
        relation: String,
        /// The relations the transformation does populate, in rule order.
        known: Vec<String>,
    },
    /// A malformed or oversized wire request.
    Protocol(String),
    /// A read/write timeout or expired request deadline.
    Timeout(String),
    /// A request shed because the server was saturated.
    Overloaded(String),
    /// An isolated internal failure (handler panic).
    Internal(String),
}

impl Error {
    /// A [`ErrorKind::Usage`] error.
    pub fn usage(message: impl Into<String>) -> Self {
        Error::Usage(message.into())
    }

    /// A [`ErrorKind::Io`] error.
    pub fn io(message: impl Into<String>) -> Self {
        Error::Io(message.into())
    }

    /// A [`ErrorKind::Io`] error for an unreadable file, in the phrasing
    /// every subcommand uses.
    pub fn read(path: &str, cause: impl fmt::Display) -> Self {
        Error::Io(format!("cannot read `{path}`: {cause}"))
    }

    /// A [`ErrorKind::Parse`] error; `origin` names the input (a path, a
    /// `path:line`, or a protocol body name).
    pub fn parse(origin: &str, cause: impl fmt::Display) -> Self {
        Error::Parse(format!("{origin}: {cause}"))
    }

    /// A [`ErrorKind::Jobs`] error.
    pub fn jobs(message: impl Into<String>) -> Self {
        Error::Jobs(message.into())
    }

    /// A [`ErrorKind::UnknownRelation`] error.
    pub fn unknown_relation(relation: impl Into<String>, known: Vec<String>) -> Self {
        Error::UnknownRelation {
            relation: relation.into(),
            known,
        }
    }

    /// A [`ErrorKind::Protocol`] error.
    pub fn protocol(message: impl Into<String>) -> Self {
        Error::Protocol(message.into())
    }

    /// A [`ErrorKind::Timeout`] error.
    pub fn timeout(message: impl Into<String>) -> Self {
        Error::Timeout(message.into())
    }

    /// A [`ErrorKind::Overloaded`] error.
    pub fn overloaded(message: impl Into<String>) -> Self {
        Error::Overloaded(message.into())
    }

    /// A [`ErrorKind::Internal`] error.
    pub fn internal(message: impl Into<String>) -> Self {
        Error::Internal(message.into())
    }

    /// Reconstructs an error from its wire form (`err <code> <message>`),
    /// the inverse of the server's response encoding.  Unknown codes fall
    /// back to [`ErrorKind::Protocol`] so a client never drops a message.
    pub fn from_wire(code: &str, message: impl Into<String>) -> Self {
        let message = message.into();
        match code {
            "usage" => Error::Usage(message),
            "io" => Error::Io(message),
            "parse" => Error::Parse(message),
            "jobs" => Error::Jobs(message),
            "timeout" => Error::Timeout(message),
            "overloaded" => Error::Overloaded(message),
            "internal" => Error::Internal(message),
            // `relation` carries structure the wire form flattened; keep
            // the flat message under the closest kind we can restore.
            _ => Error::Protocol(message),
        }
    }

    /// The error's classification.
    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::Usage(_) => ErrorKind::Usage,
            Error::Io(_) => ErrorKind::Io,
            Error::Parse(_) => ErrorKind::Parse,
            Error::Jobs(_) => ErrorKind::Jobs,
            Error::UnknownRelation { .. } => ErrorKind::UnknownRelation,
            Error::Protocol(_) => ErrorKind::Protocol,
            Error::Timeout(_) => ErrorKind::Timeout,
            Error::Overloaded(_) => ErrorKind::Overloaded,
            Error::Internal(_) => ErrorKind::Internal,
        }
    }

    /// Shorthand for `self.kind().wire_code()`.
    pub fn wire_code(&self) -> &'static str {
        self.kind().wire_code()
    }

    /// Shorthand for `self.kind().exit_code()`.
    pub fn exit_code(&self) -> u8 {
        self.kind().exit_code()
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Usage(m)
            | Error::Io(m)
            | Error::Parse(m)
            | Error::Jobs(m)
            | Error::Protocol(m)
            | Error::Timeout(m)
            | Error::Overloaded(m)
            | Error::Internal(m) => f.write_str(m),
            Error::UnknownRelation { relation, known } => {
                write!(
                    f,
                    "no rule for relation `{relation}` (known: {})",
                    known.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_has_distinct_wire_codes_and_a_stable_exit_code() {
        let codes: Vec<&str> = ErrorKind::ALL.iter().map(|k| k.wire_code()).collect();
        let mut deduped = codes.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), codes.len(), "wire codes must be unique");
        for kind in ErrorKind::ALL {
            assert_eq!(kind.exit_code(), 2, "all errors exit 2; verdicts exit 1");
        }
    }

    #[test]
    fn constructors_classify_and_display() {
        let e = Error::read("missing.xml", "No such file");
        assert_eq!(e.kind(), ErrorKind::Io);
        assert_eq!(e.to_string(), "cannot read `missing.xml`: No such file");
        assert_eq!(e.wire_code(), "io");
        assert_eq!(e.exit_code(), 2);

        let e = Error::parse("keys.txt:3", "expected `(`");
        assert_eq!(e.kind(), ErrorKind::Parse);
        assert_eq!(e.to_string(), "keys.txt:3: expected `(`");

        let e = Error::unknown_relation("nope", vec!["book".into(), "chapter".into()]);
        assert_eq!(e.kind(), ErrorKind::UnknownRelation);
        assert_eq!(
            e.to_string(),
            "no rule for relation `nope` (known: book, chapter)"
        );
        assert_eq!(e.wire_code(), "relation");

        let e = Error::protocol("body exceeds the request size limit");
        assert_eq!(e.wire_code(), "protocol");

        let e = Error::timeout("request deadline exceeded");
        assert_eq!(e.kind(), ErrorKind::Timeout);
        assert_eq!(e.wire_code(), "timeout");

        let e = Error::overloaded("server at capacity");
        assert_eq!(e.wire_code(), "overloaded");

        let e = Error::internal("request handler panicked");
        assert_eq!(e.wire_code(), "internal");

        // The trait objects the std ecosystem expects are implemented.
        let boxed: Box<dyn std::error::Error> = Box::new(Error::usage("u"));
        assert_eq!(boxed.to_string(), "u");
    }

    #[test]
    fn wire_form_round_trips_through_from_wire() {
        for kind in ErrorKind::ALL {
            if kind == ErrorKind::UnknownRelation {
                continue; // structured fields do not survive flattening
            }
            let original = match kind {
                ErrorKind::Usage => Error::usage("m"),
                ErrorKind::Io => Error::io("m"),
                ErrorKind::Parse => Error::Parse("m".into()),
                ErrorKind::Jobs => Error::jobs("m"),
                ErrorKind::Protocol => Error::protocol("m"),
                ErrorKind::Timeout => Error::timeout("m"),
                ErrorKind::Overloaded => Error::overloaded("m"),
                ErrorKind::Internal => Error::internal("m"),
                ErrorKind::UnknownRelation => unreachable!(),
            };
            let back = Error::from_wire(original.wire_code(), original.to_string());
            assert_eq!(back.kind(), kind);
            assert_eq!(back.to_string(), original.to_string());
        }
    }
}
