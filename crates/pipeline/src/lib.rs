//! # xmlprop-pipeline — the parallel corpus pipeline
//!
//! The paper's workload is corpus-shaped: *many* documents are checked
//! against *one* key set Σ, shredded through *one* transformation, under
//! *one* propagated relational design.  The per-schema preparation (compiled
//! keys, shred plans, propagation engines) is therefore done once, in a
//! shared read-only [`CorpusBundle`], and the per-document work — building a
//! [`xmlprop_xmltree::DocIndex`], shredding, collecting key violations — is
//! fanned out over scoped worker threads by [`CorpusBundle::run`].
//!
//! Design points (see the module docs of [`bundle`] and [`run`] for
//! details):
//!
//! * **scoped threads, no `'static`** — workers borrow the bundle and the
//!   corpus through [`std::thread::scope`]; an `Arc` around the bundle is
//!   only needed by callers that outlive the scope;
//! * **chunked `Mutex` cursor + `mpsc` merge** — plain `std` primitives, no
//!   external dependencies;
//! * **deterministic output** — results are merged by document index, never
//!   by completion order, and [`CorpusBundle::run_sequential`] is the
//!   reference the equivalence property tests pin `run` against
//!   bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bundle;
pub mod error;
pub mod faultline;
pub mod incremental;
pub mod run;
pub mod source;
pub mod state;
pub mod stream;
pub mod swap;

pub use bundle::{CorpusBundle, RuleCover};
pub use error::{Error, ErrorKind};
pub use faultline::{FaultAction, FaultStream, Faults};
pub use incremental::{parse_edit_script, EditReport, IncrementalDocument};
pub use run::{fan_out, CorpusOptions, CorpusResult, CorpusStats, DocOutcome, Jobs, MAX_JOBS};
pub use source::{parse_keys_text, parse_rules_text};
pub use state::{PreparedState, RequestScratch};
pub use swap::{Published, SwapCell};
