//! The corpus runner: a chunked work queue fanned out over scoped worker
//! threads, merged deterministically by document index.
//!
//! # Execution model
//!
//! * The main thread owns the corpus (`&[Document]`) and the prepared
//!   [`CorpusBundle`]; workers borrow both through
//!   [`std::thread::scope`] — no `'static` bounds, no cloning of documents.
//! * Work is handed out in **chunks of consecutive document indices**
//!   through a `Mutex<usize>` cursor (nothing fancier is needed: a grab is
//!   two integer operations under the lock, and chunking keeps the lock
//!   off the per-document fast path).  Chunks also preserve locality: a
//!   worker's `value()` memo and evaluation scratch stay warm across the
//!   documents of one chunk.
//! * Each worker owns its mutable state: one
//!   [`crate::RequestScratch`] (a private clone of the bundle's label
//!   universe — append-only ids, see [`CorpusBundle::worker_universe`] —
//!   plus shred buffers) reused across all its documents, manufactured
//!   through the [`PreparedState`] boundary.
//! * Finished documents flow back over an [`std::sync::mpsc`] channel as
//!   `(index, outcome)` pairs and are placed into a slot vector by index —
//!   the merged [`CorpusResult`] is ordered by document index, **never** by
//!   completion order, so the parallel result is bit-for-bit the sequential
//!   one ([`CorpusBundle::run_sequential`] is the oracle the equivalence
//!   property tests pin against).
//!
//! Per-document work is embarrassingly parallel (documents share no mutable
//! state), which is why the pipeline needs no locking beyond the queue
//! cursor; the corpus-level covers are document-independent and computed
//! once on the main thread.

use crate::bundle::{CorpusBundle, RuleCover};
use crate::error::Error;
use crate::state::PreparedState;
use std::num::NonZeroUsize;
use std::sync::{mpsc, Mutex};
use xmlprop_reldb::Database;
use xmlprop_xmlkeys::Violation;
use xmlprop_xmltree::Document;

/// Upper bound on worker threads: far above any plausible core count, low
/// enough that a typo'd `--jobs 10000` is rejected instead of spawning ten
/// thousand threads.
pub const MAX_JOBS: usize = 256;

/// A validated worker-thread count (`1..=`[`MAX_JOBS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jobs(NonZeroUsize);

impl Jobs {
    /// Validates a thread count.
    pub fn new(jobs: usize) -> Result<Jobs, Error> {
        match NonZeroUsize::new(jobs) {
            None => Err(Error::jobs("worker thread count must be at least 1")),
            Some(_) if jobs > MAX_JOBS => Err(Error::jobs(format!(
                "worker thread count {jobs} exceeds the maximum of {MAX_JOBS}"
            ))),
            Some(n) => Ok(Jobs(n)),
        }
    }

    /// The thread count.
    pub fn get(self) -> usize {
        self.0.get()
    }
}

impl Default for Jobs {
    fn default() -> Self {
        Jobs(NonZeroUsize::MIN)
    }
}

impl std::str::FromStr for Jobs {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let n: usize = s.parse().map_err(|_| {
            Error::jobs(format!(
                "worker thread count expects a positive integer, got `{s}`"
            ))
        })?;
        Jobs::new(n)
    }
}

/// What a corpus run computes.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusOptions {
    /// Worker threads to fan the corpus over (clamped to the corpus size).
    pub jobs: Jobs,
    /// Shred every document through the prepared plans.
    pub shred: bool,
    /// Validate every document against Σ, collecting violations.
    pub validate: bool,
    /// Compute the per-rule propagated minimum covers (document-independent;
    /// benchmarks that time pure document throughput switch this off).
    pub covers: bool,
    /// Execute shredding and validation through the event-driven streaming
    /// front end (open-binding frontiers, no `DocIndex`) instead of the
    /// prepared DOM path.  Results are bit-for-bit identical; only the
    /// execution strategy — and the peak memory profile — changes.
    pub stream: bool,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            jobs: Jobs::default(),
            shred: true,
            validate: true,
            covers: true,
            stream: false,
        }
    }
}

impl CorpusOptions {
    /// The default task set (shred + validate + covers) at a given thread
    /// count.
    pub fn with_jobs(jobs: Jobs) -> Self {
        CorpusOptions {
            jobs,
            ..CorpusOptions::default()
        }
    }
}

/// Everything computed for one document of the corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct DocOutcome {
    /// The shredded database, one relation per rule (empty when shredding
    /// is off).
    pub database: Database,
    /// All key violations, in Σ order (empty when validation is off or the
    /// document satisfies Σ).
    pub violations: Vec<Violation>,
    /// Node count of the document.
    pub nodes: usize,
    /// Total tuples shredded across all relations.
    pub tuples: usize,
    /// Peak simultaneously-open bindings/contexts held by the streaming
    /// front end while processing this document (0 on the DOM path, which
    /// materialises the whole index instead).
    pub peak_open_bindings: usize,
}

/// Corpus-level totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CorpusStats {
    /// Number of documents processed.
    pub documents: usize,
    /// Total nodes across the corpus.
    pub nodes: usize,
    /// Total tuples shredded.
    pub tuples: usize,
    /// Total key violations found.
    pub violations: usize,
    /// Number of documents with at least one violation.
    pub invalid_documents: usize,
    /// Maximum per-document [`DocOutcome::peak_open_bindings`] across the
    /// corpus (0 on the DOM path).
    pub peak_open_bindings: usize,
}

/// The merged result of a corpus run, ordered by document index.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusResult {
    /// One outcome per input document, in input order.
    pub documents: Vec<DocOutcome>,
    /// The per-rule propagated minimum covers (empty when `covers` is off).
    pub covers: Vec<RuleCover>,
    /// Corpus-level totals.
    pub stats: CorpusStats,
}

/// Chunk size for the work queue: a few chunks per worker for balance
/// without hammering the cursor lock, capped so huge corpora still
/// rebalance.
fn chunk_size(documents: usize, jobs: usize) -> usize {
    (documents / (jobs * 4)).clamp(1, 64)
}

/// The reusable fan-out scaffold: maps `work` over an indexed work list
/// across `jobs` scoped worker threads, returning results **in item
/// order** (never completion order).
///
/// This is the one copy of the chunked `Mutex<usize>` cursor + `mpsc`
/// merge machinery: [`CorpusBundle::run`] drives per-document processing
/// through it, and the CLI's batch parser reuses it for file reading and
/// parsing.  Each worker owns one `worker_state()` value for its whole
/// lifetime (scratch buffers, universe clones); `chunk` consecutive
/// indices are handed out per cursor grab (pass 1 for I/O-bound work, more
/// to amortize the lock and keep per-worker caches warm).  With one
/// effective worker the scaffold collapses to a plain in-order loop on the
/// calling thread.
pub fn fan_out<T, R, W>(
    items: &[T],
    jobs: usize,
    chunk: usize,
    worker_state: impl Fn() -> W + Sync,
    work: impl Fn(&mut W, usize, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let n = items.len();
    let jobs = jobs.clamp(1, n.max(1));
    let chunk = chunk.max(1);
    if jobs <= 1 {
        let mut state = worker_state();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| work(&mut state, i, item))
            .collect();
    }

    let cursor = Mutex::new(0usize);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let cursor = &cursor;
            let worker_state = &worker_state;
            let work = &work;
            scope.spawn(move || {
                let mut state = worker_state();
                loop {
                    let start = {
                        let mut next = cursor.lock().expect("queue cursor poisoned");
                        let start = *next;
                        *next = n.min(start + chunk);
                        start
                    };
                    if start >= n {
                        break;
                    }
                    for (offset, item) in items[start..n.min(start + chunk)].iter().enumerate() {
                        // The receiver outlives the scope; a send only
                        // fails if the main thread panicked, which the
                        // scope is about to propagate anyway.
                        let _ = tx.send((start + offset, work(&mut state, start + offset, item)));
                    }
                }
            });
        }
        // Workers hold the remaining senders; the channel closes when the
        // last one finishes its queue.
        drop(tx);
        for (index, outcome) in rx {
            slots[index] = Some(outcome);
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index is processed exactly once"))
        .collect()
}

fn merge(documents: Vec<DocOutcome>, covers: Vec<RuleCover>) -> CorpusResult {
    let mut stats = CorpusStats {
        documents: documents.len(),
        ..CorpusStats::default()
    };
    for outcome in &documents {
        stats.nodes += outcome.nodes;
        stats.tuples += outcome.tuples;
        stats.violations += outcome.violations.len();
        stats.invalid_documents += usize::from(!outcome.violations.is_empty());
        stats.peak_open_bindings = stats.peak_open_bindings.max(outcome.peak_open_bindings);
    }
    CorpusResult {
        documents,
        covers,
        stats,
    }
}

impl CorpusBundle {
    /// Processes a corpus sequentially on the calling thread — the
    /// reference semantics the parallel [`CorpusBundle::run`] is
    /// property-tested against (`options.jobs` is ignored).
    pub fn run_sequential(&self, docs: &[Document], options: &CorpusOptions) -> CorpusResult {
        let mut scratch = self.scratch();
        let documents = docs
            .iter()
            .map(|doc| self.process(doc, &mut scratch, options))
            .collect();
        let covers = if options.covers {
            self.covers()
        } else {
            Vec::new()
        };
        merge(documents, covers)
    }

    /// Processes a corpus over `options.jobs` scoped worker threads fed by
    /// a chunked work queue ([`fan_out`]), merging per-document results by
    /// document index (bit-for-bit the [`CorpusBundle::run_sequential`]
    /// result, whatever the completion order).
    pub fn run(&self, docs: &[Document], options: &CorpusOptions) -> CorpusResult {
        let n = docs.len();
        let jobs = options.jobs.get().min(n.max(1));
        if jobs <= 1 {
            return self.run_sequential(docs, options);
        }
        let documents = fan_out(
            docs,
            jobs,
            chunk_size(n, jobs),
            || self.scratch(),
            |scratch, _, doc| self.process(doc, scratch, options),
        );
        let covers = if options.covers {
            self.covers()
        } else {
            Vec::new()
        };
        merge(documents, covers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_xmlkeys::{KeySet, XmlKey};
    use xmlprop_xmltransform::Transformation;
    use xmlprop_xmltree::ElementBuilder;

    fn sample_bundle() -> CorpusBundle {
        let sigma = KeySet::from_keys(vec![
            XmlKey::parse("(ε, (//book, {@isbn}))").unwrap(),
            XmlKey::parse("(//book, (chapter, {@number}))").unwrap(),
        ]);
        let t = Transformation::parse(
            "rule book(isbn, chapter) {
                xb := xr//book;
                xi := xb/@isbn;
                xc := xb/chapter;
                xn := xc/@number;
                isbn := value(xi);
                chapter := value(xn);
            }",
        )
        .unwrap();
        CorpusBundle::new(sigma, t)
    }

    fn good_doc(isbn: &str) -> Document {
        ElementBuilder::new("r")
            .child(
                ElementBuilder::new("book")
                    .attr("isbn", isbn)
                    .child(ElementBuilder::new("chapter").attr("number", "1"))
                    .child(ElementBuilder::new("chapter").attr("number", "2")),
            )
            .build()
    }

    fn bad_doc() -> Document {
        // Two books sharing an isbn: one DuplicateKeyValue violation.
        ElementBuilder::new("r")
            .child(ElementBuilder::new("book").attr("isbn", "dup"))
            .child(ElementBuilder::new("book").attr("isbn", "dup"))
            .build()
    }

    fn corpus() -> Vec<Document> {
        (0..13)
            .map(|i| {
                if i % 4 == 3 {
                    bad_doc()
                } else {
                    good_doc(&format!("isbn-{i}"))
                }
            })
            .collect()
    }

    #[test]
    fn bundle_and_results_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        // The audit the scoped fan-out relies on: everything shared
        // (bundle, plans, indexes) and everything merged (outcomes with
        // `Arc<str>` values) crosses threads.
        assert_send_sync::<CorpusBundle>();
        assert_send_sync::<xmlprop_xmltransform::TransformationPlan>();
        assert_send_sync::<xmlprop_xmltransform::ShredPlan>();
        assert_send_sync::<xmlprop_xmlkeys::KeyIndex>();
        assert_send_sync::<xmlprop_core::PropagationEngine>();
        assert_send_sync::<xmlprop_xmltree::DocIndex>();
        assert_send_sync::<Document>();
        assert_send_sync::<xmlprop_reldb::Value>();
        assert_send_sync::<DocOutcome>();
        assert_send_sync::<CorpusResult>();
    }

    #[test]
    fn jobs_validation() {
        assert!(Jobs::new(0).is_err());
        assert!(Jobs::new(MAX_JOBS + 1).is_err());
        assert_eq!(Jobs::new(4).unwrap().get(), 4);
        assert_eq!(Jobs::default().get(), 1);
        assert_eq!("8".parse::<Jobs>().unwrap().get(), 8);
        assert!("0".parse::<Jobs>().is_err());
        assert!("x".parse::<Jobs>().is_err());
        assert!("-1".parse::<Jobs>().is_err());
    }

    #[test]
    fn parallel_matches_sequential_on_the_sample_corpus() {
        let bundle = sample_bundle();
        let docs = corpus();
        let sequential = bundle.run_sequential(&docs, &CorpusOptions::default());
        for jobs in [1usize, 2, 3, 8] {
            let options = CorpusOptions::with_jobs(Jobs::new(jobs).unwrap());
            assert_eq!(
                bundle.run(&docs, &options),
                sequential,
                "jobs = {jobs} must merge deterministically"
            );
        }
    }

    #[test]
    fn stats_and_violations_are_aggregated() {
        let bundle = sample_bundle();
        let docs = corpus();
        let result = bundle.run(&docs, &CorpusOptions::with_jobs(Jobs::new(2).unwrap()));
        assert_eq!(result.stats.documents, 13);
        assert_eq!(result.stats.invalid_documents, 3); // indices 3, 7, 11
        assert_eq!(result.stats.violations, 3);
        assert_eq!(
            result.stats.nodes,
            docs.iter().map(Document::len).sum::<usize>()
        );
        assert_eq!(
            result.stats.tuples,
            result.documents.iter().map(|d| d.tuples).sum::<usize>()
        );
        // Violations sit exactly at the bad documents, in input order.
        for (i, outcome) in result.documents.iter().enumerate() {
            assert_eq!(!outcome.violations.is_empty(), i % 4 == 3, "doc {i}");
        }
        // The cover is per-rule, document-independent.
        assert_eq!(result.covers.len(), 1);
        assert_eq!(result.covers[0].relation, "book");
        assert_eq!(result.covers[0].cover, bundle.engines()[0].minimum_cover());
    }

    #[test]
    fn task_toggles_skip_work() {
        let bundle = sample_bundle();
        let docs = corpus();
        let shred_only = CorpusOptions {
            jobs: Jobs::new(2).unwrap(),
            shred: true,
            validate: false,
            covers: false,
            stream: false,
        };
        let result = bundle.run(&docs, &shred_only);
        assert!(result.covers.is_empty());
        assert_eq!(result.stats.violations, 0);
        assert!(result.stats.tuples > 0);

        let validate_only = CorpusOptions {
            jobs: Jobs::new(2).unwrap(),
            shred: false,
            validate: true,
            covers: false,
            stream: false,
        };
        let result = bundle.run(&docs, &validate_only);
        assert_eq!(result.stats.tuples, 0);
        assert_eq!(result.stats.violations, 3);
        assert!(result.documents.iter().all(|d| d.database.is_empty()));
    }

    #[test]
    fn empty_corpus_and_empty_bundle_edge_cases() {
        let bundle = sample_bundle();
        let result = bundle.run(&[], &CorpusOptions::with_jobs(Jobs::new(8).unwrap()));
        assert_eq!(result.stats, CorpusStats::default());
        assert!(result.documents.is_empty());

        // Validation-only bundle over documents (no rules at all).
        let validation = CorpusBundle::for_validation(bundle.sigma().clone());
        let result = validation.run(&corpus(), &CorpusOptions::with_jobs(Jobs::new(2).unwrap()));
        assert_eq!(result.stats.tuples, 0);
        assert_eq!(result.stats.violations, 3);
        assert!(result.covers.is_empty());

        // Shredding-only bundle (empty Σ): nothing can be violated.
        let shredding = CorpusBundle::for_shredding(bundle.transformation().clone());
        let result = shredding.run(&corpus(), &CorpusOptions::with_jobs(Jobs::new(2).unwrap()));
        assert_eq!(result.stats.violations, 0);
        assert!(result.stats.tuples > 0);
    }

    #[test]
    fn jobs_beyond_corpus_size_degrade_gracefully() {
        let bundle = sample_bundle();
        let docs = vec![good_doc("only")];
        let wide = CorpusOptions::with_jobs(Jobs::new(64).unwrap());
        let result = bundle.run(&docs, &wide);
        assert_eq!(result, bundle.run_sequential(&docs, &wide));
        assert_eq!(result.stats.documents, 1);
    }

    #[test]
    fn fan_out_preserves_item_order_and_reuses_worker_state() {
        let items: Vec<usize> = (0..137).collect();
        for jobs in [1usize, 2, 5, 16] {
            for chunk in [1usize, 3, 64] {
                // Each worker counts how many items it processed through its
                // private state; results must come back in item order.
                let results = fan_out(
                    &items,
                    jobs,
                    chunk,
                    || 0usize,
                    |seen, i, item| {
                        *seen += 1;
                        (*item * 2, i, *seen)
                    },
                );
                assert_eq!(results.len(), items.len());
                for (i, (doubled, index, seen)) in results.iter().enumerate() {
                    assert_eq!(*doubled, items[i] * 2, "jobs={jobs} chunk={chunk}");
                    assert_eq!(*index, i);
                    assert!(*seen >= 1);
                }
                // Worker states were reused: total processed equals the
                // item count exactly (each item bumps one worker's counter).
                let max_seen = results.iter().map(|(_, _, s)| *s).max().unwrap();
                assert!(max_seen >= items.len() / jobs.max(1) / 8);
            }
        }
        // Degenerate inputs.
        assert!(fan_out(&[] as &[u8], 4, 1, || (), |_, _, b| *b).is_empty());
        assert_eq!(fan_out(&[7u8], 0, 0, || (), |_, _, b| *b), vec![7]);
    }

    #[test]
    fn chunking_covers_every_index() {
        for n in [1usize, 2, 3, 64, 65, 1000] {
            for jobs in [2usize, 4, 8] {
                let chunk = chunk_size(n, jobs);
                assert!((1..=64).contains(&chunk));
            }
        }
    }
}
