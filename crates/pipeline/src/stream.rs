//! Streaming execution of a prepared bundle: one event pass drives every
//! shred plan and the key checker at once, with no `Document` arena and no
//! `DocIndex`.
//!
//! Two entry points:
//!
//! * [`CorpusBundle::stream_text`] — the truly bounded-memory path: raw XML text
//!   through `xmlprop_xmltree::StreamParser`, peak retained state
//!   proportional to document depth plus open bindings;
//! * [`CorpusBundle::stream_document`] — replays an already-parsed
//!   [`Document`] as events, so the corpus runner ([`crate::CorpusOptions`]'s
//!   `stream` toggle) can exercise the streaming engines over in-memory
//!   corpora.
//!
//! Both produce [`DocOutcome`]s bit-for-bit equal to the prepared DOM path
//! (`database`, `violations`, `nodes`, `tuples`), plus the streaming-only
//! `peak_open_bindings` statistic.  Node-id-carrying violations match
//! because the streaming checker numbers nodes in document pre-order, which
//! is exactly the arena order of parser-built documents.

use crate::bundle::CorpusBundle;
use crate::run::{CorpusOptions, DocOutcome};
use xmlprop_reldb::Database;
use xmlprop_xmlkeys::StreamKeyChecker;
use xmlprop_xmlpath::LabelId;
use xmlprop_xmltransform::StreamShredder;
use xmlprop_xmltree::{Document, NodeId, NodeKind, ParseError, StreamEvent, StreamParser};

/// The per-document event sinks: one shredder per plan plus the key
/// checker, all fed from a single event pass.
struct StreamSinks<'a> {
    shredders: Vec<StreamShredder<'a>>,
    checker: Option<StreamKeyChecker<'a>>,
    nodes: usize,
}

impl<'a> StreamSinks<'a> {
    fn new(bundle: &'a CorpusBundle, options: &CorpusOptions) -> Self {
        let shredders = if options.shred {
            bundle
                .plan()
                .plans()
                .iter()
                .map(|plan| StreamShredder::new(plan, bundle.universe()))
                .collect()
        } else {
            Vec::new()
        };
        let checker = options
            .validate
            .then(|| StreamKeyChecker::new(bundle.keys()));
        StreamSinks {
            shredders,
            checker,
            nodes: 0,
        }
    }

    fn start_element(&mut self, label: Option<LabelId>, name: &str) {
        self.nodes += 1;
        for shredder in &mut self.shredders {
            shredder.start_element(label, name);
        }
        if let Some(checker) = self.checker.as_mut() {
            checker.start_element(label);
        }
    }

    fn attribute(&mut self, label: Option<LabelId>, name: &str, value: &str) {
        self.nodes += 1;
        for shredder in &mut self.shredders {
            shredder.attribute(label, name, value);
        }
        if let Some(checker) = self.checker.as_mut() {
            checker.attribute(label, value);
        }
    }

    fn text(&mut self, value: &str) {
        self.nodes += 1;
        for shredder in &mut self.shredders {
            shredder.text(value);
        }
        if let Some(checker) = self.checker.as_mut() {
            checker.text();
        }
    }

    fn end_element(&mut self) {
        for shredder in &mut self.shredders {
            shredder.end_element();
        }
        if let Some(checker) = self.checker.as_mut() {
            checker.end_element();
        }
    }

    fn finish(self) -> DocOutcome {
        let mut peak = 0usize;
        let mut database = Database::new();
        for shredder in self.shredders {
            peak = peak.max(shredder.peak_open_bindings());
            database.insert(shredder.finish());
        }
        let violations = match self.checker {
            Some(checker) => {
                let report = checker.finish();
                peak = peak.max(report.peak_open_contexts);
                report.all_violations()
            }
            None => Vec::new(),
        };
        let tuples = database.relations().map(|r| r.len()).sum();
        DocOutcome {
            database,
            violations,
            nodes: self.nodes,
            tuples,
            peak_open_bindings: peak,
        }
    }
}

/// A pre-order replay frame: open a node's events, or emit the close of the
/// element whose subtree just finished.
enum Replay {
    Open(NodeId),
    Close,
}

impl CorpusBundle {
    /// Streams raw XML text through the bundle's plans and keys in one
    /// parser pass — no `Document`, no `DocIndex`; peak memory is bounded
    /// by document depth plus open bindings, not document size.
    ///
    /// The outcome is bit-for-bit what parsing the text and running
    /// [`CorpusBundle::process`] would produce.
    pub fn stream_text(
        &self,
        xml: &str,
        options: &CorpusOptions,
    ) -> Result<DocOutcome, ParseError> {
        let mut parser = StreamParser::with_universe(xml, self.universe());
        let mut sinks = StreamSinks::new(self, options);
        while let Some(event) = parser.next_event()? {
            match event {
                StreamEvent::StartElement { name, label } => sinks.start_element(label, name),
                StreamEvent::Attribute { name, label, value } => {
                    sinks.attribute(label, name, &value)
                }
                StreamEvent::Text { value } => sinks.text(&value),
                StreamEvent::EndElement => sinks.end_element(),
            }
        }
        Ok(sinks.finish())
    }

    /// Streams raw XML text through the key checker only, returning the
    /// **per-key** violation report the renderers need (Σ order, grouped by
    /// key) — the streaming twin of per-key `violations_of` loops.
    pub fn stream_check(
        &self,
        xml: &str,
    ) -> Result<xmlprop_xmlkeys::StreamCheckReport, ParseError> {
        let mut parser = StreamParser::with_universe(xml, self.universe());
        let mut checker = StreamKeyChecker::new(self.keys());
        while let Some(event) = parser.next_event()? {
            match event {
                StreamEvent::StartElement { label, .. } => checker.start_element(label),
                StreamEvent::Attribute { label, value, .. } => checker.attribute(label, &value),
                StreamEvent::Text { .. } => checker.text(),
                StreamEvent::EndElement => checker.end_element(),
            }
        }
        Ok(checker.finish())
    }

    /// Streams raw XML text through the shred plans only — all of them, or
    /// the one populating `relation` (silently none when the name is
    /// unknown; callers validate names first for the shared diagnostic).
    pub fn stream_shred(&self, xml: &str, relation: Option<&str>) -> Result<Database, ParseError> {
        let mut shredders: Vec<StreamShredder> = match relation {
            Some(rel) => self
                .plan()
                .plan(rel)
                .map(|plan| StreamShredder::new(plan, self.universe()))
                .into_iter()
                .collect(),
            None => self
                .plan()
                .plans()
                .iter()
                .map(|plan| StreamShredder::new(plan, self.universe()))
                .collect(),
        };
        let mut parser = StreamParser::with_universe(xml, self.universe());
        while let Some(event) = parser.next_event()? {
            match event {
                StreamEvent::StartElement { name, label } => {
                    for shredder in &mut shredders {
                        shredder.start_element(label, name);
                    }
                }
                StreamEvent::Attribute { name, label, value } => {
                    for shredder in &mut shredders {
                        shredder.attribute(label, name, &value);
                    }
                }
                StreamEvent::Text { value } => {
                    for shredder in &mut shredders {
                        shredder.text(&value);
                    }
                }
                StreamEvent::EndElement => {
                    for shredder in &mut shredders {
                        shredder.end_element();
                    }
                }
            }
        }
        let mut database = Database::new();
        for shredder in shredders {
            database.insert(shredder.finish());
        }
        Ok(database)
    }

    /// Replays a parsed document as parse events through the streaming
    /// engines — the corpus runner's `stream` mode.  Requires the
    /// parser/builder child layout (attributes before content, ids in
    /// document order) for violation node ids to line up with the DOM path.
    pub fn stream_document(&self, doc: &Document, options: &CorpusOptions) -> DocOutcome {
        let mut sinks = StreamSinks::new(self, options);
        let universe = self.universe();
        let mut stack = vec![Replay::Open(doc.root())];
        while let Some(item) = stack.pop() {
            match item {
                Replay::Open(id) => {
                    let label = doc.label(id);
                    match doc.kind(id) {
                        NodeKind::Element => {
                            sinks.start_element(universe.lookup(label), label);
                            stack.push(Replay::Close);
                            let children: Vec<NodeId> = doc.children(id).collect();
                            for &child in children.iter().rev() {
                                stack.push(Replay::Open(child));
                            }
                        }
                        NodeKind::Attribute => sinks.attribute(
                            universe.lookup(label),
                            label.strip_prefix('@').unwrap_or(label),
                            doc.text_value(id).unwrap_or_default(),
                        ),
                        NodeKind::Text => sinks.text(doc.text_value(id).unwrap_or_default()),
                    }
                }
                Replay::Close => sinks.end_element(),
            }
        }
        sinks.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Jobs;
    use crate::source::{parse_keys_text, parse_rules_text};
    use crate::state::PreparedState;
    use xmlprop_xmltree::to_xml;

    const KEYS: &str = "K1: (ε, (//book, {@isbn}))\nK2: (//book, (chapter, {@number}))\n";
    const RULES: &str = "rule book(isbn, chapter) {
        xb := xr//book;
        xi := xb/@isbn;
        xc := xb/chapter;
        xn := xc/@number;
        isbn := value(xi);
        chapter := value(xn);
    }\n";

    fn bundle() -> CorpusBundle {
        CorpusBundle::prepare(
            parse_keys_text(KEYS, "keys").unwrap(),
            parse_rules_text(RULES, "rules").unwrap(),
        )
    }

    fn docs() -> Vec<Document> {
        [
            "<r><book isbn='1'><chapter number='1'/><chapter number='2'/></book></r>",
            "<r><book isbn='dup'/><book isbn='dup'/></r>",
            "<r><book isbn='x'><chapter number='1'/><chapter number='1'/></book>\
             <book isbn='y'/></r>",
            "<r><nothing/></r>",
        ]
        .iter()
        .map(|xml| Document::parse_str(xml).unwrap())
        .collect()
    }

    /// The DOM outcome with the streaming-only statistic blanked, for
    /// field-by-field comparison.
    fn assert_same_results(streamed: &DocOutcome, dom: &DocOutcome) {
        assert_eq!(streamed.database, dom.database);
        assert_eq!(streamed.violations, dom.violations);
        assert_eq!(streamed.nodes, dom.nodes);
        assert_eq!(streamed.tuples, dom.tuples);
    }

    #[test]
    fn stream_text_matches_the_dom_path() {
        let bundle = bundle();
        let options = CorpusOptions::default();
        let mut scratch = bundle.scratch();
        for doc in docs() {
            let dom = bundle.process(&doc, &mut scratch, &options);
            let streamed = bundle.stream_text(&to_xml(&doc), &options).unwrap();
            assert_same_results(&streamed, &dom);
        }
    }

    #[test]
    fn stream_document_matches_the_dom_path() {
        let bundle = bundle();
        let options = CorpusOptions::default();
        let mut scratch = bundle.scratch();
        for doc in docs() {
            let dom = bundle.process(&doc, &mut scratch, &options);
            let streamed = bundle.stream_document(&doc, &options);
            assert_same_results(&streamed, &dom);
        }
    }

    #[test]
    fn corpus_runner_stream_toggle_matches_dom_runs() {
        let bundle = bundle();
        let docs = docs();
        let dom = bundle.run(&docs, &CorpusOptions::default());
        let streaming = CorpusOptions {
            stream: true,
            jobs: Jobs::new(3).unwrap(),
            ..CorpusOptions::default()
        };
        let streamed = bundle.run(&docs, &streaming);
        assert_eq!(streamed.documents.len(), dom.documents.len());
        for (s, d) in streamed.documents.iter().zip(&dom.documents) {
            assert_same_results(s, d);
        }
        assert_eq!(streamed.covers, dom.covers);
        assert!(streamed.stats.peak_open_bindings > 0);
        // Parallel streaming merges deterministically, like the DOM path.
        let sequential = bundle.run_sequential(&docs, &streaming);
        assert_eq!(streamed, sequential);
    }

    #[test]
    fn stream_text_reports_parse_errors() {
        let bundle = bundle();
        let err = bundle
            .stream_text("<r><open></r>", &CorpusOptions::default())
            .unwrap_err();
        let dom = Document::parse_str("<r><open></r>").unwrap_err();
        assert_eq!(err, dom, "both front ends share one error table");
    }

    #[test]
    fn streaming_skips_work_like_the_dom_path() {
        let bundle = bundle();
        let options = CorpusOptions {
            stream: true,
            shred: false,
            validate: true,
            ..CorpusOptions::default()
        };
        let outcome = bundle
            .stream_text("<r><book isbn='1'/></r>", &options)
            .unwrap();
        assert!(outcome.database.is_empty());
        assert_eq!(outcome.tuples, 0);
        let options = CorpusOptions {
            stream: true,
            shred: true,
            validate: false,
            ..CorpusOptions::default()
        };
        let outcome = bundle
            .stream_text("<r><book isbn='dup'/><book isbn='dup'/></r>", &options)
            .unwrap();
        assert!(outcome.violations.is_empty());
        assert_eq!(outcome.tuples, 2);
    }
}
