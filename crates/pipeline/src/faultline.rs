//! `faultline` — deterministic fault injection for the service stack.
//!
//! Robustness claims ("one slow client cannot pin a thread", "a torn
//! connection mid-reload leaves the bundle consistent") are only worth
//! anything if they are *tested*, and the failures they guard against are
//! exactly the ones integration tests never produce by accident.  This
//! module provides **named fault points** with **seeded schedules**: code
//! on the request path asks [`Faults::check`] at a point (`"conn.read"`,
//! `"conn.write"`, `"accept.conn"`, `"reload.prepare"`, …) and receives
//! either `None` (proceed) or a [`FaultAction`] to suffer — an injected
//! I/O error, a partial/short write, a delay, or a torn connection.
//!
//! ## Determinism
//!
//! A schedule is compiled from a text spec plus a seed
//! ([`Faults::parse`]); whether the *n*-th check of a point fires is a pure
//! function of `(seed, point, n)`, so a chaos run is reproducible given
//! its seed and the per-point check ordering.  Clones of a [`Faults`]
//! handle share one schedule (the per-point counters travel in the shared
//! `Arc`), so every connection of a server draws from the same sequence.
//!
//! ## Zero cost when disabled
//!
//! The real machinery is compiled only under
//! `cfg(any(test, feature = "faultline"))`.  Production builds get inline
//! stubs: [`Faults::check`] is a constant `None` and [`FaultStream`] is a
//! transparent newtype, so the request path pays nothing.  There is no
//! global registry — faults are instance-scoped handles threaded through
//! [`crate::SwapCell`]-style constructors, so concurrent tests cannot
//! interfere with each other.
//!
//! ## Spec grammar
//!
//! Comma-separated `point=<percent>%<action>` clauses:
//!
//! ```text
//! conn.read=10%delay:2,conn.write=5%short:16,accept.conn=3%disconnect,reload.prepare=50%error
//! ```
//!
//! Actions: `error` (injected I/O error), `disconnect` (torn connection:
//! EOF on read, reset on write), `delay:<ms>` (sleep, then proceed),
//! `short:<bytes>` (truncate a write to at most that many bytes).

use std::time::Duration;

/// What a firing fault point inflicts on its caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail with an injected I/O error.
    Error,
    /// Tear the connection: reads see EOF, writes see a reset.
    Disconnect,
    /// Sleep for the given duration, then proceed normally.
    Delay(Duration),
    /// Truncate a write to at most this many bytes (a short write).
    ShortWrite(usize),
}

#[cfg(any(test, feature = "faultline"))]
mod imp {
    use super::FaultAction;
    use crate::error::Error;
    use std::io::{Read, Write};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// A handle on a fault schedule (or on nothing: [`Faults::disabled`]).
    /// Cloning is cheap and clones share the schedule's counters.
    #[derive(Debug, Clone, Default)]
    pub struct Faults {
        plan: Option<Arc<Plan>>,
    }

    #[derive(Debug)]
    struct Plan {
        seed: u64,
        points: Vec<Point>,
    }

    #[derive(Debug)]
    struct Point {
        name: String,
        percent: u32,
        action: FaultAction,
        /// How many times this clause has been consulted, across all
        /// clones; the firing decision hashes this index with the seed.
        count: AtomicU64,
    }

    impl Faults {
        /// A handle that never fires (the production default).
        pub fn disabled() -> Self {
            Faults { plan: None }
        }

        /// Whether this handle carries a schedule at all.
        pub fn is_active(&self) -> bool {
            self.plan.is_some()
        }

        /// Compiles a schedule from `spec` (see the module docs for the
        /// grammar) under `seed`.  An empty spec is a usage error — use
        /// [`Faults::disabled`] for "no faults".
        pub fn parse(spec: &str, seed: u64) -> Result<Faults, Error> {
            let mut points = Vec::new();
            for clause in spec.split(',') {
                let clause = clause.trim();
                if clause.is_empty() {
                    continue;
                }
                let (name, rest) = clause.split_once('=').ok_or_else(|| {
                    Error::usage(format!(
                        "fault clause `{clause}` is not `point=<percent>%<action>`"
                    ))
                })?;
                let (percent, action) = rest.split_once('%').ok_or_else(|| {
                    Error::usage(format!(
                        "fault clause `{clause}` is missing the `<percent>%` rate"
                    ))
                })?;
                let percent: u32 = percent.parse().map_err(|_| {
                    Error::usage(format!("fault clause `{clause}`: bad percent `{percent}`"))
                })?;
                if percent > 100 {
                    return Err(Error::usage(format!(
                        "fault clause `{clause}`: percent must be 0..=100"
                    )));
                }
                let action = parse_action(action)
                    .ok_or_else(|| Error::usage(format!("fault clause `{clause}`: unknown action `{action}` (error | disconnect | delay:<ms> | short:<bytes>)")))?;
                points.push(Point {
                    name: name.trim().to_string(),
                    percent,
                    action,
                    count: AtomicU64::new(0),
                });
            }
            if points.is_empty() {
                return Err(Error::usage("fault spec contains no clauses"));
            }
            Ok(Faults {
                plan: Some(Arc::new(Plan { seed, points })),
            })
        }

        /// Consults the schedule at a named point.  `None` means proceed;
        /// `Some(action)` means the caller must suffer the action.  The
        /// decision for the *n*-th consultation of a clause is a pure
        /// function of `(seed, point, n)`.
        pub fn check(&self, point: &str) -> Option<FaultAction> {
            let plan = self.plan.as_ref()?;
            for p in &plan.points {
                if p.name == point {
                    let n = p.count.fetch_add(1, Ordering::Relaxed);
                    if roll(plan.seed, &p.name, n) < u64::from(p.percent) {
                        return Some(p.action);
                    }
                }
            }
            None
        }

        /// [`Faults::check`] specialised for plain I/O call sites: sleeps
        /// through delays and converts `Error`/`Disconnect` into
        /// `io::Error`s tagged as injected.  `ShortWrite` is ignored (it
        /// only makes sense inside a `write` implementation).
        pub fn fire_io(&self, point: &str) -> std::io::Result<()> {
            match self.check(point) {
                None | Some(FaultAction::ShortWrite(_)) => Ok(()),
                Some(FaultAction::Delay(d)) => {
                    std::thread::sleep(d);
                    Ok(())
                }
                Some(FaultAction::Error) => Err(injected_error(point)),
                Some(FaultAction::Disconnect) => Err(injected_disconnect(point)),
            }
        }
    }

    fn parse_action(action: &str) -> Option<FaultAction> {
        match action {
            "error" => Some(FaultAction::Error),
            "disconnect" => Some(FaultAction::Disconnect),
            _ => {
                if let Some(ms) = action.strip_prefix("delay:") {
                    ms.parse()
                        .ok()
                        .map(|ms| FaultAction::Delay(Duration::from_millis(ms)))
                } else if let Some(n) = action.strip_prefix("short:") {
                    n.parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .map(FaultAction::ShortWrite)
                } else {
                    None
                }
            }
        }
    }

    /// An injected I/O error, recognisable by its message prefix.
    fn injected_error(point: &str) -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            format!("faultline: injected I/O error at `{point}`"),
        )
    }

    fn injected_disconnect(point: &str) -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::ConnectionAborted,
            format!("faultline: injected disconnect at `{point}`"),
        )
    }

    /// The deterministic die: a value in `0..100` for the `n`-th check of
    /// `point` under `seed` (splitmix64 over an FNV-1a point hash).
    fn roll(seed: u64, point: &str, n: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in point.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut z = seed ^ h ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) % 100
    }

    /// A `Read`/`Write` wrapper that consults two fault points around the
    /// inner stream's calls.  With a disabled handle it is a transparent
    /// passthrough.
    #[derive(Debug)]
    pub struct FaultStream<S> {
        inner: S,
        faults: Faults,
        read_point: &'static str,
        write_point: &'static str,
    }

    impl<S> FaultStream<S> {
        /// Wraps `inner`, consulting `read_point` before each read and
        /// `write_point` before each write.
        pub fn new(
            inner: S,
            faults: Faults,
            read_point: &'static str,
            write_point: &'static str,
        ) -> Self {
            FaultStream {
                inner,
                faults,
                read_point,
                write_point,
            }
        }

        /// The wrapped stream.
        pub fn get_ref(&self) -> &S {
            &self.inner
        }

        /// The wrapped stream, mutably.
        pub fn get_mut(&mut self) -> &mut S {
            &mut self.inner
        }
    }

    impl<S: Read> Read for FaultStream<S> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            match self.faults.check(self.read_point) {
                None | Some(FaultAction::ShortWrite(_)) => {}
                Some(FaultAction::Delay(d)) => std::thread::sleep(d),
                Some(FaultAction::Error) => return Err(injected_error(self.read_point)),
                // A torn connection reads as EOF — exactly what a peer
                // vanishing mid-stream looks like.
                Some(FaultAction::Disconnect) => return Ok(0),
            }
            self.inner.read(buf)
        }
    }

    impl<S: Write> Write for FaultStream<S> {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            match self.faults.check(self.write_point) {
                None => {}
                Some(FaultAction::Delay(d)) => std::thread::sleep(d),
                Some(FaultAction::Error) => return Err(injected_error(self.write_point)),
                Some(FaultAction::Disconnect) => return Err(injected_disconnect(self.write_point)),
                Some(FaultAction::ShortWrite(n)) if !buf.is_empty() => {
                    // A short write: hand fewer bytes to the inner stream
                    // and report that truncated count.  Correct callers
                    // (`write_all`) retry the remainder.
                    let n = n.min(buf.len());
                    return self.inner.write(&buf[..n]);
                }
                Some(FaultAction::ShortWrite(_)) => {}
            }
            self.inner.write(buf)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            self.inner.flush()
        }
    }
}

#[cfg(not(any(test, feature = "faultline")))]
mod imp {
    use super::FaultAction;
    use crate::error::Error;
    use std::io::{Read, Write};

    /// The zero-cost stub: no schedule can exist in this build.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Faults;

    impl Faults {
        /// A handle that never fires (the only kind in this build).
        #[inline(always)]
        pub fn disabled() -> Self {
            Faults
        }

        /// Always `false` in this build.
        #[inline(always)]
        pub fn is_active(&self) -> bool {
            false
        }

        /// Fault injection is compiled out; parsing any spec is an error.
        pub fn parse(_spec: &str, _seed: u64) -> Result<Faults, Error> {
            Err(Error::usage(
                "fault injection is not compiled in (rebuild with `--features faultline`)",
            ))
        }

        /// Always `None` in this build.
        #[inline(always)]
        pub fn check(&self, _point: &str) -> Option<FaultAction> {
            None
        }

        /// Always `Ok(())` in this build.
        #[inline(always)]
        pub fn fire_io(&self, _point: &str) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// The zero-cost stub wrapper: a transparent newtype.
    #[derive(Debug)]
    pub struct FaultStream<S> {
        inner: S,
    }

    impl<S> FaultStream<S> {
        /// Wraps `inner`; the fault parameters are ignored in this build.
        #[inline(always)]
        pub fn new(
            inner: S,
            _faults: Faults,
            _read_point: &'static str,
            _write_point: &'static str,
        ) -> Self {
            FaultStream { inner }
        }

        /// The wrapped stream.
        #[inline(always)]
        pub fn get_ref(&self) -> &S {
            &self.inner
        }

        /// The wrapped stream, mutably.
        #[inline(always)]
        pub fn get_mut(&mut self) -> &mut S {
            &mut self.inner
        }
    }

    impl<S: Read> Read for FaultStream<S> {
        #[inline(always)]
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl<S: Write> Write for FaultStream<S> {
        #[inline(always)]
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.inner.write(buf)
        }

        #[inline(always)]
        fn flush(&mut self) -> std::io::Result<()> {
            self.inner.flush()
        }
    }
}

pub use imp::{FaultStream, Faults};

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn disabled_handles_never_fire() {
        let faults = Faults::disabled();
        assert!(!faults.is_active());
        for _ in 0..1000 {
            assert_eq!(faults.check("conn.read"), None);
        }
        assert!(faults.fire_io("conn.read").is_ok());
    }

    #[test]
    fn schedules_are_deterministic_in_the_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let faults = Faults::parse("conn.read=25%error", seed).unwrap();
            (0..200)
                .map(|_| faults.check("conn.read").is_some())
                .collect()
        };
        assert_eq!(draw(7), draw(7), "same seed, same schedule");
        assert_ne!(draw(7), draw(8), "different seeds diverge");
        let hits = draw(7).iter().filter(|&&b| b).count();
        // 25% of 200 draws: loose sanity band, not a statistical test.
        assert!((20..=80).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn clones_share_one_counter_sequence() {
        let a = Faults::parse("p=50%error", 1).unwrap();
        let b = a.clone();
        let mut merged = Vec::new();
        for i in 0..100 {
            let handle = if i % 2 == 0 { &a } else { &b };
            merged.push(handle.check("p").is_some());
        }
        let solo = Faults::parse("p=50%error", 1).unwrap();
        let alone: Vec<bool> = (0..100).map(|_| solo.check("p").is_some()).collect();
        assert_eq!(merged, alone, "clones must draw from one sequence");
    }

    #[test]
    fn unknown_points_and_zero_rates_never_fire() {
        let faults = Faults::parse("conn.read=0%error", 3).unwrap();
        for _ in 0..100 {
            assert_eq!(faults.check("conn.read"), None);
            assert_eq!(faults.check("conn.write"), None);
        }
        let always = Faults::parse("p=100%disconnect", 3).unwrap();
        assert_eq!(always.check("p"), Some(FaultAction::Disconnect));
    }

    #[test]
    fn spec_parse_errors_are_usage_errors() {
        for bad in [
            "",
            "conn.read",
            "conn.read=error",
            "conn.read=150%error",
            "conn.read=x%error",
            "conn.read=10%frobnicate",
            "conn.read=10%delay:xx",
            "conn.read=10%short:0",
        ] {
            let err = Faults::parse(bad, 0).unwrap_err();
            assert_eq!(err.kind(), crate::ErrorKind::Usage, "{bad:?}");
        }
        // Delay and short parse their arguments.
        let ok = Faults::parse("a=10%delay:5, b=10%short:16", 0).unwrap();
        assert!(ok.is_active());
    }

    #[test]
    fn fault_stream_injects_reads_writes_and_short_writes() {
        // 100% rates make the stream behaviour exact, not statistical.
        let errors = Faults::parse("r=100%error", 0).unwrap();
        let mut s = FaultStream::new(std::io::Cursor::new(b"abc".to_vec()), errors, "r", "w");
        let mut buf = [0u8; 3];
        let err = s.read(&mut buf).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");

        let torn = Faults::parse("r=100%disconnect", 0).unwrap();
        let mut s = FaultStream::new(std::io::Cursor::new(b"abc".to_vec()), torn, "r", "w");
        assert_eq!(s.read(&mut buf).unwrap(), 0, "torn connection reads EOF");

        let short = Faults::parse("w=100%short:2", 0).unwrap();
        let mut s = FaultStream::new(Vec::new(), short, "r", "w");
        assert_eq!(s.write(b"abcdef").unwrap(), 2, "short write truncates");
        // write_all hides shorts by retrying — the wrapped sink still
        // receives every byte, just in pieces.
        s.write_all(b"ghij").unwrap();
        assert_eq!(&s.get_ref()[..2], b"ab");
        assert_eq!(&s.get_ref()[2..], b"ghij");

        let clean = Faults::disabled();
        let mut s = FaultStream::new(Vec::new(), clean, "r", "w");
        s.write_all(b"xyz").unwrap();
        s.flush().unwrap();
        assert_eq!(s.get_ref().as_slice(), b"xyz");
    }
}
