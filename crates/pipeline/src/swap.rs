//! The publication cell behind hot bundle swaps: prepare off-lock, then
//! publish a pointer.
//!
//! The resident server keeps one [`SwapCell`]`<`[`crate::CorpusBundle`]`>`
//! shared by every connection.  The discipline is the *write-then-publish*
//! idiom of left-right concurrency (cf. the `active_standby` crate's
//! lockless read handles over paired tables, PAPERS.md): a writer does
//! **all** preparation — parsing schema text, compiling key indexes and
//! shred plans, building propagation engines — on its own thread with no
//! lock held, and only then calls [`SwapCell::publish`], whose critical
//! section is a single `Arc` pointer store.  Readers call
//! [`SwapCell::read`] at request start and get an owned
//! `Arc<`[`Published`]`<T>>` snapshot: the value and its epoch travel in
//! *one* allocation behind *one* pointer, so a response computed from a
//! snapshot can never mix two published versions (no torn reads by
//! construction), and the reader keeps serving from its snapshot however
//! many publications happen mid-request.
//!
//! Readers therefore never wait on preparation; the only reader/writer
//! window is the pointer store itself.  (A fully lock-free cell would need
//! an atomic pointer swap, which `unsafe_code = "forbid"` rules out; an
//! `RwLock` held for a clone/store is the std-only equivalent — the
//! [`swap` tests](self) pin the liveness property, readers making progress
//! *during* a slow preparation.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A published value and the epoch it was published at.  Snapshots deref
/// to the value; [`Published::epoch`] tags responses and scratch caches.
#[derive(Debug)]
pub struct Published<T> {
    epoch: u64,
    value: T,
}

impl<T> Published<T> {
    /// The monotonically increasing publication number (the first value a
    /// cell is created with has epoch 1).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The published value.
    pub fn value(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::Deref for Published<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

/// The epoch-tagged publication cell; see the module docs.
#[derive(Debug)]
pub struct SwapCell<T> {
    current: RwLock<Arc<Published<T>>>,
    /// Mirror of the current epoch, readable without touching the lock
    /// (cheap staleness probes, `status` responses).
    epoch: AtomicU64,
}

impl<T> SwapCell<T> {
    /// Creates a cell holding `value` at epoch 1.
    pub fn new(value: T) -> Self {
        SwapCell {
            current: RwLock::new(Arc::new(Published { epoch: 1, value })),
            epoch: AtomicU64::new(1),
        }
    }

    /// An owned snapshot of the currently published value.  The read lock
    /// is held only for the `Arc` clone; the snapshot stays valid (and
    /// identical) for as long as the caller keeps it, across any number of
    /// later publications.
    pub fn read(&self) -> Arc<Published<T>> {
        Arc::clone(&self.current.read().expect("swap cell poisoned"))
    }

    /// Publishes a fully prepared `value`, returning its epoch.  The
    /// caller must finish *all* preparation before calling: the write lock
    /// is held only for a pointer store (the allocation happens before the
    /// lock), so concurrent readers are delayed by at most that store.
    pub fn publish(&self, value: T) -> u64 {
        let next = self.epoch.load(Ordering::Relaxed) + 1;
        let published = Arc::new(Published { epoch: next, value });
        let mut slot = self.current.write().expect("swap cell poisoned");
        *slot = published;
        // Publish the mirror while still holding the lock so `epoch()`
        // never runs ahead of or behind what `read()` can observe for
        // writers serialized on the lock.
        self.epoch.store(next, Ordering::Release);
        next
    }

    /// The epoch of the currently published value, without locking.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::{Duration, Instant};

    #[test]
    fn publish_bumps_the_epoch_and_readers_see_the_latest_value() {
        let cell = SwapCell::new("v1");
        assert_eq!(cell.epoch(), 1);
        let snap = cell.read();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(**snap, "v1");

        assert_eq!(cell.publish("v2"), 2);
        assert_eq!(cell.epoch(), 2);
        // The old snapshot is unchanged; a new read sees the new value.
        assert_eq!(**snap, "v1");
        let snap2 = cell.read();
        assert_eq!((snap2.epoch(), **snap2), (2, "v2"));
    }

    #[test]
    fn snapshots_pair_value_and_epoch_atomically_under_concurrent_publish() {
        // Each published value encodes its own epoch; a torn read would
        // surface as a snapshot whose value disagrees with its tag.
        let cell = Arc::new(SwapCell::new(1u64));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = cell.read();
                        assert_eq!(snap.epoch(), **snap, "torn snapshot");
                        assert!(snap.epoch() >= last, "epoch went backwards");
                        last = snap.epoch();
                    }
                });
            }
            for expected in 2..=50u64 {
                assert_eq!(cell.publish(expected), expected);
            }
            stop.store(true, Ordering::Relaxed);
        });
        assert_eq!(cell.epoch(), 50);
    }

    #[test]
    fn readers_make_progress_while_a_writer_is_still_preparing() {
        // The write-then-publish contract: preparation happens before
        // `publish`, so a slow preparation must not stall readers.  The
        // writer "prepares" for 150ms; if readers were serialized behind
        // preparation they would complete ~1 read in that window instead
        // of thousands.
        let cell = Arc::new(SwapCell::new(0u32));
        let reads = std::thread::scope(|scope| {
            let reader = {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    let start = Instant::now();
                    let mut reads = 0u64;
                    while start.elapsed() < Duration::from_millis(150) {
                        let _ = cell.read();
                        reads += 1;
                    }
                    reads
                })
            };
            let writer = {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    std::thread::sleep(Duration::from_millis(100)); // "preparing"
                    cell.publish(1);
                })
            };
            writer.join().unwrap();
            reader.join().unwrap()
        });
        assert!(
            reads > 100,
            "readers must not block on preparation, got {reads} reads"
        );
        assert_eq!(cell.epoch(), 2);
    }
}
