//! The shared, read-only preparation of a corpus run.
//!
//! Everything the paper derives from a `(Σ, transformation)` pair is
//! per-*schema*, not per-document: the compiled key index, the shred plans,
//! the propagation engines and the minimum covers they produce are the same
//! for every document of a corpus.  A [`CorpusBundle`] performs that
//! preparation exactly once and is then shared — by reference from scoped
//! worker threads, or inside an `Arc` by long-lived services — across any
//! number of documents.  Every query method takes `&self`; the bundle is
//! `Send + Sync` by construction (no interior mutability beyond the
//! `OnceLock`-cached key splits).
//!
//! The one piece of per-document state a worker needs that is *not*
//! read-only is a [`xmlprop_xmlpath::LabelUniverse`] to intern novel
//! document labels into while building a
//! [`xmlprop_xmltree::DocIndex`].  Ids are append-only, so each worker
//! clones the bundle's universe once ([`CorpusBundle::worker_universe`])
//! and extends its private copy: every label the compiled keys and plans
//! mention keeps its id in every clone, and labels only a document uses
//! never influence any output (relations hold value strings, violations
//! hold node ids and names), which is what makes the parallel run
//! bit-for-bit equal to the sequential one.

use crate::run::{CorpusOptions, DocOutcome};
use crate::state::RequestScratch;
use xmlprop_core::PropagationEngine;
use xmlprop_reldb::{Database, Fd};
use xmlprop_xmlkeys::{KeyIndex, KeySet};
use xmlprop_xmlpath::LabelUniverse;
use xmlprop_xmltransform::{Transformation, TransformationPlan};
use xmlprop_xmltree::Document;

/// One rule's propagated minimum cover, by relation name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleCover {
    /// The relation the rule populates.
    pub relation: String,
    /// The minimum cover of the FDs propagated onto it.
    pub cover: Vec<Fd>,
}

/// The prepared, shareable form of a `(Σ, transformation)` pair; see the
/// module docs.
#[derive(Debug, Clone)]
pub struct CorpusBundle {
    sigma: KeySet,
    transformation: Transformation,
    keys: KeyIndex,
    universe: LabelUniverse,
    plan: TransformationPlan,
    engines: Vec<PropagationEngine>,
}

impl CorpusBundle {
    /// Prepares a key set and a transformation for corpus-scale reuse:
    /// compiles Σ into a [`KeyIndex`], every rule into a [`TransformationPlan`]
    /// against one shared label universe, and one [`PropagationEngine`] per
    /// rule.
    pub fn new(sigma: KeySet, transformation: Transformation) -> Self {
        let keys = sigma.prepare();
        // The plan's universe *extends* the key index's universe, so one
        // `DocIndex` per document serves both shredding and validation.
        let mut universe = keys.universe().clone();
        let plan = transformation.prepare(&mut universe);
        let engines = transformation
            .rules()
            .iter()
            .map(|rule| PropagationEngine::new(&sigma, rule))
            .collect();
        CorpusBundle {
            sigma,
            transformation,
            keys,
            universe,
            plan,
            engines,
        }
    }

    /// The `prepare`-shaped constructor, matching
    /// [`xmlprop_xmlkeys::KeySet::prepare`],
    /// [`xmlprop_xmltransform::Transformation::prepare`] and
    /// [`PropagationEngine::prepare`]: every compiled layer spells its
    /// one-time preparation the same way.  Identical to
    /// [`CorpusBundle::new`].
    pub fn prepare(sigma: KeySet, transformation: Transformation) -> Self {
        CorpusBundle::new(sigma, transformation)
    }

    /// A validation-only bundle (no transformation): batch key checking.
    pub fn for_validation(sigma: KeySet) -> Self {
        CorpusBundle::new(sigma, Transformation::new(Vec::new()))
    }

    /// A shredding-only bundle (empty Σ): batch document-to-relations
    /// mapping.
    pub fn for_shredding(transformation: Transformation) -> Self {
        CorpusBundle::new(KeySet::new(), transformation)
    }

    /// The key set Σ the bundle was prepared from.
    pub fn sigma(&self) -> &KeySet {
        &self.sigma
    }

    /// The transformation the bundle was prepared from.
    pub fn transformation(&self) -> &Transformation {
        &self.transformation
    }

    /// The prepared key index (compiled paths, assured-attribute index).
    pub fn keys(&self) -> &KeyIndex {
        &self.keys
    }

    /// The prepared shred plans, in rule order.
    pub fn plan(&self) -> &TransformationPlan {
        &self.plan
    }

    /// The propagation engines, in rule order.
    pub fn engines(&self) -> &[PropagationEngine] {
        &self.engines
    }

    /// The shared label universe the keys and plans are compiled against.
    pub fn universe(&self) -> &LabelUniverse {
        &self.universe
    }

    /// A private copy of the shared universe for one worker thread to
    /// extend while indexing documents (ids are append-only; see the module
    /// docs for why clones do not affect outputs).
    pub fn worker_universe(&self) -> LabelUniverse {
        self.universe.clone()
    }

    /// Processes one document against the bundle's prepared state: builds
    /// a [`xmlprop_xmltree::DocIndex`] in the scratch's private universe,
    /// then shreds and/or validates per `options`.  This is the
    /// per-request unit both the corpus runner's workers and the resident
    /// server's connection handlers drive; everything touched through
    /// `&self` is read-only, everything mutable lives in `scratch`.
    pub fn process(
        &self,
        doc: &Document,
        scratch: &mut RequestScratch,
        options: &CorpusOptions,
    ) -> DocOutcome {
        if !options.shred && !options.validate {
            // Covers are document-independent; with both per-document tasks
            // off there is nothing to index.
            return DocOutcome {
                database: Database::new(),
                violations: Vec::new(),
                nodes: doc.len(),
                tuples: 0,
                peak_open_bindings: 0,
            };
        }
        if options.stream {
            return self.stream_document(doc, options);
        }
        let index = scratch.index_document(doc);
        let mut database = Database::new();
        if options.shred {
            // The value() memo is per-document; evaluation buffers survive.
            scratch.shred.reset();
            for plan in self.plan.plans() {
                database.insert(plan.shred_with(doc, &index, &mut scratch.shred));
            }
        }
        let violations = if options.validate {
            self.keys.violations(doc, &index)
        } else {
            Vec::new()
        };
        let tuples = database.relations().map(|r| r.len()).sum();
        DocOutcome {
            database,
            violations,
            nodes: doc.len(),
            tuples,
            peak_open_bindings: 0,
        }
    }

    /// The propagated minimum cover of every rule, in rule order — the
    /// corpus-level (document-independent) output of the paper's
    /// `minimumCover` algorithm.
    pub fn covers(&self) -> Vec<RuleCover> {
        self.engines
            .iter()
            .map(|engine| RuleCover {
                relation: engine.rule().schema().name().to_string(),
                cover: engine.minimum_cover(),
            })
            .collect()
    }
}
