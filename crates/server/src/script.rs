//! The scripted session driver behind `xmlprop-cli serve --script`.
//!
//! A script file is one request per line; `#` starts a comment.  Document
//! and schema bodies come from files named with an `@` prefix, resolved
//! relative to the script's directory:
//!
//! ```text
//! ping
//! status
//! validate @fig1.xml
//! shred @fig1.xml chapter
//! query @fig1.xml select chapter.name from chapter
//! propagate chapter inBook, number -> name
//! cover chapter
//! reload @keys2.txt @rules2.txt
//! quit
//! ```
//!
//! The driver connects, echoes each script line as `>> <line>`, and prints
//! every response verbatim (header, payload, `.` terminator), preceded by
//! the server greeting — a fully deterministic transcript that CI diffs
//! against a golden file.

use crate::client::Client;
use crate::protocol::Request;
use std::fs;
use std::io::Write;
use std::net::ToSocketAddrs;
use std::path::Path;
use xmlprop_pipeline::Error;

/// One script line: the text to echo and the request it encodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptStep {
    /// The trimmed script line, echoed as `>> <line>` in the transcript.
    pub line: String,
    /// The request the line encodes.
    pub request: Request,
}

/// Parses a script; `@file` references are read relative to `base`.
pub fn parse_script(text: &str, base: &Path) -> Result<Vec<ScriptStep>, Error> {
    let mut steps = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let request = parse_line(line, base)
            .map_err(|e| Error::usage(format!("script line {}: {e}", lineno + 1)))?;
        steps.push(ScriptStep {
            line: line.to_string(),
            request,
        });
    }
    if steps.is_empty() {
        return Err(Error::usage("script contains no requests"));
    }
    Ok(steps)
}

fn parse_line(line: &str, base: &Path) -> Result<Request, Error> {
    let mut parts = line.split_whitespace();
    let verb = parts.next().expect("non-empty line has a first token");
    match verb {
        "ping" => Ok(Request::Ping),
        "status" => Ok(Request::Status),
        "quit" => Ok(Request::Quit),
        "validate" => Ok(Request::Validate {
            document: file_arg(parts.next(), base, "validate expects `@document.xml`")?,
        }),
        "shred" => Ok(Request::Shred {
            document: file_arg(
                parts.next(),
                base,
                "shred expects `@document.xml [relation]`",
            )?,
            relation: parts.next().map(str::to_string),
        }),
        "propagate" => {
            let relation = parts
                .next()
                .ok_or_else(|| Error::usage("propagate expects `<relation> <fd>`"))?
                .to_string();
            let fd: Vec<&str> = parts.collect();
            if fd.is_empty() {
                return Err(Error::usage("propagate expects an FD after the relation"));
            }
            Ok(Request::Propagate {
                relation,
                fd: fd.join(" "),
            })
        }
        "cover" => Ok(Request::Cover {
            relation: parts.next().map(str::to_string),
        }),
        "query" => {
            let document = file_arg(
                parts.next(),
                base,
                "query expects `@document.xml <query text>`",
            )?;
            let text: Vec<&str> = parts.collect();
            if text.is_empty() {
                return Err(Error::usage(
                    "query expects the query text after the document",
                ));
            }
            Ok(Request::Query {
                document,
                query: text.join(" "),
            })
        }
        "reload" => Ok(Request::Reload {
            keys: file_arg(parts.next(), base, "reload expects `@keys.txt @rules.txt`")?,
            rules: file_arg(parts.next(), base, "reload expects `@keys.txt @rules.txt`")?,
        }),
        other => Err(Error::usage(format!("unknown script verb `{other}`"))),
    }
}

fn file_arg(token: Option<&str>, base: &Path, usage: &str) -> Result<String, Error> {
    let token = token.ok_or_else(|| Error::usage(usage))?;
    let name = token
        .strip_prefix('@')
        .ok_or_else(|| Error::usage(format!("{usage} (file arguments start with `@`)")))?;
    let path = base.join(name);
    fs::read_to_string(&path).map_err(|e| Error::read(&path.display().to_string(), e))
}

/// Runs a parsed script against a live server, writing the transcript
/// (greeting, echoed lines, verbatim responses) to `out`.  Stops after a
/// `quit` step even if more lines follow.
pub fn run_script(
    addr: impl ToSocketAddrs,
    steps: &[ScriptStep],
    out: &mut impl Write,
) -> Result<(), Error> {
    let mut client = Client::connect(addr)?;
    writeln!(out, "{}", client.greeting())
        .map_err(|e| Error::io(format!("writing transcript: {e}")))?;
    for step in steps {
        writeln!(out, ">> {}", step.line)
            .map_err(|e| Error::io(format!("writing transcript: {e}")))?;
        let response = client.send(&step.request)?;
        response
            .write_to(out)
            .map_err(|e| Error::io(format!("writing transcript: {e}")))?;
        if step.request == Request::Quit {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_parse_inline_verbs_without_touching_disk() {
        let steps = parse_script(
            "# session\nping\nstatus\npropagate chapter inBook, number -> name\ncover chapter\nquit\n",
            Path::new("/nonexistent"),
        )
        .unwrap();
        assert_eq!(steps.len(), 5);
        assert_eq!(steps[0].request, Request::Ping);
        assert_eq!(
            steps[2].request,
            Request::Propagate {
                relation: "chapter".into(),
                fd: "inBook, number -> name".into(),
            }
        );
        assert_eq!(steps[4].request, Request::Quit);
    }

    #[test]
    fn query_lines_join_the_tail_into_one_query_text() {
        let dir = std::env::temp_dir().join(format!("xmlprop-script-query-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("doc.xml"), "<db/>").unwrap();
        let steps = parse_script(
            "query @doc.xml select name from chapter where name = 'Intro'\n",
            &dir,
        )
        .unwrap();
        assert_eq!(
            steps[0].request,
            Request::Query {
                document: "<db/>".into(),
                query: "select name from chapter where name = 'Intro'".into(),
            }
        );
        let err = parse_script("query @doc.xml\n", &dir).unwrap_err();
        assert!(err.to_string().contains("query text"), "got: {err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_script_files_report_the_resolved_path() {
        let err = parse_script("validate @missing.xml\n", Path::new("/nonexistent")).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("script line 1"), "got: {text}");
        assert!(text.contains("/nonexistent/missing.xml"), "got: {text}");
    }

    #[test]
    fn empty_scripts_are_usage_errors() {
        let err = parse_script("# only comments\n\n", Path::new(".")).unwrap_err();
        assert!(err.to_string().contains("no requests"));
    }
}
