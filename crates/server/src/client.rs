//! A blocking client for the `xmlprop/1` protocol — what the CLI's script
//! driver, the swap-under-load tests and CI sessions speak through.
//!
//! The client participates in the service's degradation story:
//!
//! * **connect** is bounded by [`ClientConfig::connect_timeout`]
//!   ([`TcpStream::connect_timeout`], never an indefinite block) and a
//!   server that sheds the connection with an `err overloaded` greeting
//!   line surfaces as a typed [`Error`] through the shared wire-code
//!   table;
//! * **send** retries *read-only* verbs ([`Request::is_read_only`]) over
//!   a fresh connection with bounded exponential backoff when the
//!   transport fails or the server sheds — torn connections under fault
//!   injection heal transparently.  `reload` and `quit` are never
//!   retried: a retry could apply a reload twice (epochs would tick
//!   twice) or kill a session the caller still holds.

use crate::protocol::{Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use xmlprop_pipeline::{Error, ErrorKind};

/// The client's timeout and retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Longest a single connection attempt may block.
    pub connect_timeout: Duration,
    /// Reconnect-and-retry attempts for a failed read-only request.
    pub retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            retries: 3,
            backoff: Duration::from_millis(25),
        }
    }
}

/// One connected session: greeting consumed, ready to send requests.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    greeting: String,
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
}

impl Client {
    /// Connects to a server under the default [`ClientConfig`] and reads
    /// the greeting line.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, Error> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// [`Client::connect`] with an explicit timeout/retry policy.
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Client, Error> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| Error::io(format!("cannot resolve server address: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(Error::io("server address resolved to nothing"));
        }
        Client::open(addrs, config)
    }

    fn open(addrs: Vec<SocketAddr>, config: ClientConfig) -> Result<Client, Error> {
        let mut last: Option<std::io::Error> = None;
        let mut connected = None;
        for addr in &addrs {
            // Bounded connect: a black-holed address fails here instead of
            // pinning the caller on the platform's (minutes-long) default.
            match TcpStream::connect_timeout(addr, config.connect_timeout) {
                Ok(stream) => {
                    connected = Some(stream);
                    break;
                }
                Err(e) => last = Some(e),
            }
        }
        let writer = connected.ok_or_else(|| {
            let cause = last.expect("no success implies at least one failure");
            Error::io(format!("cannot connect to server: {cause}"))
        })?;
        let reader = writer
            .try_clone()
            .map_err(|e| Error::io(format!("cannot clone connection: {e}")))?;
        let mut reader = BufReader::new(reader);
        let mut greeting = String::new();
        let n = reader
            .read_line(&mut greeting)
            .map_err(|e| Error::io(format!("reading greeting: {e}")))?;
        // No newline means the connection died mid-greeting: a truncated
        // line must never pass for a complete one.
        if n == 0 || !greeting.ends_with('\n') {
            return Err(Error::io(
                "server closed the connection during the greeting",
            ));
        }
        let greeting = greeting.trim_end_matches(['\r', '\n']).to_string();
        // A shed connection answers with an error line in greeting
        // position; reconstruct the typed error so callers (and the retry
        // loop) classify it through the one wire-code table.
        if let Some(rest) = greeting.strip_prefix("err ") {
            let (code, message) = rest.split_once(' ').unwrap_or((rest, ""));
            return Err(Error::from_wire(code, message));
        }
        if !greeting.starts_with("xmlprop/") {
            return Err(Error::protocol(format!("unexpected greeting `{greeting}`")));
        }
        Ok(Client {
            reader,
            writer,
            greeting,
            addrs,
            config,
        })
    }

    /// The server's greeting line (protocol version, epoch, counts).
    pub fn greeting(&self) -> &str {
        &self.greeting
    }

    /// Sends one request and reads its response.  Transport failures and
    /// shed connections on a *read-only* request are retried over a fresh
    /// connection with exponential backoff (`backoff`, `2·backoff`, …, up
    /// to [`ClientConfig::retries`] attempts); `reload` and `quit` fail
    /// fast — retrying them could double-apply a publish or tear down a
    /// session twice.
    pub fn send(&mut self, request: &Request) -> Result<Response, Error> {
        let mut error = match self.send_once(request) {
            Ok(response) => return Ok(response),
            Err(e) => e,
        };
        if !request.is_read_only() {
            return Err(error);
        }
        for attempt in 0..self.config.retries {
            if !retryable(&error) {
                return Err(error);
            }
            std::thread::sleep(self.config.backoff * 2u32.saturating_pow(attempt));
            error = match self.reconnect().and_then(|()| self.send_once(request)) {
                Ok(response) => return Ok(response),
                Err(e) => e,
            };
        }
        Err(error)
    }

    fn send_once(&mut self, request: &Request) -> Result<Response, Error> {
        request
            .write_to(&mut self.writer)
            .and_then(|()| self.writer.flush())
            .map_err(|e| Error::io(format!("sending request: {e}")))?;
        Response::read_from(&mut self.reader)?
            // EOF where a response belongs is a transport failure (the
            // connection died), not a protocol violation — `io`, so the
            // read-only retry path can heal it.
            .ok_or_else(|| Error::io("server closed the connection before responding"))
    }

    /// Replaces this session with a fresh connection to the same address.
    fn reconnect(&mut self) -> Result<(), Error> {
        let fresh = Client::open(self.addrs.clone(), self.config)?;
        *self = fresh;
        Ok(())
    }
}

/// Whether a failure is worth a reconnect: transport errors (torn or
/// refused connections, timeouts) and shed connections are; everything
/// else — protocol violations, server-side request errors — is not.
fn retryable(error: &Error) -> bool {
    matches!(
        error.kind(),
        ErrorKind::Io | ErrorKind::Timeout | ErrorKind::Overloaded
    )
}
