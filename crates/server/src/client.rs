//! A minimal blocking client for the `xmlprop/1` protocol — what the CLI's
//! script driver, the swap-under-load tests and CI sessions speak through.

use crate::protocol::{Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use xmlprop_pipeline::Error;

/// One connected session: greeting consumed, ready to send requests.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    greeting: String,
}

impl Client {
    /// Connects to a server and reads the greeting line.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, Error> {
        let writer = TcpStream::connect(addr)
            .map_err(|e| Error::io(format!("cannot connect to server: {e}")))?;
        let reader = writer
            .try_clone()
            .map_err(|e| Error::io(format!("cannot clone connection: {e}")))?;
        let mut reader = BufReader::new(reader);
        let mut greeting = String::new();
        reader
            .read_line(&mut greeting)
            .map_err(|e| Error::io(format!("reading greeting: {e}")))?;
        let greeting = greeting.trim_end_matches(['\r', '\n']).to_string();
        if !greeting.starts_with("xmlprop/") {
            return Err(Error::protocol(format!("unexpected greeting `{greeting}`")));
        }
        Ok(Client {
            reader,
            writer,
            greeting,
        })
    }

    /// The server's greeting line (protocol version, epoch, counts).
    pub fn greeting(&self) -> &str {
        &self.greeting
    }

    /// Sends one request and reads its response.
    pub fn send(&mut self, request: &Request) -> Result<Response, Error> {
        request
            .write_to(&mut self.writer)
            .and_then(|()| self.writer.flush())
            .map_err(|e| Error::io(format!("sending request: {e}")))?;
        Response::read_from(&mut self.reader)?
            .ok_or_else(|| Error::protocol("server closed the connection before responding"))
    }
}
