//! The versioned plain-text line protocol — `xmlprop/1`.
//!
//! The protocol is deliberately *goldenable*: every byte a server writes is
//! deterministic given the request stream and the published bundle, so CI
//! can diff whole session transcripts against checked-in expectations.
//!
//! ## Grammar
//!
//! On connect the server greets with one line:
//!
//! ```text
//! xmlprop/1 ready bundle=<epoch> keys=<count> rules=<count>
//! ```
//!
//! Requests are one header line each; document and schema bodies are
//! **length-framed** (byte counts in the header, raw bytes following the
//! newline) so XML never needs escaping:
//!
//! ```text
//! ping
//! status
//! validate <len>\n<len bytes of XML>
//! shred <len>\n<len bytes of XML>
//! shred <len> <relation>\n<len bytes of XML>
//! propagate <relation> <fd text…>
//! cover
//! cover <relation>
//! query <len> <query text…>\n<len bytes of XML>
//! reload <keys-len> <rules-len>\n<keys bytes><rules bytes>
//! quit
//! ```
//!
//! Test builds (and builds with the `faultline` feature) additionally
//! accept a `boom` verb whose handler panics — the end-to-end probe for
//! the server's panic-isolation path.  Release servers reject it as an
//! unknown verb.
//!
//! Responses are a header line, a payload, and a terminating `.` line:
//!
//! ```text
//! ok <verb> bundle=<epoch> [k=v …]\n<payload lines…>\n.\n
//! err <wire-code> <message>\n.\n
//! ```
//!
//! Every `ok` header carries the `bundle=<epoch>` tag of the snapshot that
//! served it, which is what the swap-under-load tests key on.  Error wire
//! codes come from [`ErrorKind::wire_code`](xmlprop_pipeline::ErrorKind::wire_code) — the same table the CLI maps
//! to exit codes, so a scripted session and a one-shot invocation classify
//! failures identically.  Payload lines never consist of a lone `.` (no
//! renderer emits one), so the terminator is unambiguous.

use std::io::{BufRead, Write};
use xmlprop_pipeline::Error;

/// The protocol version spoken by this crate (the `1` of `xmlprop/1`).
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on any length-framed body, before allocation.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; the response carries the current bundle epoch.
    Ping,
    /// Bundle status: epoch, key count, rule count, worker gate width.
    Status,
    /// Validate an XML document against the published key set.
    Validate {
        /// The document text.
        document: String,
    },
    /// Shred an XML document through the published transformation.
    Shred {
        /// The document text.
        document: String,
        /// Restrict output to one relation (`None` = all rules).
        relation: Option<String>,
    },
    /// Decide FD propagation for one relation.
    Propagate {
        /// The relation whose rule is queried.
        relation: String,
        /// The FD in `X -> A` syntax.
        fd: String,
    },
    /// The propagated minimum cover of one relation (or all of them).
    Cover {
        /// The relation to cover (`None` = every rule).
        relation: Option<String>,
    },
    /// Run a query over the shredded image of an XML document.  The query
    /// text is the rest of the header line (the language is
    /// whitespace-insensitive, so token-joining on read is lossless); the
    /// document is length-framed like `validate`'s.
    Query {
        /// The document text.
        document: String,
        /// The query text (`select … from … [join …] [where …]`).
        query: String,
    },
    /// Admin: rebuild the bundle from new keys/rules text and publish it.
    Reload {
        /// The keys file text (same syntax as the CLI's `<keys.txt>`).
        keys: String,
        /// The rules file text (same syntax as the CLI's `<rules.txt>`).
        rules: String,
    },
    /// Close the session (the server responds, then hangs up).
    Quit,
    /// Test-only: panic inside the request handler.  Exists so the
    /// panic-isolation path (`err internal`, `panics=` counter, connection
    /// keeps serving) can be driven end-to-end over the wire; compiled only
    /// in test builds and under the `faultline` feature.
    #[cfg(any(test, feature = "faultline"))]
    Boom,
}

impl Request {
    /// The verb echoed in `ok <verb>` response headers.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Status => "status",
            Request::Validate { .. } => "validate",
            Request::Shred { .. } => "shred",
            Request::Propagate { .. } => "propagate",
            Request::Cover { .. } => "cover",
            Request::Query { .. } => "query",
            Request::Reload { .. } => "reload",
            Request::Quit => "quit",
            #[cfg(any(test, feature = "faultline"))]
            Request::Boom => "boom",
        }
    }

    /// Whether this request only reads published state.  Read-only verbs
    /// are safe to retry on a fresh connection after a transport failure;
    /// `reload` (publishes) and `quit` (terminates) are not — the client's
    /// retry loop keys on this.
    pub fn is_read_only(&self) -> bool {
        match self {
            Request::Reload { .. } | Request::Quit => false,
            #[cfg(any(test, feature = "faultline"))]
            Request::Boom => false,
            _ => true,
        }
    }

    /// Encodes the request onto `w` in wire form (header line + framed
    /// bodies).
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        match self {
            Request::Ping => writeln!(w, "ping"),
            Request::Status => writeln!(w, "status"),
            Request::Validate { document } => {
                writeln!(w, "validate {}", document.len())?;
                w.write_all(document.as_bytes())
            }
            Request::Shred { document, relation } => {
                match relation {
                    Some(rel) => writeln!(w, "shred {} {rel}", document.len())?,
                    None => writeln!(w, "shred {}", document.len())?,
                }
                w.write_all(document.as_bytes())
            }
            Request::Propagate { relation, fd } => writeln!(w, "propagate {relation} {fd}"),
            Request::Cover { relation } => match relation {
                Some(rel) => writeln!(w, "cover {rel}"),
                None => writeln!(w, "cover"),
            },
            Request::Query { document, query } => {
                writeln!(w, "query {} {query}", document.len())?;
                w.write_all(document.as_bytes())
            }
            Request::Reload { keys, rules } => {
                writeln!(w, "reload {} {}", keys.len(), rules.len())?;
                w.write_all(keys.as_bytes())?;
                w.write_all(rules.as_bytes())
            }
            Request::Quit => writeln!(w, "quit"),
            #[cfg(any(test, feature = "faultline"))]
            Request::Boom => writeln!(w, "boom"),
        }
    }

    /// Reads the next request from `r`.  Returns `Ok(None)` on a clean EOF
    /// before any header byte; blank lines between requests are skipped.
    /// A header line truncated by EOF is a torn connection, never a
    /// parseable request — `cover U` cut to `cover ` must not silently
    /// become the all-relations query.
    pub fn read_from(r: &mut impl BufRead) -> Result<Option<Request>, Error> {
        let line = loop {
            let Some(trimmed) = read_terminated_line(r, "reading request header")? else {
                return Ok(None);
            };
            if !trimmed.is_empty() {
                break trimmed;
            }
        };
        let mut parts = line.split_whitespace();
        let verb = parts.next().expect("non-empty line has a first token");
        match verb {
            "ping" => Ok(Some(Request::Ping)),
            "status" => Ok(Some(Request::Status)),
            "quit" => Ok(Some(Request::Quit)),
            #[cfg(any(test, feature = "faultline"))]
            "boom" => Ok(Some(Request::Boom)),
            "validate" => {
                let len = parse_len(parts.next(), "validate")?;
                let document = read_body(r, len, "validate document")?;
                Ok(Some(Request::Validate { document }))
            }
            "shred" => {
                let len = parse_len(parts.next(), "shred")?;
                let relation = parts.next().map(str::to_string);
                let document = read_body(r, len, "shred document")?;
                Ok(Some(Request::Shred { document, relation }))
            }
            "propagate" => {
                let relation = parts
                    .next()
                    .ok_or_else(|| Error::protocol("propagate expects `<relation> <fd>`"))?
                    .to_string();
                let fd: Vec<&str> = parts.collect();
                if fd.is_empty() {
                    return Err(Error::protocol(
                        "propagate expects an FD after the relation",
                    ));
                }
                Ok(Some(Request::Propagate {
                    relation,
                    fd: fd.join(" "),
                }))
            }
            "cover" => Ok(Some(Request::Cover {
                relation: parts.next().map(str::to_string),
            })),
            "query" => {
                let len = parse_len(parts.next(), "query")?;
                let query: Vec<&str> = parts.collect();
                if query.is_empty() {
                    return Err(Error::protocol(
                        "query expects the query text after the body length",
                    ));
                }
                let document = read_body(r, len, "query document")?;
                Ok(Some(Request::Query {
                    document,
                    query: query.join(" "),
                }))
            }
            "reload" => {
                let keys_len = parse_len(parts.next(), "reload")?;
                let rules_len = parse_len(parts.next(), "reload")?;
                let keys = read_body(r, keys_len, "reload keys")?;
                let rules = read_body(r, rules_len, "reload rules")?;
                Ok(Some(Request::Reload { keys, rules }))
            }
            other => Err(Error::protocol(format!("unknown request verb `{other}`"))),
        }
    }
}

/// Parses a decimal body length out of a request header token.
fn parse_len(token: Option<&str>, verb: &str) -> Result<usize, Error> {
    let token =
        token.ok_or_else(|| Error::protocol(format!("{verb} expects a body byte length")))?;
    let len: usize = token
        .parse()
        .map_err(|_| Error::protocol(format!("{verb}: invalid body length `{token}`")))?;
    if len > MAX_BODY_BYTES {
        return Err(Error::protocol(format!(
            "{verb}: body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    Ok(len)
}

/// Reads an exact-length UTF-8 body following a request header.
fn read_body(r: &mut impl BufRead, len: usize, what: &str) -> Result<String, Error> {
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).map_err(|e| {
        if is_timeout(&e) {
            Error::timeout(format!("reading {what} body ({len} bytes): {e}"))
        } else {
            Error::protocol(format!("reading {what} body ({len} bytes): {e}"))
        }
    })?;
    String::from_utf8(buf).map_err(|_| Error::protocol(format!("{what} body is not valid UTF-8")))
}

/// Reads one protocol line, requiring its terminating newline.  `None` is
/// a clean EOF before any byte; a line truncated mid-way by EOF is a torn
/// transport — surfaced as `io` so retry layers treat it like any other
/// connection death, and so a line prefix can never be mistaken for a
/// complete (but different) message.
fn read_terminated_line(r: &mut impl BufRead, context: &str) -> Result<Option<String>, Error> {
    let mut line = String::new();
    let n = r
        .read_line(&mut line)
        .map_err(|e| classify_io(context, &e))?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') {
        return Err(Error::io(format!("{context}: connection closed mid-line")));
    }
    Ok(Some(line.trim_end_matches(['\r', '\n']).to_string()))
}

/// Whether an I/O error is a read/write timeout (the platform reports
/// socket timeouts as either kind).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    )
}

/// Classifies a transport-level I/O failure: timeouts become
/// [`ErrorKind::Timeout`](xmlprop_pipeline::ErrorKind::Timeout) (the peer
/// was too slow), everything else stays [`ErrorKind::Io`](xmlprop_pipeline::ErrorKind::Io).
fn classify_io(context: &str, e: &std::io::Error) -> Error {
    if is_timeout(e) {
        Error::timeout(format!("{context}: {e}"))
    } else {
        Error::io(format!("{context}: {e}"))
    }
}

/// A server response: one header line plus a (possibly empty) payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The full header line (`ok …` or `err …`), without the newline.
    pub header: String,
    /// The payload text; empty or newline-terminated.
    pub payload: String,
}

impl Response {
    /// An `ok` response for `verb` served by bundle epoch `epoch`.
    /// `extra` holds additional `k=v` header tags, `payload` the body.
    pub fn ok(verb: &str, epoch: u64, extra: &str, payload: String) -> Self {
        let header = if extra.is_empty() {
            format!("ok {verb} bundle={epoch}")
        } else {
            format!("ok {verb} bundle={epoch} {extra}")
        };
        Response { header, payload }
    }

    /// The wire form of an error, via the shared [`ErrorKind::wire_code`](xmlprop_pipeline::ErrorKind::wire_code)
    /// table.  Multi-line messages are flattened — headers are one line.
    pub fn error(error: &Error) -> Self {
        let message = error.to_string().replace('\n', " | ");
        Response {
            header: format!("err {} {message}", error.wire_code()),
            payload: String::new(),
        }
    }

    /// Whether this is an `err` response.
    pub fn is_err(&self) -> bool {
        self.header.starts_with("err ")
    }

    /// The wire code of an `err` response, if any.
    pub fn wire_code(&self) -> Option<&str> {
        self.header.strip_prefix("err ")?.split_whitespace().next()
    }

    /// The `bundle=<epoch>` tag of an `ok` header, if present.
    pub fn epoch(&self) -> Option<u64> {
        self.header
            .split_whitespace()
            .find_map(|tag| tag.strip_prefix("bundle="))
            .and_then(|v| v.parse().ok())
    }

    /// Encodes the response onto `w`: header, payload, `.` terminator.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        writeln!(w, "{}", self.header)?;
        if !self.payload.is_empty() {
            w.write_all(self.payload.as_bytes())?;
            if !self.payload.ends_with('\n') {
                writeln!(w)?;
            }
        }
        writeln!(w, ".")
    }

    /// Reads one response from `r` (the client side).  Returns `Ok(None)`
    /// on a clean EOF before the header.
    pub fn read_from(r: &mut impl BufRead) -> Result<Option<Response>, Error> {
        let Some(header) = read_terminated_line(r, "reading response header")? else {
            return Ok(None);
        };
        if !(header.starts_with("ok ") || header.starts_with("err ")) {
            return Err(Error::protocol(format!(
                "malformed response header `{header}`"
            )));
        }
        let mut payload = String::new();
        loop {
            let Some(line) = read_terminated_line(r, "reading response payload")? else {
                // A transport death, not a malformed message: `io`, so
                // clients may retry read-only requests on it.
                return Err(Error::io("connection closed mid-response"));
            };
            if line == "." {
                break;
            }
            payload.push_str(&line);
            payload.push('\n');
        }
        Ok(Some(Response { header, payload }))
    }
}

/// The greeting line a server writes on connect.
pub fn greeting(epoch: u64, keys: usize, rules: usize) -> String {
    format!("xmlprop/{PROTOCOL_VERSION} ready bundle={epoch} keys={keys} rules={rules}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;
    use xmlprop_pipeline::ErrorKind;

    fn round_trip(req: Request) {
        let mut wire = Vec::new();
        req.write_to(&mut wire).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let back = Request::read_from(&mut reader).unwrap().unwrap();
        assert_eq!(back, req);
        assert!(Request::read_from(&mut reader).unwrap().is_none());
    }

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        round_trip(Request::Ping);
        round_trip(Request::Status);
        round_trip(Request::Quit);
        round_trip(Request::Validate {
            document: "<r><a/>\nmulti line</r>".into(),
        });
        round_trip(Request::Shred {
            document: "<r/>".into(),
            relation: None,
        });
        round_trip(Request::Shred {
            document: "<r/>".into(),
            relation: Some("book".into()),
        });
        round_trip(Request::Propagate {
            relation: "chapter".into(),
            fd: "inBook, number -> name".into(),
        });
        round_trip(Request::Cover { relation: None });
        round_trip(Request::Cover {
            relation: Some("book".into()),
        });
        round_trip(Request::Query {
            document: "<r><book isbn='1'/></r>".into(),
            query: "select title, name from book join chapter on isbn = inBook".into(),
        });
        round_trip(Request::Reload {
            keys: "K1: (ε, (//book, {@isbn}))\n".into(),
            rules: "rule book(isbn) { xb := xr//book; xi := xb/@isbn; isbn := value(xi); }\n"
                .into(),
        });
        round_trip(Request::Boom);
    }

    #[test]
    fn read_only_verbs_exclude_reload_quit_and_boom() {
        assert!(Request::Ping.is_read_only());
        assert!(Request::Status.is_read_only());
        assert!(Request::Validate {
            document: String::new()
        }
        .is_read_only());
        assert!(Request::Cover { relation: None }.is_read_only());
        assert!(Request::Query {
            document: String::new(),
            query: "select from r".into()
        }
        .is_read_only());
        assert!(!Request::Quit.is_read_only());
        assert!(!Request::Reload {
            keys: String::new(),
            rules: String::new()
        }
        .is_read_only());
        assert!(!Request::Boom.is_read_only());
    }

    #[test]
    fn responses_round_trip_and_tag_epochs() {
        let resp = Response::ok(
            "validate",
            3,
            "verdict=ok violations=0",
            "[ok]   K1\n".into(),
        );
        assert_eq!(resp.epoch(), Some(3));
        assert!(!resp.is_err());
        let mut wire = Vec::new();
        resp.write_to(&mut wire).unwrap();
        let mut reader = BufReader::new(wire.as_slice());
        let back = Response::read_from(&mut reader).unwrap().unwrap();
        assert_eq!(back, resp);

        let err = Response::error(&Error::protocol("bad frame"));
        assert!(err.is_err());
        assert_eq!(err.wire_code(), Some(ErrorKind::Protocol.wire_code()));
        let mut wire = Vec::new();
        err.write_to(&mut wire).unwrap();
        let back = Response::read_from(&mut BufReader::new(wire.as_slice()))
            .unwrap()
            .unwrap();
        assert_eq!(back, err);
    }

    #[test]
    fn oversized_bodies_are_rejected_before_allocation() {
        let header = format!("validate {}\n", MAX_BODY_BYTES + 1);
        let err = Request::read_from(&mut BufReader::new(header.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Protocol);
    }

    #[test]
    fn unknown_verbs_are_protocol_errors() {
        let err = Request::read_from(&mut BufReader::new(&b"frobnicate\n"[..])).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Protocol);
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn blank_lines_between_requests_are_skipped() {
        let mut reader = BufReader::new(&b"\n\nping\n"[..]);
        assert_eq!(
            Request::read_from(&mut reader).unwrap(),
            Some(Request::Ping)
        );
    }

    #[test]
    fn torn_request_lines_are_io_errors_not_prefix_requests() {
        // `cover U` torn to `cover ` must not become the all-relations
        // query — a header line without its newline is a dead transport.
        let err = Request::read_from(&mut BufReader::new(&b"cover "[..])).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Io);
        assert!(err.to_string().contains("mid-line"), "{err}");
    }

    #[test]
    fn torn_response_lines_are_io_errors() {
        let torn_header = &b"ok cover bundle=1 fds="[..];
        let err = Response::read_from(&mut BufReader::new(torn_header)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Io);

        let torn_payload = &b"ok cover bundle=1 fds=4\nbookIsbn -> book"[..];
        let err = Response::read_from(&mut BufReader::new(torn_payload)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Io);

        let missing_terminator = &b"ok ping bundle=1\n"[..];
        let err = Response::read_from(&mut BufReader::new(missing_terminator)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Io);
    }
}
