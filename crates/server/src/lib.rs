//! # xmlprop-server — the resident constraint server
//!
//! Validation, shredding, propagation and cover queries are corpus-shaped
//! and schema-heavy: the expensive work is preparing a
//! [`xmlprop_pipeline::CorpusBundle`], not answering any one request.
//! This crate keeps a prepared bundle **resident** behind a line protocol
//! (`std::net` TCP, no async runtime) so that many clients amortize one
//! preparation — and lets an admin `reload` swap in a new bundle *under
//! load* without ever blocking readers.
//!
//! The layers, bottom to top:
//!
//! * [`protocol`] — the versioned `xmlprop/1` wire format: length-framed
//!   request bodies, dot-terminated responses, `bundle=<epoch>` tags, and
//!   error wire codes from the same table the CLI maps to exit codes;
//! * [`render`] — the report renderers shared with the CLI's one-shot
//!   commands, making server payloads byte-identical to CLI stdout;
//! * [`server`] — [`ServerState`] (a [`xmlprop_pipeline::SwapCell`] of the
//!   bundle plus per-connection [`ScratchCache`]s) and the accept loop;
//! * [`client`] / [`script`] — the blocking client and the deterministic
//!   `--script` transcript driver CI goldens.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod render;
pub mod script;
pub mod server;

pub use client::{Client, ClientConfig};
pub use protocol::{greeting, Request, Response, MAX_BODY_BYTES, PROTOCOL_VERSION};
pub use script::{parse_script, run_script, ScriptStep};
pub use server::{
    serve_session, DrainReport, HealthCounters, ScratchCache, Server, ServerState, ServiceConfig,
    VerbCounters,
};
