//! The resident server: a shared [`ServerState`] behind a [`SwapCell`],
//! plus the `std::net` accept loop that serves it.
//!
//! ## Reader/writer discipline
//!
//! Request handlers never block on a reload.  Each request clones the
//! published `Arc<Published<CorpusBundle>>` snapshot once at request start
//! ([`SwapCell::read`] — a read-lock held only for an `Arc` clone) and
//! works against that snapshot for the whole request; `reload` prepares
//! the replacement bundle entirely off-lock and publishes it with a single
//! pointer store.  Epoch and bundle travel in one allocation, so a
//! response's `bundle=<epoch>` tag always names exactly the bundle that
//! produced its payload — there is no torn state to observe.
//!
//! ## Scratch discipline
//!
//! A connection's [`RequestScratch`] is derived from a specific bundle's
//! label universe, so each connection caches `(epoch, scratch)` and
//! re-derives the scratch when the published epoch has moved
//! ([`ScratchCache::for_snapshot`]).  Stale scratches are never used
//! against a newer bundle.

use crate::protocol::{self, Request, Response};
use crate::render;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use xmlprop_pipeline::{
    parse_keys_text, parse_rules_text, CorpusBundle, Error, Jobs, PreparedState, Published,
    RequestScratch, SwapCell,
};
use xmlprop_xmltree::Document;

/// Per-verb request counters, bumped once at request entry (so a `status`
/// request counts itself).  Relaxed atomics: the counts are monitoring
/// data, not synchronization — a `status` response may miss bumps racing
/// with it, never a bump from its own connection.
#[derive(Debug, Default)]
pub struct VerbCounters {
    ping: AtomicU64,
    status: AtomicU64,
    validate: AtomicU64,
    shred: AtomicU64,
    propagate: AtomicU64,
    cover: AtomicU64,
    reload: AtomicU64,
    quit: AtomicU64,
}

impl VerbCounters {
    fn slot(&self, request: &Request) -> &AtomicU64 {
        match request {
            Request::Ping => &self.ping,
            Request::Status => &self.status,
            Request::Validate { .. } => &self.validate,
            Request::Shred { .. } => &self.shred,
            Request::Propagate { .. } => &self.propagate,
            Request::Cover { .. } => &self.cover,
            Request::Reload { .. } => &self.reload,
            Request::Quit => &self.quit,
        }
    }

    fn bump(&self, request: &Request) {
        self.slot(request).fetch_add(1, Ordering::Relaxed);
    }

    /// The count served so far for `request`'s verb.
    pub fn get(&self, request: &Request) -> u64 {
        self.slot(request).load(Ordering::Relaxed)
    }

    /// Total requests served across all verbs.
    pub fn total(&self) -> u64 {
        [
            &self.ping,
            &self.status,
            &self.validate,
            &self.shred,
            &self.propagate,
            &self.cover,
            &self.reload,
            &self.quit,
        ]
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .sum()
    }

    /// One-line per-verb report, in the protocol's verb order.
    pub fn report(&self) -> String {
        format!(
            "ping={} status={} validate={} shred={} propagate={} cover={} reload={} quit={}",
            self.ping.load(Ordering::Relaxed),
            self.status.load(Ordering::Relaxed),
            self.validate.load(Ordering::Relaxed),
            self.shred.load(Ordering::Relaxed),
            self.propagate.load(Ordering::Relaxed),
            self.cover.load(Ordering::Relaxed),
            self.reload.load(Ordering::Relaxed),
            self.quit.load(Ordering::Relaxed),
        )
    }
}

/// The shared, hot-swappable state every connection serves from.
#[derive(Debug)]
pub struct ServerState {
    cell: SwapCell<CorpusBundle>,
    jobs: Jobs,
    counters: VerbCounters,
}

impl ServerState {
    /// Wraps an initial bundle (published as epoch 1) and the worker gate
    /// width.
    pub fn new(bundle: CorpusBundle, jobs: Jobs) -> Self {
        ServerState {
            cell: SwapCell::new(bundle),
            jobs,
            counters: VerbCounters::default(),
        }
    }

    /// The per-verb request counters.
    pub fn counters(&self) -> &VerbCounters {
        &self.counters
    }

    /// The publication cell (for tests and admin tooling).
    pub fn cell(&self) -> &SwapCell<CorpusBundle> {
        &self.cell
    }

    /// The currently published epoch (lock-free).
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// The greeting line for a new connection, naming the snapshot it
    /// would currently be served from.
    pub fn greeting(&self) -> String {
        let snapshot = self.cell.read();
        protocol::greeting(
            snapshot.epoch(),
            snapshot.sigma().len(),
            snapshot.transformation().rules().len(),
        )
    }

    /// Serves one request against the current snapshot.  Errors become
    /// `err <wire-code> …` responses via the shared error table; the
    /// connection stays usable.
    pub fn respond(&self, request: &Request, cache: &mut ScratchCache) -> Response {
        self.counters.bump(request);
        match self.try_respond(request, cache) {
            Ok(response) => response,
            Err(error) => Response::error(&error),
        }
    }

    fn try_respond(&self, request: &Request, cache: &mut ScratchCache) -> Result<Response, Error> {
        // One snapshot per request: every byte of the response comes from
        // this bundle, whatever `reload`s land meanwhile.
        let snapshot = self.cell.read();
        let epoch = snapshot.epoch();
        match request {
            Request::Ping => Ok(Response::ok("ping", epoch, "", String::new())),
            Request::Status => Ok(Response::ok(
                "status",
                epoch,
                &format!(
                    "keys={} rules={} jobs={} served={}",
                    snapshot.sigma().len(),
                    snapshot.transformation().rules().len(),
                    self.jobs.get(),
                    self.counters.total()
                ),
                self.counters.report() + "\n",
            )),
            Request::Quit => Ok(Response::ok("quit", epoch, "", String::new())),
            Request::Validate { document } => {
                let doc = parse_document(document)?;
                let scratch = cache.for_snapshot(&snapshot);
                let (ok, text) = render::validate_report(&snapshot, &doc, scratch);
                let verdict = if ok { "ok" } else { "fail" };
                Ok(Response::ok(
                    "validate",
                    epoch,
                    &format!("verdict={verdict}"),
                    text,
                ))
            }
            Request::Shred { document, relation } => {
                let doc = parse_document(document)?;
                let scratch = cache.for_snapshot(&snapshot);
                let (tuples, text) =
                    render::shred_report(&snapshot, &doc, scratch, relation.as_deref())?;
                Ok(Response::ok(
                    "shred",
                    epoch,
                    &format!("tuples={tuples}"),
                    text,
                ))
            }
            Request::Propagate { relation, fd } => {
                let fd = render::parse_fd(fd)?;
                let engine = render::require_rule(&snapshot, relation)?;
                let (all, text) = render::propagate_report(&engine.propagation_explained(&fd));
                let verdict = if all { "guaranteed" } else { "not-guaranteed" };
                Ok(Response::ok(
                    "propagate",
                    epoch,
                    &format!("verdict={verdict}"),
                    text,
                ))
            }
            Request::Cover { relation } => {
                let (fds, text) = render::cover_report(&snapshot, relation.as_deref())?;
                Ok(Response::ok("cover", epoch, &format!("fds={fds}"), text))
            }
            Request::Reload { keys, rules } => {
                // Parse and prepare entirely off-lock; publish is a single
                // pointer store.  Concurrent readers keep their snapshots.
                let sigma = parse_keys_text(keys, "reload keys")?;
                let transformation = parse_rules_text(rules, "reload rules")?;
                let keys_len = sigma.len();
                let rules_len = transformation.rules().len();
                let bundle = CorpusBundle::prepare(sigma, transformation);
                let published = self.cell.publish(bundle);
                Ok(Response::ok(
                    "reload",
                    published,
                    &format!("keys={keys_len} rules={rules_len}"),
                    String::new(),
                ))
            }
        }
    }
}

fn parse_document(text: &str) -> Result<Document, Error> {
    Document::parse_str(text).map_err(|e| Error::parse("request document", e))
}

/// One connection's `(epoch, scratch)` cache; see the module docs.
#[derive(Debug, Default)]
pub struct ScratchCache {
    epoch: u64,
    scratch: Option<RequestScratch>,
}

impl ScratchCache {
    /// An empty cache (no scratch derived yet).
    pub fn new() -> Self {
        ScratchCache::default()
    }

    /// The scratch for `snapshot`'s bundle, re-derived iff the epoch moved
    /// since the last request on this connection.
    pub fn for_snapshot(&mut self, snapshot: &Published<CorpusBundle>) -> &mut RequestScratch {
        if self.scratch.is_none() || self.epoch != snapshot.epoch() {
            self.scratch = Some(snapshot.value().scratch());
            self.epoch = snapshot.epoch();
        }
        self.scratch.as_mut().expect("scratch derived above")
    }
}

/// Caps concurrently served connections at the worker gate width; the
/// accept loop blocks (back-pressure on the listen queue) when saturated.
#[derive(Debug)]
struct Gate {
    max: usize,
    active: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    fn new(max: usize) -> Self {
        Gate {
            max,
            active: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut active = self.active.lock().expect("gate lock");
        while *active >= self.max {
            active = self.freed.wait(active).expect("gate lock");
        }
        *active += 1;
    }

    fn release(&self) {
        let mut active = self.active.lock().expect("gate lock");
        *active -= 1;
        drop(active);
        self.freed.notify_one();
    }
}

/// A bound, running server: accept loop on its own thread, one thread per
/// live connection (capped by the jobs gate).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral test port) and
    /// starts serving `bundle` over at most `jobs` concurrent connections.
    pub fn bind(addr: &str, bundle: CorpusBundle, jobs: Jobs) -> Result<Server, Error> {
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::io(format!("cannot bind `{addr}`: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| Error::io(format!("cannot resolve bound address: {e}")))?;
        let state = Arc::new(ServerState::new(bundle, jobs));
        let stop = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(Gate::new(jobs.get()));
        let accept = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("xmlprop-accept".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        gate.acquire();
                        let state = Arc::clone(&state);
                        let slot = Arc::clone(&gate);
                        let spawned = std::thread::Builder::new()
                            .name("xmlprop-conn".into())
                            .spawn(move || {
                                let _ = handle_connection(stream, &state);
                                slot.release();
                            });
                        if spawned.is_err() {
                            gate.release();
                        }
                    }
                })
                .map_err(|e| Error::io(format!("cannot spawn accept thread: {e}")))?
        };
        Ok(Server {
            addr: local,
            state,
            stop,
            accept: Some(accept),
        })
    }

    /// The address the server is actually listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (for tests driving `respond` or `publish`
    /// directly).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// The currently published bundle epoch.
    pub fn epoch(&self) -> u64 {
        self.state.epoch()
    }

    /// Stops accepting and joins the accept thread.  Connections already
    /// being served run to completion on their own threads.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    /// Blocks the calling thread for the server's lifetime (the CLI's
    /// foreground mode).  Returns only if the accept thread exits.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    fn stop_accepting(&mut self) {
        let Some(handle) = self.accept.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Poke the listener so the blocking accept observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

/// Serves one connection: greeting, then a request/response loop until
/// `quit`, EOF, or a framing error (framing errors get an `err` response
/// and close the connection; request-level errors keep it open).
fn handle_connection(stream: TcpStream, state: &ServerState) -> std::io::Result<()> {
    let reader = stream.try_clone()?;
    let mut reader = BufReader::new(reader);
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "{}", state.greeting())?;
    writer.flush()?;
    let mut cache = ScratchCache::new();
    serve_session(&mut reader, &mut writer, state, &mut cache)
}

/// The transport-agnostic session loop (shared by the TCP handler and
/// in-process tests).
pub fn serve_session(
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    state: &ServerState,
    cache: &mut ScratchCache,
) -> std::io::Result<()> {
    loop {
        match Request::read_from(reader) {
            Ok(None) => return Ok(()),
            Ok(Some(request)) => {
                let quit = request == Request::Quit;
                let response = state.respond(&request, cache);
                response.write_to(writer)?;
                writer.flush()?;
                if quit {
                    return Ok(());
                }
            }
            Err(error) => {
                // Framing is broken; answer once and hang up.
                let _ = Response::error(&error).write_to(writer);
                let _ = writer.flush();
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_pipeline::{parse_keys_text, parse_rules_text};

    const KEYS: &str = "K1: (ε, (//book, {@isbn}))\n";
    const RULES: &str = "rule book(isbn) { xb := xr//book; xi := xb/@isbn; isbn := value(xi); }\n";

    fn bundle() -> CorpusBundle {
        CorpusBundle::prepare(
            parse_keys_text(KEYS, "keys").unwrap(),
            parse_rules_text(RULES, "rules").unwrap(),
        )
    }

    #[test]
    fn respond_tags_every_ok_with_the_serving_epoch() {
        let state = ServerState::new(bundle(), Jobs::default());
        let mut cache = ScratchCache::new();
        let resp = state.respond(&Request::Ping, &mut cache);
        assert_eq!(resp.header, "ok ping bundle=1");
        let resp = state.respond(
            &Request::Reload {
                keys: KEYS.into(),
                rules: RULES.into(),
            },
            &mut cache,
        );
        assert_eq!(resp.header, "ok reload bundle=2 keys=1 rules=1");
        let resp = state.respond(&Request::Ping, &mut cache);
        assert_eq!(resp.header, "ok ping bundle=2");
    }

    #[test]
    fn request_errors_keep_the_session_usable() {
        let state = ServerState::new(bundle(), Jobs::default());
        let mut cache = ScratchCache::new();
        let resp = state.respond(
            &Request::Validate {
                document: "<unclosed".into(),
            },
            &mut cache,
        );
        assert!(resp.is_err());
        assert_eq!(resp.wire_code(), Some("parse"));
        let resp = state.respond(
            &Request::Cover {
                relation: Some("nope".into()),
            },
            &mut cache,
        );
        assert_eq!(resp.wire_code(), Some("relation"));
        assert!(resp.header.contains("no rule for relation `nope`"));
        // Still serving fine afterwards.
        let resp = state.respond(&Request::Status, &mut cache);
        assert!(resp.header.starts_with("ok status bundle=1 "));
    }

    #[test]
    fn status_reports_per_verb_counters_and_counts_itself() {
        let state = ServerState::new(bundle(), Jobs::default());
        let mut cache = ScratchCache::new();
        state.respond(&Request::Ping, &mut cache);
        state.respond(&Request::Ping, &mut cache);
        let resp = state.respond(&Request::Status, &mut cache);
        assert_eq!(
            resp.header,
            format!(
                "ok status bundle=1 keys=1 rules=1 jobs={} served=3",
                Jobs::default().get()
            )
        );
        assert_eq!(
            resp.payload,
            "ping=2 status=1 validate=0 shred=0 propagate=0 cover=0 reload=0 quit=0\n"
        );
        assert_eq!(state.counters().total(), 3);
        assert_eq!(state.counters().get(&Request::Ping), 2);
        // Errors are served requests too: the bump happens at entry.
        state.respond(
            &Request::Validate {
                document: "<unclosed".into(),
            },
            &mut cache,
        );
        assert_eq!(
            state.counters().get(&Request::Validate {
                document: String::new()
            }),
            1
        );
    }

    #[test]
    fn scratch_cache_rederives_on_epoch_change() {
        let state = ServerState::new(bundle(), Jobs::default());
        let mut cache = ScratchCache::new();
        let snap1 = state.cell().read();
        let _ = cache.for_snapshot(&snap1);
        assert_eq!(cache.epoch, 1);
        state.cell().publish(bundle());
        let snap2 = state.cell().read();
        let _ = cache.for_snapshot(&snap2);
        assert_eq!(cache.epoch, 2);
    }

    #[test]
    fn tcp_round_trip_serves_and_shuts_down() {
        let server = Server::bind("127.0.0.1:0", bundle(), Jobs::default()).unwrap();
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut greeting = String::new();
        reader.read_line(&mut greeting).unwrap();
        assert_eq!(
            greeting.trim_end(),
            "xmlprop/1 ready bundle=1 keys=1 rules=1"
        );
        let mut writer = stream;
        Request::Ping.write_to(&mut writer).unwrap();
        writer.flush().unwrap();
        let resp = Response::read_from(&mut reader).unwrap().unwrap();
        assert_eq!(resp.header, "ok ping bundle=1");
        Request::Quit.write_to(&mut writer).unwrap();
        writer.flush().unwrap();
        let resp = Response::read_from(&mut reader).unwrap().unwrap();
        assert_eq!(resp.header, "ok quit bundle=1");
        assert!(
            Response::read_from(&mut reader).unwrap().is_none(),
            "hung up"
        );
        server.shutdown();
    }
}
