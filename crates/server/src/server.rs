//! The resident server: a shared [`ServerState`] behind a [`SwapCell`],
//! plus the `std::net` accept loop that serves it.
//!
//! ## Reader/writer discipline
//!
//! Request handlers never block on a reload.  Each request clones the
//! published `Arc<Published<CorpusBundle>>` snapshot once at request start
//! ([`SwapCell::read`] — a read-lock held only for an `Arc` clone) and
//! works against that snapshot for the whole request; `reload` prepares
//! the replacement bundle entirely off-lock and publishes it with a single
//! pointer store.  Epoch and bundle travel in one allocation, so a
//! response's `bundle=<epoch>` tag always names exactly the bundle that
//! produced its payload — there is no torn state to observe.
//!
//! ## Scratch discipline
//!
//! A connection's [`RequestScratch`] is derived from a specific bundle's
//! label universe, so each connection caches `(epoch, scratch)` and
//! re-derives the scratch when the published epoch has moved
//! ([`ScratchCache::for_snapshot`]).  Stale scratches are never used
//! against a newer bundle.
//!
//! ## Failure discipline
//!
//! Every way a request can go wrong is contained to that request or, at
//! worst, that connection — never the process (see the README's
//! "Robustness & fault injection" section for the full guarantee table):
//!
//! * **slow or stalled peers** — reads carry a per-read idle timeout and
//!   every request runs under a deadline armed when its first byte
//!   arrives ([`ServiceConfig`]); expiry answers `err timeout` and closes
//!   the connection instead of pinning its thread;
//! * **handler panics** — [`ServerState::respond`] wraps the handler in
//!   [`std::panic::catch_unwind`]; a panic becomes `err internal`, bumps
//!   the `panics` health counter, discards the (possibly poisoned)
//!   scratch, and the connection keeps serving;
//! * **overload** — the accept loop admits a connection only if the jobs
//!   gate frees a slot within a bounded wait; otherwise the client is
//!   shed with one `err overloaded` line rather than queueing without
//!   bound;
//! * **shutdown** — [`Server::shutdown`] stops accepting, read-shutdowns
//!   every live connection (idle sessions see EOF; in-flight requests
//!   complete and flush), then waits for the gate to drain under
//!   [`ServiceConfig::drain_timeout`] before force-closing stragglers.
//!
//! All of it is exercised deterministically through
//! [`xmlprop_pipeline::faultline`]: [`Server::bind_with`] accepts a
//! [`Faults`] schedule whose `accept.conn` / `conn.read` / `conn.write` /
//! `reload.prepare` points inject torn connections, I/O errors, short
//! writes and delays on the exact paths above.

use crate::protocol::{self, Request, Response};
use crate::render;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use xmlprop_pipeline::{
    parse_keys_text, parse_rules_text, CorpusBundle, Error, ErrorKind, FaultStream, Faults, Jobs,
    PreparedState, Published, RequestScratch, SwapCell,
};
use xmlprop_xmltree::Document;

/// The service's timeout and degradation policy.  The defaults suit an
/// interactive deployment; tests shrink them to drive the slow-path
/// behaviours in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Longest a single socket read may block: between requests this is
    /// the idle cutoff, inside a request it bounds each stall.
    pub read_timeout: Duration,
    /// Longest a single socket write may block before the connection is
    /// abandoned.
    pub write_timeout: Duration,
    /// Wall-clock budget for one request, armed when its first byte
    /// arrives; a slow-loris peer trickling bytes gets `err timeout` at
    /// expiry no matter how diligently it trickles.
    pub request_deadline: Duration,
    /// How long an incoming connection may wait for a gate slot before
    /// being shed with `err overloaded`.
    pub shed_wait: Duration,
    /// How long [`Server::shutdown`] waits for in-flight connections to
    /// drain before force-closing them.
    pub drain_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            request_deadline: Duration::from_secs(60),
            shed_wait: Duration::from_secs(1),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// Per-verb request counters, bumped once at request entry (so a `status`
/// request counts itself).  Relaxed atomics: the counts are monitoring
/// data, not synchronization — a `status` response may miss bumps racing
/// with it, never a bump from its own connection.
#[derive(Debug, Default)]
pub struct VerbCounters {
    ping: AtomicU64,
    status: AtomicU64,
    validate: AtomicU64,
    shred: AtomicU64,
    propagate: AtomicU64,
    cover: AtomicU64,
    query: AtomicU64,
    reload: AtomicU64,
    quit: AtomicU64,
    /// The test-only panic verb gets a private slot so it never skews the
    /// `served=` total or the per-verb report the golden transcripts pin.
    #[cfg(any(test, feature = "faultline"))]
    boom: AtomicU64,
}

impl VerbCounters {
    fn slot(&self, request: &Request) -> &AtomicU64 {
        match request {
            Request::Ping => &self.ping,
            Request::Status => &self.status,
            Request::Validate { .. } => &self.validate,
            Request::Shred { .. } => &self.shred,
            Request::Propagate { .. } => &self.propagate,
            Request::Cover { .. } => &self.cover,
            Request::Query { .. } => &self.query,
            Request::Reload { .. } => &self.reload,
            Request::Quit => &self.quit,
            #[cfg(any(test, feature = "faultline"))]
            Request::Boom => &self.boom,
        }
    }

    fn bump(&self, request: &Request) {
        self.slot(request).fetch_add(1, Ordering::Relaxed);
    }

    /// The count served so far for `request`'s verb.
    pub fn get(&self, request: &Request) -> u64 {
        self.slot(request).load(Ordering::Relaxed)
    }

    /// Total requests served across all verbs (`boom` excluded: the
    /// report below must be identical with and without the feature).
    pub fn total(&self) -> u64 {
        [
            &self.ping,
            &self.status,
            &self.validate,
            &self.shred,
            &self.propagate,
            &self.cover,
            &self.query,
            &self.reload,
            &self.quit,
        ]
        .iter()
        .map(|c| c.load(Ordering::Relaxed))
        .sum()
    }

    /// One-line per-verb report, in the protocol's verb order.
    pub fn report(&self) -> String {
        format!(
            "ping={} status={} validate={} shred={} propagate={} cover={} query={} reload={} \
             quit={}",
            self.ping.load(Ordering::Relaxed),
            self.status.load(Ordering::Relaxed),
            self.validate.load(Ordering::Relaxed),
            self.shred.load(Ordering::Relaxed),
            self.propagate.load(Ordering::Relaxed),
            self.cover.load(Ordering::Relaxed),
            self.query.load(Ordering::Relaxed),
            self.reload.load(Ordering::Relaxed),
            self.quit.load(Ordering::Relaxed),
        )
    }
}

/// Degradation counters: how often each containment path fired.  Reported
/// on the second `status` payload line and by the same discipline as
/// [`VerbCounters`] (relaxed, monitoring-only).
#[derive(Debug, Default)]
pub struct HealthCounters {
    panics: AtomicU64,
    timeouts: AtomicU64,
    sheds: AtomicU64,
}

impl HealthCounters {
    /// Requests whose handler panicked and was contained to `err internal`.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Connections closed for blowing a read timeout or request deadline.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Connections shed with `err overloaded` at the accept gate.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    pub(crate) fn bump_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// One-line report, mirrored on the `status` payload.
    pub fn report(&self) -> String {
        format!(
            "panics={} timeouts={} sheds={}",
            self.panics(),
            self.timeouts(),
            self.sheds()
        )
    }
}

/// Decrements the in-flight gauge on scope exit — including unwinds, so a
/// panicking handler cannot leak a phantom in-flight request.
struct InflightGuard<'a>(&'a AtomicU64);

impl<'a> InflightGuard<'a> {
    fn new(gauge: &'a AtomicU64) -> Self {
        gauge.fetch_add(1, Ordering::Relaxed);
        InflightGuard(gauge)
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The shared, hot-swappable state every connection serves from.
#[derive(Debug)]
pub struct ServerState {
    cell: SwapCell<CorpusBundle>,
    jobs: Jobs,
    counters: VerbCounters,
    health: HealthCounters,
    inflight: AtomicU64,
    start: Instant,
    faults: Faults,
}

impl ServerState {
    /// Wraps an initial bundle (published as epoch 1) and the worker gate
    /// width, with no fault schedule.
    pub fn new(bundle: CorpusBundle, jobs: Jobs) -> Self {
        ServerState::with_faults(bundle, jobs, Faults::disabled())
    }

    /// Like [`ServerState::new`], with a fault-injection schedule for the
    /// request paths (`reload.prepare` fires in [`ServerState::respond`];
    /// the connection points fire in the transport wrappers).
    pub fn with_faults(bundle: CorpusBundle, jobs: Jobs, faults: Faults) -> Self {
        ServerState {
            cell: SwapCell::new(bundle),
            jobs,
            counters: VerbCounters::default(),
            health: HealthCounters::default(),
            inflight: AtomicU64::new(0),
            start: Instant::now(),
            faults,
        }
    }

    /// The per-verb request counters.
    pub fn counters(&self) -> &VerbCounters {
        &self.counters
    }

    /// The degradation counters (panics / timeouts / sheds).
    pub fn health(&self) -> &HealthCounters {
        &self.health
    }

    /// The fault schedule this state was built with.
    pub fn faults(&self) -> &Faults {
        &self.faults
    }

    /// Requests currently being served (the `status` in-flight gauge).
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// The publication cell (for tests and admin tooling).
    pub fn cell(&self) -> &SwapCell<CorpusBundle> {
        &self.cell
    }

    /// The currently published epoch (lock-free).
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// The greeting line for a new connection, naming the snapshot it
    /// would currently be served from.
    pub fn greeting(&self) -> String {
        let snapshot = self.cell.read();
        protocol::greeting(
            snapshot.epoch(),
            snapshot.sigma().len(),
            snapshot.transformation().rules().len(),
        )
    }

    /// Serves one request against the current snapshot.  Errors become
    /// `err <wire-code> …` responses via the shared error table, and a
    /// panicking handler is contained to `err internal`: either way the
    /// connection stays usable.
    pub fn respond(&self, request: &Request, cache: &mut ScratchCache) -> Response {
        let _inflight = InflightGuard::new(&self.inflight);
        self.counters.bump(request);
        // `&mut ScratchCache` is not unwind-safe by default, but the panic
        // arm below discards the cache wholesale, so no torn scratch state
        // can ever be observed after an unwind.
        match catch_unwind(AssertUnwindSafe(|| self.try_respond(request, cache))) {
            Ok(Ok(response)) => response,
            Ok(Err(error)) => Response::error(&error),
            Err(_panic) => {
                self.health.bump_panic();
                *cache = ScratchCache::new();
                Response::error(&Error::internal(format!(
                    "request handler panicked serving `{}`",
                    request.verb()
                )))
            }
        }
    }

    fn try_respond(&self, request: &Request, cache: &mut ScratchCache) -> Result<Response, Error> {
        // One snapshot per request: every byte of the response comes from
        // this bundle, whatever `reload`s land meanwhile.
        let snapshot = self.cell.read();
        let epoch = snapshot.epoch();
        match request {
            Request::Ping => Ok(Response::ok("ping", epoch, "", String::new())),
            Request::Status => Ok(Response::ok(
                "status",
                epoch,
                &format!(
                    "keys={} rules={} jobs={} uptime={}s inflight={} served={}",
                    snapshot.sigma().len(),
                    snapshot.transformation().rules().len(),
                    self.jobs.get(),
                    self.start.elapsed().as_secs(),
                    self.inflight(),
                    self.counters.total()
                ),
                format!("{}\n{}\n", self.counters.report(), self.health.report()),
            )),
            Request::Quit => Ok(Response::ok("quit", epoch, "", String::new())),
            Request::Validate { document } => {
                let doc = parse_document(document)?;
                let scratch = cache.for_snapshot(&snapshot);
                let (ok, text) = render::validate_report(&snapshot, &doc, scratch);
                let verdict = if ok { "ok" } else { "fail" };
                Ok(Response::ok(
                    "validate",
                    epoch,
                    &format!("verdict={verdict}"),
                    text,
                ))
            }
            Request::Shred { document, relation } => {
                let doc = parse_document(document)?;
                let scratch = cache.for_snapshot(&snapshot);
                let (tuples, text) =
                    render::shred_report(&snapshot, &doc, scratch, relation.as_deref())?;
                Ok(Response::ok(
                    "shred",
                    epoch,
                    &format!("tuples={tuples}"),
                    text,
                ))
            }
            Request::Propagate { relation, fd } => {
                let fd = render::parse_fd(fd)?;
                let engine = render::require_rule(&snapshot, relation)?;
                let (all, text) = render::propagate_report(&engine.propagation_explained(&fd));
                let verdict = if all { "guaranteed" } else { "not-guaranteed" };
                Ok(Response::ok(
                    "propagate",
                    epoch,
                    &format!("verdict={verdict}"),
                    text,
                ))
            }
            Request::Cover { relation } => {
                let (fds, text) = render::cover_report(&snapshot, relation.as_deref())?;
                Ok(Response::ok("cover", epoch, &format!("fds={fds}"), text))
            }
            Request::Query { document, query } => {
                let doc = parse_document(document)?;
                let scratch = cache.for_snapshot(&snapshot);
                let (rows, text) = render::query_report(&snapshot, &doc, scratch, query)?;
                Ok(Response::ok("query", epoch, &format!("rows={rows}"), text))
            }
            Request::Reload { keys, rules } => {
                // A fault here models the preparation dying mid-way (OOM,
                // torn read of the new schema); the publish below never
                // ran, so readers keep the old epoch — torn reloads are
                // unobservable by construction.
                self.faults
                    .fire_io("reload.prepare")
                    .map_err(|e| Error::io(format!("reload preparation failed: {e}")))?;
                // Parse and prepare entirely off-lock; publish is a single
                // pointer store.  Concurrent readers keep their snapshots.
                let sigma = parse_keys_text(keys, "reload keys")?;
                let transformation = parse_rules_text(rules, "reload rules")?;
                let keys_len = sigma.len();
                let rules_len = transformation.rules().len();
                let bundle = CorpusBundle::prepare(sigma, transformation);
                let published = self.cell.publish(bundle);
                Ok(Response::ok(
                    "reload",
                    published,
                    &format!("keys={keys_len} rules={rules_len}"),
                    String::new(),
                ))
            }
            #[cfg(any(test, feature = "faultline"))]
            Request::Boom => panic!("deliberate `boom` panic (test verb)"),
        }
    }
}

fn parse_document(text: &str) -> Result<Document, Error> {
    Document::parse_str(text).map_err(|e| Error::parse("request document", e))
}

/// One connection's `(epoch, scratch)` cache; see the module docs.
#[derive(Debug, Default)]
pub struct ScratchCache {
    epoch: u64,
    scratch: Option<RequestScratch>,
}

impl ScratchCache {
    /// An empty cache (no scratch derived yet).
    pub fn new() -> Self {
        ScratchCache::default()
    }

    /// The scratch for `snapshot`'s bundle, re-derived iff the epoch moved
    /// since the last request on this connection.
    pub fn for_snapshot(&mut self, snapshot: &Published<CorpusBundle>) -> &mut RequestScratch {
        if self.scratch.is_none() || self.epoch != snapshot.epoch() {
            self.scratch = Some(snapshot.value().scratch());
            self.epoch = snapshot.epoch();
        }
        self.scratch.as_mut().expect("scratch derived above")
    }
}

/// Caps concurrently served connections at the worker gate width.  The
/// accept loop waits a bounded [`ServiceConfig::shed_wait`] for a slot and
/// sheds the connection if none frees up; shutdown waits for the count to
/// drain to zero.
#[derive(Debug)]
struct Gate {
    max: usize,
    active: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    fn new(max: usize) -> Self {
        Gate {
            max,
            active: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Claims a slot, waiting at most `wait`; `false` means saturated.
    fn try_acquire(&self, wait: Duration) -> bool {
        let deadline = Instant::now() + wait;
        let mut active = self.active.lock().expect("gate lock");
        while *active >= self.max {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timeout) = self
                .freed
                .wait_timeout(active, deadline - now)
                .expect("gate lock");
            active = guard;
        }
        *active += 1;
        true
    }

    fn release(&self) {
        let mut active = self.active.lock().expect("gate lock");
        *active -= 1;
        drop(active);
        // notify_all: both the accept loop (waiting for one slot) and a
        // draining shutdown (waiting for zero) may be parked here.
        self.freed.notify_all();
    }

    /// Waits up to `timeout` for every slot to be released; `false` means
    /// connections were still live at expiry.
    fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut active = self.active.lock().expect("gate lock");
        while *active > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timeout) = self
                .freed
                .wait_timeout(active, deadline - now)
                .expect("gate lock");
            active = guard;
        }
        true
    }
}

/// The live-connection registry: one entry per connection being served,
/// so shutdown can reach into blocked reads (via [`TcpStream::shutdown`])
/// instead of waiting out their timeouts.
#[derive(Debug, Default)]
struct Registry {
    next: AtomicU64,
    conns: Mutex<HashMap<u64, TcpStream>>,
}

impl Registry {
    fn insert(&self, stream: &TcpStream) -> u64 {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        // A failed clone only costs drain coverage for this connection;
        // it is still served and still gate-counted.
        if let Ok(clone) = stream.try_clone() {
            self.conns.lock().expect("registry lock").insert(id, clone);
        }
        id
    }

    fn remove(&self, id: u64) {
        self.conns.lock().expect("registry lock").remove(&id);
    }

    fn shutdown_all(&self, how: Shutdown) -> usize {
        let conns = self.conns.lock().expect("registry lock");
        for stream in conns.values() {
            let _ = stream.shutdown(how);
        }
        conns.len()
    }
}

/// How a [`Server::shutdown`] drain went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Every in-flight connection completed within the drain timeout.
    pub drained: bool,
    /// Connections force-closed at timeout (`0` when `drained`).
    pub forced: usize,
}

/// A bound, running server: accept loop on its own thread, one thread per
/// live connection (capped by the jobs gate).
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    gate: Arc<Gate>,
    registry: Arc<Registry>,
    config: ServiceConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral test port) and
    /// starts serving `bundle` over at most `jobs` concurrent connections,
    /// under the default [`ServiceConfig`] and no fault schedule.
    pub fn bind(addr: &str, bundle: CorpusBundle, jobs: Jobs) -> Result<Server, Error> {
        Server::bind_with(
            addr,
            bundle,
            jobs,
            ServiceConfig::default(),
            Faults::disabled(),
        )
    }

    /// [`Server::bind`] with an explicit timeout policy and fault
    /// schedule.  The schedule's `accept.conn` point tears connections at
    /// admission, `conn.read` / `conn.write` fire inside the per-connection
    /// transport, and `reload.prepare` fires in the reload handler.
    pub fn bind_with(
        addr: &str,
        bundle: CorpusBundle,
        jobs: Jobs,
        config: ServiceConfig,
        faults: Faults,
    ) -> Result<Server, Error> {
        let listener =
            TcpListener::bind(addr).map_err(|e| Error::io(format!("cannot bind `{addr}`: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| Error::io(format!("cannot resolve bound address: {e}")))?;
        let state = Arc::new(ServerState::with_faults(bundle, jobs, faults));
        let stop = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(Gate::new(jobs.get()));
        let registry = Arc::new(Registry::default());
        let accept = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let gate = Arc::clone(&gate);
            let registry = Arc::clone(&registry);
            std::thread::Builder::new()
                .name("xmlprop-accept".into())
                .spawn(move || accept_loop(listener, &state, &stop, &gate, &registry, config))
                .map_err(|e| Error::io(format!("cannot spawn accept thread: {e}")))?
        };
        Ok(Server {
            addr: local,
            state,
            stop,
            accept: Some(accept),
            gate,
            registry,
            config,
        })
    }

    /// The address the server is actually listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (for tests driving `respond` or `publish`
    /// directly).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// The currently published bundle epoch.
    pub fn epoch(&self) -> u64 {
        self.state.epoch()
    }

    /// Graceful shutdown: stops accepting, nudges every live connection
    /// (read-shutdown: idle sessions see EOF, in-flight requests complete
    /// and flush their response), waits up to
    /// [`ServiceConfig::drain_timeout`] for the gate to drain, then
    /// force-closes whatever remains.
    pub fn shutdown(mut self) -> DrainReport {
        self.stop_accepting();
        self.registry.shutdown_all(Shutdown::Read);
        let drained = self.gate.wait_idle(self.config.drain_timeout);
        let forced = if drained {
            0
        } else {
            self.registry.shutdown_all(Shutdown::Both)
        };
        DrainReport { drained, forced }
    }

    /// Blocks the calling thread for the server's lifetime (the CLI's
    /// foreground mode).  Returns only if the accept thread exits.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    fn stop_accepting(&mut self) {
        let Some(handle) = self.accept.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Poke the listener so the blocking accept observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = handle.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Non-blocking teardown (shutdown() consumed by value is the
        // graceful path): stop accepting and nudge live connections, but
        // do not wait for the drain.
        self.stop_accepting();
        self.registry.shutdown_all(Shutdown::Read);
    }
}

fn accept_loop(
    listener: TcpListener,
    state: &Arc<ServerState>,
    stop: &AtomicBool,
    gate: &Arc<Gate>,
    registry: &Arc<Registry>,
    config: ServiceConfig,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // `accept.conn` models a connection torn before service (peer
        // reset between accept and greeting).
        if state.faults().fire_io("accept.conn").is_err() {
            continue;
        }
        if !gate.try_acquire(config.shed_wait) {
            state.health().bump_shed();
            shed(stream, gate.max);
            continue;
        }
        let id = registry.insert(&stream);
        let state = Arc::clone(state);
        let slot = Arc::clone(gate);
        let reg = Arc::clone(registry);
        let spawned = std::thread::Builder::new()
            .name("xmlprop-conn".into())
            .spawn(move || {
                let _ = handle_connection(stream, &state, config);
                reg.remove(id);
                slot.release();
            });
        if spawned.is_err() {
            registry.remove(id);
            gate.release();
        }
    }
}

/// Sheds a connection the gate could not admit: one `err overloaded` line
/// in greeting position (clients classify it through the shared wire-code
/// table), under a short write timeout so a dead peer cannot stall the
/// accept thread.
fn shed(mut stream: TcpStream, max: usize) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = writeln!(
        stream,
        "err overloaded server at capacity ({max} connections); retry later"
    );
}

/// The read half of a connection with the timeout policy applied: each
/// read blocks at most [`ServiceConfig::read_timeout`], and the first byte
/// of a request arms a deadline that caps the whole request — a peer
/// trickling one byte per poll cannot stay under it.
#[derive(Debug)]
struct DeadlineStream {
    stream: TcpStream,
    read_timeout: Duration,
    request_deadline: Duration,
    deadline: Option<Instant>,
}

impl DeadlineStream {
    fn new(stream: TcpStream, config: &ServiceConfig) -> Self {
        DeadlineStream {
            stream,
            read_timeout: config.read_timeout,
            request_deadline: config.request_deadline,
            deadline: None,
        }
    }

    /// Disarms the request deadline; the session loop calls this between
    /// requests so idle time is governed by `read_timeout` alone.
    fn clear_deadline(&mut self) {
        self.deadline = None;
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let timeout = match self.deadline {
            None => self.read_timeout,
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        format!("request deadline of {:?} exceeded", self.request_deadline),
                    ));
                }
                remaining.min(self.read_timeout)
            }
        };
        self.stream.set_read_timeout(Some(timeout))?;
        match self.stream.read(buf) {
            Ok(n) => {
                if n > 0 && self.deadline.is_none() {
                    // First byte of a request: the deadline clock starts.
                    self.deadline = Some(Instant::now() + self.request_deadline);
                }
                Ok(n)
            }
            // The platform reports a socket timeout as either kind;
            // normalise so the protocol layer classifies it once.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    if self.deadline.is_some() {
                        "read timed out mid-request"
                    } else {
                        "idle connection timed out"
                    },
                ))
            }
            Err(e) => Err(e),
        }
    }
}

/// Serves one connection: greeting, then a request/response loop until
/// `quit`, EOF, or a framing error (framing errors get an `err` response
/// and close the connection; request-level errors keep it open).  The
/// transport is the hardened stack: deadline-governed reads, write
/// timeouts, and the connection-level fault points.
fn handle_connection(
    stream: TcpStream,
    state: &ServerState,
    config: ServiceConfig,
) -> std::io::Result<()> {
    stream.set_write_timeout(Some(config.write_timeout))?;
    let read_half = stream.try_clone()?;
    let mut reader = BufReader::new(FaultStream::new(
        DeadlineStream::new(read_half, &config),
        state.faults().clone(),
        "conn.read",
        "conn.write",
    ));
    let mut writer = BufWriter::new(FaultStream::new(
        stream,
        state.faults().clone(),
        "conn.read",
        "conn.write",
    ));
    writeln!(writer, "{}", state.greeting())?;
    writer.flush()?;
    let mut cache = ScratchCache::new();
    loop {
        reader.get_mut().get_mut().clear_deadline();
        match Request::read_from(&mut reader) {
            Ok(None) => return Ok(()),
            Ok(Some(request)) => {
                let quit = request == Request::Quit;
                let response = state.respond(&request, &mut cache);
                response.write_to(&mut writer)?;
                writer.flush()?;
                if quit {
                    return Ok(());
                }
            }
            Err(error) => {
                if error.kind() == ErrorKind::Timeout {
                    state.health().bump_timeout();
                }
                // Framing is broken or the peer blew a deadline; answer
                // once (best-effort) and hang up.
                let _ = Response::error(&error).write_to(&mut writer);
                let _ = writer.flush();
                return Ok(());
            }
        }
    }
}

/// The transport-agnostic session loop (shared by the TCP handler's
/// in-process tests and any custom transport).  Panic isolation applies —
/// it lives in [`ServerState::respond`] — but the timeout policy does
/// not: that belongs to the TCP transport in [`Server::bind_with`].
pub fn serve_session(
    reader: &mut impl BufRead,
    writer: &mut impl Write,
    state: &ServerState,
    cache: &mut ScratchCache,
) -> std::io::Result<()> {
    loop {
        match Request::read_from(reader) {
            Ok(None) => return Ok(()),
            Ok(Some(request)) => {
                let quit = request == Request::Quit;
                let response = state.respond(&request, cache);
                response.write_to(writer)?;
                writer.flush()?;
                if quit {
                    return Ok(());
                }
            }
            Err(error) => {
                // Framing is broken; answer once and hang up.
                let _ = Response::error(&error).write_to(writer);
                let _ = writer.flush();
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_pipeline::{parse_keys_text, parse_rules_text};

    const KEYS: &str = "K1: (ε, (//book, {@isbn}))\n";
    const RULES: &str = "rule book(isbn) { xb := xr//book; xi := xb/@isbn; isbn := value(xi); }\n";

    fn bundle() -> CorpusBundle {
        CorpusBundle::prepare(
            parse_keys_text(KEYS, "keys").unwrap(),
            parse_rules_text(RULES, "rules").unwrap(),
        )
    }

    #[test]
    fn respond_tags_every_ok_with_the_serving_epoch() {
        let state = ServerState::new(bundle(), Jobs::default());
        let mut cache = ScratchCache::new();
        let resp = state.respond(&Request::Ping, &mut cache);
        assert_eq!(resp.header, "ok ping bundle=1");
        let resp = state.respond(
            &Request::Reload {
                keys: KEYS.into(),
                rules: RULES.into(),
            },
            &mut cache,
        );
        assert_eq!(resp.header, "ok reload bundle=2 keys=1 rules=1");
        let resp = state.respond(&Request::Ping, &mut cache);
        assert_eq!(resp.header, "ok ping bundle=2");
    }

    #[test]
    fn request_errors_keep_the_session_usable() {
        let state = ServerState::new(bundle(), Jobs::default());
        let mut cache = ScratchCache::new();
        let resp = state.respond(
            &Request::Validate {
                document: "<unclosed".into(),
            },
            &mut cache,
        );
        assert!(resp.is_err());
        assert_eq!(resp.wire_code(), Some("parse"));
        let resp = state.respond(
            &Request::Cover {
                relation: Some("nope".into()),
            },
            &mut cache,
        );
        assert_eq!(resp.wire_code(), Some("relation"));
        assert!(resp.header.contains("no rule for relation `nope`"));
        // Still serving fine afterwards.
        let resp = state.respond(&Request::Status, &mut cache);
        assert!(resp.header.starts_with("ok status bundle=1 "));
    }

    #[test]
    fn status_reports_per_verb_counters_and_counts_itself() {
        let state = ServerState::new(bundle(), Jobs::default());
        let mut cache = ScratchCache::new();
        state.respond(&Request::Ping, &mut cache);
        state.respond(&Request::Ping, &mut cache);
        let resp = state.respond(&Request::Status, &mut cache);
        assert_eq!(
            resp.header,
            format!(
                "ok status bundle=1 keys=1 rules=1 jobs={} uptime=0s inflight=1 served=3",
                Jobs::default().get()
            )
        );
        assert_eq!(
            resp.payload,
            "ping=2 status=1 validate=0 shred=0 propagate=0 cover=0 query=0 reload=0 quit=0\n\
             panics=0 timeouts=0 sheds=0\n"
        );
        assert_eq!(state.counters().total(), 3);
        assert_eq!(state.counters().get(&Request::Ping), 2);
        assert_eq!(state.inflight(), 0, "gauge drains after each request");
        // Errors are served requests too: the bump happens at entry.
        state.respond(
            &Request::Validate {
                document: "<unclosed".into(),
            },
            &mut cache,
        );
        assert_eq!(
            state.counters().get(&Request::Validate {
                document: String::new()
            }),
            1
        );
    }

    #[test]
    fn handler_panics_are_contained_to_err_internal() {
        let state = ServerState::new(bundle(), Jobs::default());
        let mut cache = ScratchCache::new();
        let resp = state.respond(&Request::Boom, &mut cache);
        assert!(resp.is_err());
        assert_eq!(resp.wire_code(), Some("internal"));
        assert!(resp.header.contains("`boom`"), "{}", resp.header);
        assert_eq!(state.health().panics(), 1);
        assert_eq!(state.inflight(), 0, "unwind releases the gauge");
        // `boom` never skews the published totals or the golden report.
        assert_eq!(state.counters().total(), 0);
        assert!(!state.counters().report().contains("boom"));
        assert_eq!(state.counters().get(&Request::Boom), 1);
        // The very next request on the same connection state succeeds.
        let resp = state.respond(&Request::Ping, &mut cache);
        assert_eq!(resp.header, "ok ping bundle=1");
        let resp = state.respond(
            &Request::Validate {
                document: "<db><book isbn=\"1\"/></db>".into(),
            },
            &mut cache,
        );
        assert!(resp.header.starts_with("ok validate bundle=1"));
    }

    #[test]
    fn gate_sheds_when_saturated_and_reports_idle() {
        let gate = Gate::new(2);
        assert!(gate.try_acquire(Duration::from_millis(1)));
        assert!(gate.try_acquire(Duration::from_millis(1)));
        assert!(!gate.try_acquire(Duration::from_millis(10)), "saturated");
        assert!(!gate.wait_idle(Duration::from_millis(10)), "still active");
        gate.release();
        assert!(gate.try_acquire(Duration::from_millis(1)), "slot freed");
        gate.release();
        gate.release();
        assert!(gate.wait_idle(Duration::from_millis(10)));
    }

    #[test]
    fn reload_faults_fail_the_request_but_never_publish() {
        let faults = Faults::parse("reload.prepare=100%error", 7).unwrap();
        let state = ServerState::with_faults(bundle(), Jobs::default(), faults);
        let mut cache = ScratchCache::new();
        let resp = state.respond(
            &Request::Reload {
                keys: KEYS.into(),
                rules: RULES.into(),
            },
            &mut cache,
        );
        assert_eq!(resp.wire_code(), Some("io"));
        assert_eq!(state.epoch(), 1, "failed reload must not tick the epoch");
        let resp = state.respond(&Request::Ping, &mut cache);
        assert_eq!(resp.header, "ok ping bundle=1", "old bundle still serves");
    }

    #[test]
    fn scratch_cache_rederives_on_epoch_change() {
        let state = ServerState::new(bundle(), Jobs::default());
        let mut cache = ScratchCache::new();
        let snap1 = state.cell().read();
        let _ = cache.for_snapshot(&snap1);
        assert_eq!(cache.epoch, 1);
        state.cell().publish(bundle());
        let snap2 = state.cell().read();
        let _ = cache.for_snapshot(&snap2);
        assert_eq!(cache.epoch, 2);
    }

    #[test]
    fn tcp_round_trip_serves_and_shuts_down() {
        use std::io::BufRead;
        let server = Server::bind("127.0.0.1:0", bundle(), Jobs::default()).unwrap();
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut greeting = String::new();
        reader.read_line(&mut greeting).unwrap();
        assert_eq!(
            greeting.trim_end(),
            "xmlprop/1 ready bundle=1 keys=1 rules=1"
        );
        let mut writer = stream;
        Request::Ping.write_to(&mut writer).unwrap();
        writer.flush().unwrap();
        let resp = Response::read_from(&mut reader).unwrap().unwrap();
        assert_eq!(resp.header, "ok ping bundle=1");
        Request::Quit.write_to(&mut writer).unwrap();
        writer.flush().unwrap();
        let resp = Response::read_from(&mut reader).unwrap().unwrap();
        assert_eq!(resp.header, "ok quit bundle=1");
        assert!(
            Response::read_from(&mut reader).unwrap().is_none(),
            "hung up"
        );
        let report = server.shutdown();
        assert!(report.drained);
        assert_eq!(report.forced, 0);
    }

    #[test]
    fn slow_request_hits_the_deadline_not_the_thread() {
        use std::io::BufRead;
        let config = ServiceConfig {
            read_timeout: Duration::from_millis(200),
            request_deadline: Duration::from_millis(120),
            ..ServiceConfig::default()
        };
        let server = Server::bind_with(
            "127.0.0.1:0",
            bundle(),
            Jobs::default(),
            config,
            Faults::disabled(),
        )
        .unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut greeting = String::new();
        reader.read_line(&mut greeting).unwrap();
        // Slow-loris: start a request header, then trickle bytes slower
        // than the deadline.  Each write lands within the read timeout,
        // so only the per-request deadline can catch this.
        let mut writer = stream;
        writer.write_all(b"vali").unwrap();
        writer.flush().unwrap();
        let start = Instant::now();
        let response = loop {
            if start.elapsed() > Duration::from_secs(10) {
                panic!("server never enforced the request deadline");
            }
            if writer.write_all(b" ").is_err() {
                // Server already hung up on us; read what it said.
                break Response::read_from(&mut reader).unwrap();
            }
            std::thread::sleep(Duration::from_millis(40));
            // Peek for the err response without blocking forever.
            let buf = reader.fill_buf().unwrap_or(&[]);
            if !buf.is_empty() {
                break Response::read_from(&mut reader).unwrap();
            }
        };
        let response = response.expect("server answers before closing");
        assert_eq!(response.wire_code(), Some("timeout"), "{}", response.header);
        assert!(server.state().health().timeouts() >= 1);
        server.shutdown();
    }

    #[test]
    fn saturated_gate_sheds_with_err_overloaded() {
        use std::io::BufRead;
        let config = ServiceConfig {
            shed_wait: Duration::from_millis(50),
            ..ServiceConfig::default()
        };
        let server = Server::bind_with(
            "127.0.0.1:0",
            bundle(),
            Jobs::new(1).unwrap(),
            config,
            Faults::disabled(),
        )
        .unwrap();
        let addr = server.local_addr();
        // First connection holds the only slot.
        let holder = TcpStream::connect(addr).unwrap();
        let mut holder_reader = BufReader::new(holder.try_clone().unwrap());
        let mut line = String::new();
        holder_reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("xmlprop/1 ready"));
        // Second connection must be shed, not queued forever.
        let second = TcpStream::connect(addr).unwrap();
        let mut second_reader = BufReader::new(second);
        let mut line = String::new();
        second_reader.read_line(&mut line).unwrap();
        assert!(
            line.starts_with("err overloaded "),
            "expected a shed, got `{line}`"
        );
        assert_eq!(server.state().health().sheds(), 1);
        drop(holder_reader);
        drop(holder);
        server.shutdown();
    }
}
