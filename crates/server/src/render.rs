//! The report renderers shared by the CLI's one-shot commands and the
//! resident server's responses.
//!
//! Byte-for-byte equality between `xmlprop-cli validate doc.xml keys.txt`
//! and a `validate` request against a served bundle is **by construction**:
//! both call the functions in this module.  The property tests in
//! `tests/server_swap.rs` pin it end to end anyway.

use std::fmt::Write;
use xmlprop_core::{PropagationEngine, PropagationOutcome};
use xmlprop_pipeline::{CorpusBundle, Error, RequestScratch};
use xmlprop_reldb::{Database, Fd};
use xmlprop_xmltree::Document;

/// Renders the per-key validation report for one document: `[ok]   {key}`
/// or `[FAIL] {key}` with indented violations.  Returns the verdict (all
/// keys satisfied) and the report text.
pub fn validate_report(
    bundle: &CorpusBundle,
    doc: &Document,
    scratch: &mut RequestScratch,
) -> (bool, String) {
    let index = scratch.index_document(doc);
    let mut out = String::new();
    let mut ok = true;
    for (k, key) in bundle.sigma().iter().enumerate() {
        let broken = bundle.keys().violations_of(k, doc, &index);
        if broken.is_empty() {
            writeln!(out, "[ok]   {key}").expect("String write");
        } else {
            ok = false;
            writeln!(out, "[FAIL] {key}").expect("String write");
            for v in broken {
                writeln!(out, "         {v}").expect("String write");
            }
        }
    }
    (ok, out)
}

/// Streaming twin of [`validate_report`]: drives the key checker straight
/// off raw XML text — no `Document`, no `DocIndex` — and renders the same
/// bytes.  `origin` names the input in parse diagnostics (the CLI passes
/// the file path).
pub fn validate_report_streaming(
    bundle: &CorpusBundle,
    xml: &str,
    origin: &str,
) -> Result<(bool, String), Error> {
    let report = bundle
        .stream_check(xml)
        .map_err(|e| Error::parse(origin, e))?;
    let mut out = String::new();
    let mut ok = true;
    for (key, broken) in bundle.sigma().iter().zip(&report.per_key) {
        if broken.is_empty() {
            writeln!(out, "[ok]   {key}").expect("String write");
        } else {
            ok = false;
            writeln!(out, "[FAIL] {key}").expect("String write");
            for v in broken {
                writeln!(out, "         {v}").expect("String write");
            }
        }
    }
    Ok((ok, out))
}

/// Renders the shred output for one document: the named relation only, or
/// every rule's relation in plan (name) order.  Returns the total tuple
/// count and the report text.
pub fn shred_report(
    bundle: &CorpusBundle,
    doc: &Document,
    scratch: &mut RequestScratch,
    relation: Option<&str>,
) -> Result<(usize, String), Error> {
    if let Some(rel) = relation {
        require_rule(bundle, rel)?;
    }
    let index = scratch.index_document(doc);
    // The value() memo is per-document; evaluation buffers survive.
    scratch.shred_scratch().reset();
    let mut out = String::new();
    let mut tuples = 0;
    match relation {
        Some(rel) => {
            let plan = bundle.plan().plan(rel).expect("plan exists for every rule");
            let relation = plan.shred_with(doc, &index, scratch.shred_scratch());
            tuples += relation.len();
            writeln!(out, "{relation}").expect("String write");
        }
        None => {
            let mut database = Database::new();
            for plan in bundle.plan().plans() {
                database.insert(plan.shred_with(doc, &index, scratch.shred_scratch()));
            }
            for relation in database.relations() {
                tuples += relation.len();
                writeln!(out, "{relation}").expect("String write");
            }
        }
    }
    Ok((tuples, out))
}

/// Streaming twin of [`shred_report`]: shreds raw XML text through the
/// plans' streaming executors and renders the same bytes (relations print
/// in name order from the [`Database`] either way).
pub fn shred_report_streaming(
    bundle: &CorpusBundle,
    xml: &str,
    origin: &str,
    relation: Option<&str>,
) -> Result<(usize, String), Error> {
    if let Some(rel) = relation {
        require_rule(bundle, rel)?;
    }
    let database = bundle
        .stream_shred(xml, relation)
        .map_err(|e| Error::parse(origin, e))?;
    let mut out = String::new();
    let mut tuples = 0;
    for relation in database.relations() {
        tuples += relation.len();
        writeln!(out, "{relation}").expect("String write");
    }
    Ok((tuples, out))
}

/// Renders the propagated minimum cover of one relation (the CLI `cover`
/// format), or of every rule with `-- {relation}` section headers.
/// Returns the FD count and the report text.
pub fn cover_report(
    bundle: &CorpusBundle,
    relation: Option<&str>,
) -> Result<(usize, String), Error> {
    let mut out = String::new();
    let mut fds = 0;
    match relation {
        Some(rel) => {
            let engine = require_rule(bundle, rel)?;
            fds += write_cover(&mut out, &engine.minimum_cover());
        }
        None => {
            for engine in bundle.engines() {
                writeln!(out, "-- {}", engine.rule().schema().name()).expect("String write");
                fds += write_cover(&mut out, &engine.minimum_cover());
            }
        }
    }
    Ok((fds, out))
}

fn write_cover(out: &mut String, cover: &[Fd]) -> usize {
    if cover.is_empty() {
        writeln!(out, "(no non-trivial dependencies are propagated)").expect("String write");
    }
    for fd in cover {
        writeln!(out, "{fd}").expect("String write");
    }
    cover.len()
}

/// Renders an already-computed minimum cover in the CLI `cover` format —
/// the building block `cover_report` sections are made of.
pub fn render_cover(cover: &[Fd]) -> String {
    let mut out = String::new();
    write_cover(&mut out, cover);
    out
}

/// Renders per-field propagation verdicts (the CLI `propagate` format).
/// Returns the overall verdict (every RHS field guaranteed) and the report
/// text.
pub fn propagate_report(outcomes: &[PropagationOutcome]) -> (bool, String) {
    let mut out = String::new();
    let mut all = true;
    for o in outcomes {
        if o.propagated {
            writeln!(
                out,
                "GUARANTEED: every field `{}` value is determined (keyed ancestor variable: {})",
                o.field,
                o.keyed_ancestor.as_deref().unwrap_or("-"),
            )
            .expect("String write");
        } else {
            all = false;
            writeln!(out, "NOT GUARANTEED for field `{}`:", o.field).expect("String write");
            if o.keyed_ancestor.is_none() {
                writeln!(
                    out,
                    "  - no ancestor of the field's variable is transitively keyed by the LHS"
                )
                .expect("String write");
            }
            if !o.unresolved_fields.is_empty() {
                let fields: Vec<&str> = o.unresolved_fields.iter().map(String::as_str).collect();
                writeln!(
                    out,
                    "  - LHS field(s) {} are not guaranteed non-null whenever `{}` is non-null",
                    fields.join(", "),
                    o.field
                )
                .expect("String write");
            }
        }
    }
    (all, out)
}

/// Runs one query against the shredded image of `doc` and renders the
/// result: a `plan:` line (scan/join strategy, dedup decision), the result
/// table, and a row-count trailer. Returns the row count and the text.
///
/// The catalog the planner optimizes against is the bundle's **propagated
/// covers** — the same `minimum_cover()` the `cover` verb reports — so a
/// join equated on a propagated key executes as a hash lookup. Only the
/// relations the query mentions are shredded.
pub fn query_report(
    bundle: &CorpusBundle,
    doc: &Document,
    scratch: &mut RequestScratch,
    query_text: &str,
) -> Result<(usize, String), Error> {
    let query = xmlprop_query::parse_query(query_text)?;
    let mut catalog = xmlprop_query::Catalog::new();
    for engine in bundle.engines() {
        catalog.add_relation(engine.rule().schema().clone(), &engine.minimum_cover());
    }
    let plan = xmlprop_query::plan(&query, &catalog)?;
    let needed: std::collections::BTreeSet<&str> = std::iter::once(query.from.as_str())
        .chain(query.joins.iter().map(|j| j.relation.as_str()))
        .collect();
    let index = scratch.index_document(doc);
    // The value() memo is per-document; evaluation buffers survive.
    scratch.shred_scratch().reset();
    let mut database = Database::new();
    for shred_plan in bundle.plan().plans() {
        if needed.contains(shred_plan.schema().name()) {
            database.insert(shred_plan.shred_with(doc, &index, scratch.shred_scratch()));
        }
    }
    let result = xmlprop_query::execute(&plan, &database)?;
    let rows = result.len();
    let mut out = String::new();
    writeln!(out, "plan: {}", plan.describe()).expect("String write");
    // A zero-attribute projection has no table to draw; the count line
    // alone is the well-formed rendering.
    if result.schema().arity() > 0 {
        out.push_str(&result.to_table_string());
    }
    writeln!(out, "({rows} {})", if rows == 1 { "row" } else { "rows" }).expect("String write");
    Ok((rows, out))
}

/// Parses an `X -> A` FD, with the CLI's exact diagnostic.
pub fn parse_fd(text: &str) -> Result<Fd, Error> {
    text.parse()
        .map_err(|e| Error::Parse(format!("invalid FD `{text}`: {e}")))
}

/// The prepared engine for `relation`, or the shared "no rule for relation"
/// diagnostic listing the known rules.
pub fn require_rule<'b>(
    bundle: &'b CorpusBundle,
    relation: &str,
) -> Result<&'b PropagationEngine, Error> {
    bundle
        .engines()
        .iter()
        .find(|e| e.rule().schema().name() == relation)
        .ok_or_else(|| {
            let known = bundle
                .transformation()
                .rules()
                .iter()
                .map(|r| r.schema().name().to_string())
                .collect();
            Error::unknown_relation(relation, known)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_pipeline::{parse_keys_text, parse_rules_text, PreparedState};

    const KEYS: &str = "K1: (ε, (//book, {@isbn}))\n";
    const RULES: &str = "rule book(isbn) { xb := xr//book; xi := xb/@isbn; isbn := value(xi); }\n";

    fn bundle() -> CorpusBundle {
        CorpusBundle::prepare(
            parse_keys_text(KEYS, "keys").unwrap(),
            parse_rules_text(RULES, "rules").unwrap(),
        )
    }

    #[test]
    fn validate_report_formats_ok_and_fail_lines() {
        let bundle = bundle();
        let mut scratch = bundle.scratch();
        let good = Document::parse_str("<r><book isbn='1'/><book isbn='2'/></r>").unwrap();
        let (ok, text) = validate_report(&bundle, &good, &mut scratch);
        assert!(ok);
        assert!(text.starts_with("[ok]   "), "got: {text}");

        let bad = Document::parse_str("<r><book isbn='1'/><book isbn='1'/></r>").unwrap();
        let (ok, text) = validate_report(&bundle, &bad, &mut scratch);
        assert!(!ok);
        assert!(text.starts_with("[FAIL] "), "got: {text}");
        assert!(text.lines().count() > 1, "violations listed: {text}");
    }

    #[test]
    fn shred_report_counts_tuples_and_rejects_unknown_relations() {
        let bundle = bundle();
        let mut scratch = bundle.scratch();
        let doc = Document::parse_str("<r><book isbn='1'/><book isbn='2'/></r>").unwrap();
        let (tuples, text) = shred_report(&bundle, &doc, &mut scratch, None).unwrap();
        assert_eq!(tuples, 2);
        assert!(text.contains("book"), "got: {text}");
        let (tuples_one, text_one) =
            shred_report(&bundle, &doc, &mut scratch, Some("book")).unwrap();
        assert_eq!(tuples_one, 2);
        assert_eq!(text, text_one, "single-rule bundle: both forms agree");

        let err = shred_report(&bundle, &doc, &mut scratch, Some("nope")).unwrap_err();
        assert!(err.to_string().contains("no rule for relation `nope`"));
        assert!(err.to_string().contains("book"), "known rules listed");
    }

    #[test]
    fn streaming_report_twins_render_identical_bytes() {
        let bundle = bundle();
        let mut scratch = bundle.scratch();
        for xml in [
            "<r><book isbn='1'/><book isbn='2'/></r>",
            "<r><book isbn='1'/><book isbn='1'/></r>",
        ] {
            let doc = Document::parse_str(xml).unwrap();
            let (ok, dom) = validate_report(&bundle, &doc, &mut scratch);
            let (ok_s, streamed) = validate_report_streaming(&bundle, xml, "doc").unwrap();
            assert_eq!(ok_s, ok);
            assert_eq!(streamed, dom, "validate twins must render identically");
            let (tuples, dom) = shred_report(&bundle, &doc, &mut scratch, None).unwrap();
            let (tuples_s, streamed) = shred_report_streaming(&bundle, xml, "doc", None).unwrap();
            assert_eq!(tuples_s, tuples);
            assert_eq!(streamed, dom, "shred twins must render identically");
            let (_, one) = shred_report(&bundle, &doc, &mut scratch, Some("book")).unwrap();
            let (_, one_s) = shred_report_streaming(&bundle, xml, "doc", Some("book")).unwrap();
            assert_eq!(one_s, one);
        }
        let err = validate_report_streaming(&bundle, "<r", "bad.xml").unwrap_err();
        assert!(err.to_string().starts_with("bad.xml: "), "got: {err}");
        let err = shred_report_streaming(&bundle, "<r></r>", "doc", Some("nope")).unwrap_err();
        assert!(err.to_string().contains("no rule for relation `nope`"));
    }

    #[test]
    fn cover_report_all_rules_matches_single_rule_section() {
        let bundle = bundle();
        let (fds, one) = cover_report(&bundle, Some("book")).unwrap();
        let (fds_all, all) = cover_report(&bundle, None).unwrap();
        assert_eq!(fds, fds_all);
        assert_eq!(all, format!("-- book\n{one}"));
    }

    #[test]
    fn query_report_renders_plan_table_and_count() {
        let bundle = bundle();
        let mut scratch = bundle.scratch();
        let doc = Document::parse_str("<r><book isbn='2'/><book isbn='1'/></r>").unwrap();
        let (rows, text) =
            query_report(&bundle, &doc, &mut scratch, "select isbn from book").unwrap();
        assert_eq!(rows, 2);
        assert!(
            text.starts_with("plan: scan book; project isbn"),
            "got: {text}"
        );
        assert!(text.contains("isbn"), "header present: {text}");
        assert!(text.ends_with("(2 rows)\n"), "got: {text}");

        // Zero-attribute projection: no table, just the count.
        let (rows, text) = query_report(&bundle, &doc, &mut scratch, "select from book").unwrap();
        assert_eq!(rows, 1);
        assert!(text.ends_with("(1 row)\n"), "got: {text}");
        assert_eq!(text.lines().count(), 2, "plan line + count only: {text}");

        // Errors reuse the shared table.
        let err = query_report(&bundle, &doc, &mut scratch, "select broken").unwrap_err();
        assert_eq!(err.wire_code(), "parse");
        let err = query_report(&bundle, &doc, &mut scratch, "select a from nosuch").unwrap_err();
        assert_eq!(err.wire_code(), "relation");
    }

    #[test]
    fn parse_fd_uses_the_cli_diagnostic() {
        let err = parse_fd("not an fd").unwrap_err();
        assert!(err.to_string().starts_with("invalid FD `not an fd`:"));
        assert!(parse_fd("isbn -> isbn").is_ok());
    }
}
