//! `GminimumCover` — checking key propagation through the minimum cover
//! (Section 6).
//!
//! The paper's second experiment compares Algorithm `propagation` against an
//! alternative that (1) computes the minimum cover of all propagated FDs
//! once, then (2) answers individual `Σ ⊨_σ (X → A)` questions by relational
//! FD implication against that cover, plus the same non-null analysis that
//! `propagation` performs with its `Ycheck` set.

use crate::PropagationEngine;
use std::collections::BTreeSet;
use xmlprop_reldb::{AttrUniverse, Fd, FdIndex};
use xmlprop_xmlkeys::KeySet;
use xmlprop_xmltransform::TableRule;

/// A prepared `GminimumCover` checker for one universal relation.
///
/// The cover is computed through a prepared [`PropagationEngine`] and
/// interned once at construction; every [`GMinimumCover::check`] then
/// answers the relational-implication half of the question with one
/// linear-time counter-based closure over the prepared [`FdIndex`], and the
/// non-null half against the engine's precompiled assured-attribute edges —
/// no string-set fixpoints, no per-probe path construction.
#[derive(Debug, Clone)]
pub struct GMinimumCover {
    engine: PropagationEngine,
    cover: Vec<Fd>,
    universe: AttrUniverse,
    index: FdIndex,
    /// Per variable: whether its edge is an attribute assured by Σ at the
    /// parent position (the probe-independent non-null condition).
    edge_assured: Vec<bool>,
}

impl GMinimumCover {
    /// Computes the minimum cover for `rule` under `sigma` and returns a
    /// checker that can answer propagation questions against it.
    pub fn new(sigma: KeySet, rule: TableRule) -> Self {
        GMinimumCover::from_engine(PropagationEngine::from_owned(sigma, rule))
    }

    /// Builds the checker from an already-prepared engine, reusing its key
    /// index and compiled tree for both the cover computation and the
    /// per-check non-null analysis.
    pub fn from_engine(engine: PropagationEngine) -> Self {
        let cover = engine.minimum_cover();
        let mut universe = AttrUniverse::from_fds(&cover);
        let interned: Vec<_> = cover.iter().map(|fd| universe.intern_fd(fd)).collect();
        let index = FdIndex::new(universe.len(), &interned);
        let edge_assured = engine.edge_attr_assured_map();
        GMinimumCover {
            engine,
            cover,
            universe,
            index,
            edge_assured,
        }
    }

    /// The minimum cover backing this checker.
    pub fn cover(&self) -> &[Fd] {
        &self.cover
    }

    /// The universal-relation rule this checker was built for.
    pub fn rule(&self) -> &TableRule {
        self.engine.rule()
    }

    /// Checks whether `fd` is propagated, using relational implication
    /// against the cover plus the non-null condition: every left-hand-side
    /// field must be guaranteed non-null whenever the right-hand side is
    /// non-null (i.e. be an assured attribute of an ancestor of the
    /// right-hand side's variable).
    pub fn check(&self, fd: &Fd) -> bool {
        fd.rhs().iter().all(|a| self.check_single(fd.lhs(), a))
    }

    fn check_single(&self, x_fields: &BTreeSet<String>, a_field: &str) -> bool {
        // Relational implication against the interned cover (trivial FDs
        // short-circuit).  Left-hand-side fields outside the cover's
        // attribute universe can contribute nothing to the closure and are
        // dropped; a right-hand side outside it can only be derived
        // trivially.
        if !x_fields.contains(a_field) {
            let lhs = self.universe.lookup_set(x_fields);
            match self.universe.lookup(a_field) {
                Some(a) if self.index.closure(&lhs).contains(a) => {}
                _ => return false,
            }
        }
        // Non-null analysis, mirroring the Ycheck bookkeeping of Fig. 5:
        // each field of X must hang off an ancestor of A's variable through
        // an attribute edge whose existence is assured by Σ.  Both the
        // attribute-edge shape and its assurance are precomputed on the
        // engine; only the ancestor test depends on the probe.
        let Some(a_var) = self.engine.field_var_index(a_field) else {
            return false;
        };
        for field in x_fields {
            if field == a_field {
                continue;
            }
            let Some(var) = self.engine.field_var_index(field) else {
                return false;
            };
            let Some(parent) = self.engine.parent_index(var) else {
                return false;
            };
            if !self.engine.is_ancestor_or_self(parent, a_var) {
                return false;
            }
            if !self.edge_assured[var] {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagation;
    use xmlprop_xmlkeys::example_2_1_keys;
    use xmlprop_xmltransform::sample::example_3_1_universal;

    fn fd(s: &str) -> Fd {
        Fd::parse(s).unwrap()
    }

    fn checker() -> GMinimumCover {
        GMinimumCover::new(example_2_1_keys(), example_3_1_universal())
    }

    #[test]
    fn accepts_the_example_3_1_fds() {
        let g = checker();
        assert!(g.check(&fd("bookIsbn -> bookTitle")));
        assert!(g.check(&fd("bookIsbn -> authContact")));
        assert!(g.check(&fd("bookIsbn, chapNum -> chapName")));
        assert!(g.check(&fd("bookIsbn, chapNum, secNum -> secName")));
        assert_eq!(g.cover().len(), 4);
        assert_eq!(g.rule().schema().arity(), 8);
    }

    #[test]
    fn rejects_non_propagated_fds() {
        let g = checker();
        assert!(!g.check(&fd("bookIsbn -> bookAuthor")));
        assert!(!g.check(&fd("bookTitle -> bookIsbn")));
        assert!(!g.check(&fd("chapNum -> chapName")));
        assert!(!g.check(&fd("bookIsbn, chapNum -> secName")));
    }

    #[test]
    fn prepared_checkers_stay_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GMinimumCover>();
        assert_send_sync::<PropagationEngine>();
    }

    #[test]
    fn from_engine_shares_the_prepared_state() {
        let sigma = example_2_1_keys();
        let u = example_3_1_universal();
        let engine = PropagationEngine::new(&sigma, &u);
        let g = GMinimumCover::from_engine(engine);
        assert_eq!(g.cover().len(), 4);
        assert!(g.check(&fd("bookIsbn -> bookTitle")));
    }

    #[test]
    fn agrees_with_propagation_on_single_attribute_probes() {
        // Same question, two algorithms: the paper's experiment relies on
        // both giving the same answer.
        let sigma = example_2_1_keys();
        let u = example_3_1_universal();
        let g = GMinimumCover::new(sigma.clone(), u.clone());
        let attrs: Vec<String> = u.schema().attributes().to_vec();
        for a in &attrs {
            for x in &attrs {
                let probe = Fd::to_attr([x.clone()], a.clone());
                assert_eq!(
                    g.check(&probe),
                    propagation(&sigma, &u, &probe),
                    "disagreement on {probe}"
                );
            }
            for x in &attrs {
                for y in &attrs {
                    if x == y {
                        continue;
                    }
                    let probe = Fd::to_attr([x.clone(), y.clone()], a.clone());
                    assert_eq!(
                        g.check(&probe),
                        propagation(&sigma, &u, &probe),
                        "disagreement on {probe}"
                    );
                }
            }
        }
    }

    #[test]
    fn null_condition_is_enforced() {
        // bookTitle is an element (not an assured attribute), so adding it to
        // a left-hand side breaks condition (1) even though the relational
        // implication succeeds by augmentation.
        let g = checker();
        assert!(!g.check(&fd("bookIsbn, bookTitle -> chapName")));
        assert!(g.check(&fd("bookIsbn, chapNum -> chapName")));
        // A trivial FD with an unassured extra attribute is rejected too.
        assert!(!g.check(&fd("bookTitle, chapName -> chapName")));
        assert!(g.check(&fd("chapName -> chapName")));
    }
}
