//! The core algorithms of *"Propagating XML Constraints to Relations"*
//! (Davidson, Fan, Hara, Qin — ICDE 2003).
//!
//! Given a set `Σ` of XML keys and a transformation `σ` (table rules) from
//! XML to relations, this crate answers the two questions the paper poses:
//!
//! 1. **Key propagation** — is a given functional dependency `X → A` on a
//!    relation of the target schema guaranteed to hold on `σ(T)` for *every*
//!    document `T ⊨ Σ`?  ([`propagation`], Algorithm of Fig. 5, polynomial
//!    time.)
//! 2. **Minimum cover** — what is a minimum cover of *all* the FDs
//!    propagated onto a universal relation?  ([`minimum_cover`], the
//!    polynomial Section 5 algorithm; [`naive_minimum_cover`], the
//!    exponential baseline it is compared against in Fig. 7(a).)
//!
//! On top of those it provides:
//!
//! * [`PropagationEngine`] — the prepared form of a `(Σ, rule)` pair: one
//!   key index plus one compiled table tree, answering `propagation`,
//!   `minimum_cover` and the batch [`propagate_all`] from shared state.
//!   The free functions above are one-shot facades over it;
//! * [`GMinimumCover`] — the `GminimumCover` variant of Section 6 that
//!   answers single-FD questions through the minimum cover;
//! * [`refine`] — the end-to-end design-refinement pipeline of Examples 1.2
//!   and 3.1 (cover → BCNF / 3NF schema);
//! * [`check_declared_keys`] — checking a *predefined* relational schema
//!   against the XML keys (the Example 1.1 scenario);
//! * [`limits`] — a documentation module for the undecidability results
//!   (Theorems 3.1 and 3.2) that motivate the restrictions of the framework.
//!
//! # Quick start
//!
//! ```
//! use xmlprop_core::{minimum_cover, propagation};
//! use xmlprop_reldb::Fd;
//! use xmlprop_xmlkeys::example_2_1_keys;
//! use xmlprop_xmltransform::sample::{example_2_4_transformation, example_3_1_universal};
//!
//! let sigma = example_2_1_keys();
//! let t = example_2_4_transformation();
//!
//! // Example 4.2: isbn -> contact is propagated onto the book relation...
//! let fd = Fd::parse("isbn -> contact").unwrap();
//! assert!(propagation(&sigma, t.rule("book").unwrap(), &fd));
//!
//! // ...while (inChapt, number) -> name on section is not.
//! let fd = Fd::parse("inChapt, number -> name").unwrap();
//! assert!(!propagation(&sigma, t.rule("section").unwrap(), &fd));
//!
//! // Example 3.1: the minimum cover over the universal relation.
//! let cover = minimum_cover(&sigma, &example_3_1_universal());
//! assert_eq!(cover.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod consistency;
mod engine;
mod gmincover;
pub mod limits;
mod mincover;
mod naive;
mod propagation;
mod refine;

pub use consistency::{check_declared_keys, ConsistencyReport, KeyCheck};
pub use engine::PropagationEngine;
pub use gmincover::GMinimumCover;
pub use mincover::{minimum_cover, minimum_cover_with_stats, CoverStats};
pub use naive::{naive_minimum_cover, naive_propagated_fds};
pub use propagation::{propagate_all, propagation, propagation_explained, PropagationOutcome};
pub use refine::{refine, refine_with_checker, RefinedDesign};
