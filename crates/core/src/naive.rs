//! Algorithm `naive`: the exponential minimum-cover baseline (Section 5).
//!
//! The naive algorithm enumerates every candidate FD `X → A` over the
//! universal relation, checks each with Algorithm `propagation`, and then
//! minimizes the resulting (exponentially large) set with the relational
//! `minimize` function.  The paper uses it both to explain why a smarter
//! algorithm is needed and as the baseline of Fig. 7(a).

use crate::PropagationEngine;
use xmlprop_reldb::{minimize, Fd};
use xmlprop_xmlkeys::KeySet;
use xmlprop_xmltransform::TableRule;

/// All the non-trivial FDs on `rule`'s relation that are propagated from
/// `sigma` — the set `Σ_F` of the paper.  Exponential in the number of
/// fields (every subset of the attributes is tried as a left-hand side), so
/// only call this on small schemas; the benchmarks cap it accordingly.
///
/// Left-hand sides are enumerated as borrowed field slices probed against
/// one prepared [`PropagationEngine`]; a string-based [`Fd`] is only
/// materialized for the (few) probes that turn out to be propagated.
pub fn naive_propagated_fds(sigma: &KeySet, rule: &TableRule) -> Vec<Fd> {
    let engine = PropagationEngine::new(sigma, rule);
    // Sorted, so each enumerated slice is in the order `propagation_fields`
    // expects (and the output matches the historical BTreeSet-based order).
    let mut attrs: Vec<&str> = rule
        .schema()
        .attributes()
        .iter()
        .map(String::as_str)
        .collect();
    attrs.sort_unstable();
    let n = attrs.len();
    assert!(
        n < 64,
        "naive enumeration over {n} fields would overflow; use minimum_cover"
    );
    let mut out = Vec::new();
    let mut lhs: Vec<&str> = Vec::with_capacity(n);
    for a in rule.schema().attributes() {
        for mask in 0u64..(1u64 << n) {
            lhs.clear();
            lhs.extend(
                attrs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, s)| *s),
            );
            if lhs.contains(&a.as_str()) {
                continue; // trivial
            }
            if engine.propagation_fields(&lhs, a) {
                out.push(Fd::to_attr(lhs.iter().copied(), a.clone()));
            }
        }
    }
    out
}

/// The naive minimum-cover algorithm: enumerate, check, minimize.
pub fn naive_minimum_cover(sigma: &KeySet, rule: &TableRule) -> Vec<Fd> {
    minimize(&naive_propagated_fds(sigma, rule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_reldb::{covers_equivalent, is_nonredundant};
    use xmlprop_xmlkeys::example_2_1_keys;
    use xmlprop_xmltransform::sample::{example_1_1_refined_chapter, example_2_4_transformation};

    #[test]
    fn naive_cover_for_the_chapter_rule() {
        let sigma = example_2_1_keys();
        let rule = example_1_1_refined_chapter();
        let cover = naive_minimum_cover(&sigma, &rule);
        // The only propagated dependency is the paper's headline key:
        // (isbn, chapterNum) -> chapterName.
        let expected = vec![Fd::parse("isbn, chapterNum -> chapterName").unwrap()];
        assert!(covers_equivalent(&cover, &expected), "got {cover:?}");
        assert!(is_nonredundant(&cover));
    }

    #[test]
    fn naive_cover_for_the_book_rule() {
        let sigma = example_2_1_keys();
        let t = example_2_4_transformation();
        let cover = naive_minimum_cover(&sigma, t.rule("book").unwrap());
        let expected = vec![
            Fd::parse("isbn -> title").unwrap(),
            Fd::parse("isbn -> contact").unwrap(),
        ];
        assert!(covers_equivalent(&cover, &expected), "got {cover:?}");
    }

    #[test]
    fn propagated_set_is_closed_under_assured_augmentation() {
        // (isbn, chapterNum) -> chapterName propagated implies the augmented
        // (isbn, chapterNum, name-of-other-assured-attr) variants are found
        // too — here simply check the set contains more than the cover.
        let sigma = example_2_1_keys();
        let rule = example_1_1_refined_chapter();
        let all = naive_propagated_fds(&sigma, &rule);
        let cover = naive_minimum_cover(&sigma, &rule);
        assert!(all.len() >= cover.len());
        assert!(all.contains(&Fd::parse("isbn, chapterNum -> chapterName").unwrap()));
    }

    #[test]
    fn empty_keys_give_empty_cover() {
        let sigma = xmlprop_xmlkeys::KeySet::new();
        let rule = example_1_1_refined_chapter();
        assert!(naive_minimum_cover(&sigma, &rule).is_empty());
    }
}
