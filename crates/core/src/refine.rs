//! End-to-end schema refinement (Examples 1.2 and 3.1).
//!
//! The paper's motivating workflow: start from a universal relation defined
//! by a table rule over the XML data, compute the minimum cover of the FDs
//! propagated from the XML keys, and use it to decompose the universal
//! relation into BCNF (or synthesize 3NF) — producing a consumer relational
//! schema that provably respects the semantics of the XML source.

use crate::{GMinimumCover, PropagationEngine};
use xmlprop_reldb::{
    bcnf_decompose, candidate_keys, synthesize_3nf, AttrUniverse, Decomposition, Fd, FdIndex,
};
use xmlprop_xmlkeys::KeySet;
use xmlprop_xmltransform::TableRule;

/// The result of refining a universal relation design.
///
/// Alongside the printable artifacts, the design keeps the propagated cover
/// interned (an [`AttrUniverse`] plus a prepared [`FdIndex`]) so that
/// [`RefinedDesign::implies`] can validate additional FDs against the cover
/// with a single linear-time closure, without re-running propagation.
#[derive(Debug, Clone)]
pub struct RefinedDesign {
    /// The minimum cover of the propagated FDs.
    pub cover: Vec<Fd>,
    /// Candidate keys of the universal relation under the cover.
    pub universal_keys: Vec<std::collections::BTreeSet<String>>,
    /// A lossless BCNF decomposition guided by the cover.
    pub bcnf: Decomposition,
    /// A dependency-preserving 3NF synthesis guided by the cover.
    pub third_normal_form: Decomposition,
    /// The cover's attribute universe.
    universe: AttrUniverse,
    /// The cover, prepared for linear-time closure queries.
    index: FdIndex,
}

impl RefinedDesign {
    /// Renders the BCNF design as SQL DDL.
    pub fn bcnf_sql(&self) -> String {
        self.bcnf.to_sql()
    }

    /// Renders the 3NF design as SQL DDL.
    pub fn third_normal_form_sql(&self) -> String {
        self.third_normal_form.to_sql()
    }

    /// True if `fd` follows from the propagated cover under Armstrong's
    /// axioms (purely relational implication — for the paper's null-aware
    /// propagation question use [`GMinimumCover::check`] or
    /// [`crate::propagation`]).
    pub fn implies(&self, fd: &Fd) -> bool {
        let lhs = self.universe.lookup_set(fd.lhs());
        let closure = self.index.closure(&lhs);
        fd.rhs().iter().all(|a| {
            fd.lhs().contains(a)
                || self
                    .universe
                    .lookup(a)
                    .is_some_and(|id| closure.contains(id))
        })
    }
}

/// Refines the design of the universal relation defined by `rule`, given the
/// XML keys `sigma`: computes the propagated minimum cover and both
/// normal-form decompositions.
pub fn refine(sigma: &KeySet, rule: &TableRule) -> RefinedDesign {
    refine_from_cover(rule, PropagationEngine::new(sigma, rule).minimum_cover())
}

/// Builds the design artifacts from an already-computed cover.
fn refine_from_cover(rule: &TableRule, cover: Vec<Fd>) -> RefinedDesign {
    let attrs = rule.schema().attribute_set();
    let universal_keys = candidate_keys(&attrs, &cover);
    let bcnf = bcnf_decompose(rule.schema().name(), &attrs, &cover);
    let third_normal_form = synthesize_3nf(rule.schema().name(), &attrs, &cover);
    let mut universe = AttrUniverse::from_fds(&cover);
    let interned: Vec<_> = cover.iter().map(|fd| universe.intern_fd(fd)).collect();
    let index = FdIndex::new(universe.len(), &interned);
    RefinedDesign {
        cover,
        universal_keys,
        bcnf,
        third_normal_form,
        universe,
        index,
    }
}

/// Convenience wrapper: refine and also return a [`GMinimumCover`] checker
/// over the same cover so callers can validate additional FDs cheaply.  One
/// [`PropagationEngine`] serves both the cover computation and the checker.
pub fn refine_with_checker(sigma: &KeySet, rule: &TableRule) -> (RefinedDesign, GMinimumCover) {
    let engine = PropagationEngine::new(sigma, rule);
    let design = refine_from_cover(rule, engine.minimum_cover());
    let checker = GMinimumCover::from_engine(engine);
    (design, checker)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use xmlprop_reldb::attrs;
    use xmlprop_xmlkeys::example_2_1_keys;
    use xmlprop_xmltransform::sample::example_3_1_universal;

    #[test]
    fn example_3_1_bcnf_decomposition() {
        // The paper decomposes U into book, author, chapter and section
        // fragments.  Fragment naming differs (we use U_1…U_n), but the
        // attribute sets must match the printed decomposition, up to the
        // placement of the key-only attributes.
        let sigma = example_2_1_keys();
        let u = example_3_1_universal();
        let design = refine(&sigma, &u);
        assert_eq!(design.cover.len(), 4);
        let sets = design.bcnf.attribute_sets();
        // book(bookIsbn, bookTitle, authContact)
        assert!(
            sets.contains(&attrs(["bookIsbn", "bookTitle", "authContact"]))
                || (sets.contains(&attrs(["bookIsbn", "bookTitle"]))
                    && sets.contains(&attrs(["bookIsbn", "authContact"]))),
            "missing book fragment in {sets:?}"
        );
        // chapter(bookIsbn, chapNum, chapName)
        assert!(
            sets.contains(&attrs(["bookIsbn", "chapNum", "chapName"])),
            "{sets:?}"
        );
        // section(bookIsbn, chapNum, secNum, secName)
        assert!(
            sets.contains(&attrs(["bookIsbn", "chapNum", "secNum", "secName"])),
            "{sets:?}"
        );
        // author appears somewhere, keyed together with the other key
        // attributes it depends on.
        let union: BTreeSet<String> = sets.iter().flatten().cloned().collect();
        assert_eq!(union, u.schema().attribute_set());
        // Every fragment is in BCNF w.r.t. the cover, and the decomposition
        // is lossless (verified by the chase).
        for r in &design.bcnf.relations {
            assert!(xmlprop_reldb::is_bcnf(
                &r.schema.attribute_set(),
                &design.cover
            ));
        }
        assert!(xmlprop_reldb::decomposition_is_lossless(
            &u.schema().attribute_set(),
            &design.bcnf,
            &design.cover
        ));
        assert!(xmlprop_reldb::decomposition_is_lossless(
            &u.schema().attribute_set(),
            &design.third_normal_form,
            &design.cover
        ));
    }

    #[test]
    fn universal_key_contains_all_hierarchy_identifiers() {
        let sigma = example_2_1_keys();
        let u = example_3_1_universal();
        let design = refine(&sigma, &u);
        // bookAuthor, chapNum, secNum and bookIsbn can never be dropped from
        // a key of U (nothing determines them), so every candidate key
        // contains them.
        for key in &design.universal_keys {
            for required in ["bookIsbn", "bookAuthor", "chapNum", "secNum"] {
                assert!(key.contains(required), "key {key:?} lacks {required}");
            }
        }
    }

    #[test]
    fn third_normal_form_is_produced() {
        let sigma = example_2_1_keys();
        let u = example_3_1_universal();
        let design = refine(&sigma, &u);
        assert!(!design.third_normal_form.relations.is_empty());
        for r in &design.third_normal_form.relations {
            assert!(
                xmlprop_reldb::is_3nf(&r.schema.attribute_set(), &design.cover),
                "fragment {} is not in 3NF",
                r.schema
            );
        }
        let sql = design.third_normal_form_sql();
        assert!(sql.contains("CREATE TABLE"));
        assert!(design.bcnf_sql().contains("PRIMARY KEY"));
    }

    #[test]
    fn refine_with_checker_shares_the_cover() {
        let sigma = example_2_1_keys();
        let u = example_3_1_universal();
        let (design, checker) = refine_with_checker(&sigma, &u);
        assert_eq!(design.cover.len(), checker.cover().len());
        assert!(checker.check(&Fd::parse("bookIsbn -> bookTitle").unwrap()));
    }

    #[test]
    fn design_answers_implication_against_the_cover() {
        let sigma = example_2_1_keys();
        let u = example_3_1_universal();
        let design = refine(&sigma, &u);
        // Agreement with the string-based facade on a grid of probes.
        let attrs: Vec<String> = u.schema().attributes().to_vec();
        for a in &attrs {
            for x in &attrs {
                let probe = Fd::to_attr([x.clone()], a.clone());
                assert_eq!(
                    design.implies(&probe),
                    xmlprop_reldb::implies(&design.cover, &probe),
                    "disagreement on {probe}"
                );
            }
        }
        // Unknown attributes are only derivable reflexively.
        assert!(design.implies(&Fd::parse("nosuch -> nosuch").unwrap()));
        assert!(!design.implies(&Fd::parse("bookIsbn -> nosuch").unwrap()));
        assert!(design.implies(&Fd::parse("bookIsbn, chapNum -> chapName").unwrap()));
    }
}
