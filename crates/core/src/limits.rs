//! The undecidability results of Section 3 (Theorems 3.1 and 3.2).
//!
//! These theorems are *negative* results; no algorithm can exist for the
//! problems they describe, so this module documents them and provides the
//! small constructions the reductions rest on, which the examples and tests
//! use to illustrate why the framework restricts itself to:
//!
//! * keys only (no foreign keys), and
//! * the projection / Cartesian-product transformation language of
//!   Definition 2.2 (no selection or set difference).
//!
//! # Theorem 3.1 — rich transformation languages
//!
//! > The key propagation problem from XML to relational data is undecidable
//! > when the transformation language can express all relational algebra
//! > operators.
//!
//! The reduction is from equivalence of relational algebra queries: given
//! queries `Q1`, `Q2`, build a transformation whose output relation is empty
//! iff `Q1 ≡ Q2`; a suitable FD then holds iff the queries are equivalent.
//! Since our language deliberately omits selection and difference, this
//! result does not apply to it — that is the point.
//!
//! # Theorem 3.2 — keys *and foreign keys*
//!
//! > The propagation problem for XML keys and foreign keys is undecidable
//! > for any transformation language that can express the identity mapping.
//!
//! The reduction is from implication of relational keys and foreign keys
//! (undecidable, Fan & Libkin JACM 2002) using the **identity mapping**: a
//! relational database is represented as XML in the obvious way and mapped
//! back to the same relations by table rules whose paths have length one.
//! [`identity_rule`] builds exactly that mapping so that examples can show
//! the encoding; the paper concludes that constraint propagation must be
//! restricted to keys, which is what the rest of this crate implements.

use xmlprop_reldb::RelationSchema;
use xmlprop_xmltransform::{parse_single_rule, TableRule};

/// Builds the identity table rule used in the Theorem 3.2 reduction: a
/// relation `R(a1, …, an)` is encoded in XML as
/// `<db><R><a1>…</a1>…<an>…</an></R>…</db>` and mapped back to itself with
/// paths of length one.
pub fn identity_rule(schema: &RelationSchema) -> TableRule {
    let mut text = String::new();
    text.push_str(&format!(
        "rule {}({}) {{\n",
        schema.name(),
        schema.attributes().join(", ")
    ));
    text.push_str(&format!("    row := xr//{};\n", schema.name()));
    for (i, attr) in schema.attributes().iter().enumerate() {
        text.push_str(&format!("    v{i} := row/{attr};\n"));
    }
    for (i, attr) in schema.attributes().iter().enumerate() {
        text.push_str(&format!("    {attr} := value(v{i});\n"));
    }
    text.push('}');
    parse_single_rule(&text).expect("the identity rule is well-formed by construction")
}

/// The XML encoding of a relational tuple set used by the identity mapping,
/// for illustration in examples and tests.
pub fn encode_relation_as_xml(relation: &xmlprop_reldb::Relation) -> xmlprop_xmltree::Document {
    let mut doc = xmlprop_xmltree::Document::new("db");
    let root = doc.root();
    for row in relation.rows() {
        let row_node = doc.add_element(root, relation.schema().name());
        for (attr, value) in relation.schema().attributes().iter().zip(row.values()) {
            if let Some(text) = value.as_text() {
                let cell = doc.add_element(row_node, attr.clone());
                doc.add_text(cell, text);
            }
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_reldb::{Relation, RelationSchema, Value};

    #[test]
    fn identity_rule_roundtrips_a_relation() {
        let schema = RelationSchema::new("emp", ["id", "name", "dept"]);
        let mut relation = Relation::new(schema.clone());
        relation.insert(["1", "ada", "eng"].into_iter().collect());
        relation.insert(["2", "bob", "ops"].into_iter().collect());

        let doc = encode_relation_as_xml(&relation);
        let rule = identity_rule(&schema);
        let back = rule.shred(&doc);
        assert_eq!(back.schema().attributes(), schema.attributes());
        assert_eq!(back.len(), 2);
        let names: Vec<String> = back
            .rows()
            .iter()
            .map(|r| back.value(r, "name").to_string())
            .collect();
        assert_eq!(names, vec!["ada", "bob"]);
    }

    #[test]
    fn nulls_are_skipped_in_the_encoding_and_restored_by_shredding() {
        let schema = RelationSchema::new("t", ["a", "b"]);
        let mut relation = Relation::new(schema.clone());
        relation.insert(xmlprop_reldb::Tuple::new(vec![
            Value::text("x"),
            Value::Null,
        ]));
        let doc = encode_relation_as_xml(&relation);
        let back = identity_rule(&schema).shred(&doc);
        assert_eq!(back.len(), 1);
        assert!(back.value(&back.rows()[0], "b").is_null());
        assert_eq!(back.value(&back.rows()[0], "a").to_string(), "x");
    }

    #[test]
    fn identity_rule_paths_have_length_one_below_the_row() {
        let schema = RelationSchema::new("r", ["a", "b", "c"]);
        let rule = identity_rule(&schema);
        let tree = rule.table_tree();
        for var in tree
            .variables()
            .iter()
            .filter(|v| *v != "xr" && *v != "row")
        {
            assert_eq!(tree.edge_path(var).unwrap().len(), 1);
            assert_eq!(tree.parent(var), Some("row"));
        }
    }
}
