//! Algorithm `propagation` (Fig. 5): checking XML key propagation.
//!
//! The free functions here are one-shot facades: each call prepares a
//! [`PropagationEngine`] for the `(Σ, rule)` pair and runs the prepared
//! walk.  Callers probing many FDs against the same pair should build the
//! engine once ([`crate::PropagationEngine`]) or use the batch
//! [`propagate_all`]; the pre-engine implementation is retained below as a
//! `#[cfg(test)]` oracle pinned by agreement tests.

use crate::PropagationEngine;
use std::collections::BTreeSet;
use xmlprop_reldb::Fd;
use xmlprop_xmlkeys::KeySet;
use xmlprop_xmltransform::TableRule;

/// The detailed result of a propagation check for a single FD `X → A`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationOutcome {
    /// The field `A` the outcome refers to (right-hand side attribute).
    pub field: String,
    /// True if the FD `X → A` is propagated from the keys.
    pub propagated: bool,
    /// The lowest ancestor variable of `A`'s variable that the algorithm
    /// proved to be transitively keyed by fields of `X` and under which the
    /// `A` variable is unique — `None` when no such ancestor was found.
    pub keyed_ancestor: Option<String>,
    /// Fields of `X` that could not be shown to be non-null whenever `A` is
    /// non-null (the `Ycheck` residue of Fig. 5).  Must be empty for the FD
    /// to be propagated.
    pub unresolved_fields: BTreeSet<String>,
}

impl PropagationOutcome {
    pub(crate) fn rejected(field: &str, x_fields: &[&str]) -> Self {
        PropagationOutcome {
            field: field.to_string(),
            propagated: false,
            keyed_ancestor: None,
            unresolved_fields: x_fields.iter().map(|f| f.to_string()).collect(),
        }
    }
}

/// Checks whether the FD `fd` over the relation defined by `rule` is
/// propagated from the XML keys `sigma`: `Σ ⊨_σ fd` in the paper's notation.
///
/// A multi-attribute right-hand side `X → {A1, …, Ak}` is checked as the `k`
/// FDs `X → Ai` (equivalent under both the classical and the paper's
/// null-aware FD semantics).
///
/// Fields that do not belong to the rule's schema make the FD
/// non-propagated (rather than panicking), so callers can probe freely.
///
/// # Reconstruction note
///
/// The scanned pseudocode of Fig. 5 is partly illegible; following the
/// prose and both traces of Example 4.2 the implementation (a) walks the
/// *proper* ancestors of `A`'s variable top-down, (b) only tests uniqueness
/// of the variable under an ancestor once that ancestor has been shown to
/// be keyed (context has moved to it), and (c) initializes the `Ycheck` set
/// to `X \ {A}` so that a trivial FD does not demand an existence guarantee
/// for its own right-hand side.
pub fn propagation(sigma: &KeySet, rule: &TableRule, fd: &Fd) -> bool {
    PropagationEngine::new(sigma, rule).propagation(fd)
}

/// Like [`propagation`] but returns one [`PropagationOutcome`] per
/// right-hand-side attribute, for diagnostics and examples.
pub fn propagation_explained(sigma: &KeySet, rule: &TableRule, fd: &Fd) -> Vec<PropagationOutcome> {
    PropagationEngine::new(sigma, rule).propagation_explained(fd)
}

/// Batch propagation: prepares the `(Σ, rule)` pair once and answers every
/// FD of `fds` against the shared state — one verdict per FD, in order.
pub fn propagate_all(sigma: &KeySet, rule: &TableRule, fds: &[Fd]) -> Vec<bool> {
    PropagationEngine::new(sigma, rule).propagate_all(fds)
}

/// The pre-engine implementation (per-probe path construction, string-based
/// implication), kept verbatim as the reference oracle that pins the
/// prepared engine.
#[cfg(test)]
pub(crate) mod oracle {
    use super::*;
    use xmlprop_xmlkeys::{attributes_assured, implies, node_unique_under, XmlKey};
    use xmlprop_xmltransform::TableTree;

    /// `propagation` as originally written.
    pub fn propagation(sigma: &KeySet, rule: &TableRule, fd: &Fd) -> bool {
        let x_fields: Vec<&str> = fd.lhs().iter().map(String::as_str).collect();
        fd.rhs()
            .iter()
            .all(|a| propagation_single(sigma, rule, &x_fields, a).propagated)
    }

    /// `propagation_explained` as originally written.
    pub fn propagation_explained(
        sigma: &KeySet,
        rule: &TableRule,
        fd: &Fd,
    ) -> Vec<PropagationOutcome> {
        let x_fields: Vec<&str> = fd.lhs().iter().map(String::as_str).collect();
        fd.rhs()
            .iter()
            .map(|a| propagation_single(sigma, rule, &x_fields, a))
            .collect()
    }

    fn propagation_single(
        sigma: &KeySet,
        rule: &TableRule,
        x_fields: &[&str],
        a_field: &str,
    ) -> PropagationOutcome {
        let tree = rule.table_tree();

        let Some(x_var) = rule.field_var(a_field) else {
            return PropagationOutcome::rejected(a_field, x_fields);
        };
        if x_fields.iter().any(|f| rule.field_var(f).is_none()) {
            return PropagationOutcome::rejected(a_field, x_fields);
        }

        let ancestors = tree.ancestors_from_root(x_var);

        let mut ycheck_pending: Vec<bool> = x_fields.iter().map(|f| *f != a_field).collect();
        let mut ycheck_len = ycheck_pending.iter().filter(|p| **p).count();

        let mut key_found = x_fields.contains(&a_field);
        let mut keyed_ancestor = if key_found {
            Some(x_var.to_string())
        } else {
            None
        };

        let mut context = tree.root().to_string();

        for target in &ancestors[..ancestors.len().saturating_sub(1)] {
            let beta = attributes_of_target_in_x(rule, &tree, target, x_fields);
            let beta_attrs: Vec<&str> = beta.iter().map(|(attr, _)| attr.as_str()).collect();

            if !key_found {
                let context_position = tree.path_from_root(&context);
                let relative = tree
                    .path_between(&context, target)
                    .expect("target is a descendant of every previous context");
                let probe = XmlKey::new(context_position, relative, beta_attrs.iter().copied());
                if implies(sigma, &probe) {
                    context = target.clone();
                    let target_position = tree.path_from_root(target);
                    let to_x = tree
                        .path_between(target, x_var)
                        .expect("x is a descendant of its ancestor");
                    if node_unique_under(sigma, &target_position, &to_x) {
                        key_found = true;
                        keyed_ancestor = Some(target.clone());
                    }
                }
            }

            if !beta.is_empty() {
                let target_position = tree.path_from_root(target);
                if attributes_assured(sigma, &target_position, beta_attrs.iter().copied()) {
                    for (_, field) in &beta {
                        if let Ok(i) = x_fields.binary_search(field) {
                            if ycheck_pending[i] {
                                ycheck_pending[i] = false;
                                ycheck_len -= 1;
                            }
                        }
                    }
                }
            }
        }

        PropagationOutcome {
            field: a_field.to_string(),
            propagated: key_found && ycheck_len == 0,
            keyed_ancestor,
            unresolved_fields: x_fields
                .iter()
                .zip(&ycheck_pending)
                .filter(|(_, pending)| **pending)
                .map(|(f, _)| f.to_string())
                .collect(),
        }
    }

    fn attributes_of_target_in_x<'a>(
        rule: &TableRule,
        tree: &TableTree,
        target: &str,
        x_fields: &[&'a str],
    ) -> Vec<(String, &'a str)> {
        let mut out = Vec::new();
        for &field in x_fields {
            let Some(var) = rule.field_var(field) else {
                continue;
            };
            let Some(parent) = tree.parent(var) else {
                continue;
            };
            if parent != target {
                continue;
            }
            let path = tree
                .edge_path(var)
                .expect("non-root variable has an edge path");
            if let [xmlprop_xmlpath::Atom::Label(label)] = path.atoms() {
                if label.starts_with('@') {
                    out.push((label.clone(), field));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_xmlkeys::{example_2_1_keys, XmlKey};
    use xmlprop_xmltransform::sample::{
        example_1_1_initial_chapter, example_1_1_refined_chapter, example_2_4_transformation,
        example_3_1_universal,
    };
    use xmlprop_xmltransform::Transformation;

    fn fd(s: &str) -> Fd {
        Fd::parse(s).unwrap()
    }

    #[test]
    fn example_4_2_positive_case() {
        // isbn -> contact over Rule(book) is propagated.
        let sigma = example_2_1_keys();
        let t = example_2_4_transformation();
        let rule = t.rule("book").unwrap();
        assert!(propagation(&sigma, rule, &fd("isbn -> contact")));
        let outcome = &propagation_explained(&sigma, rule, &fd("isbn -> contact"))[0];
        assert!(outcome.propagated);
        assert_eq!(outcome.keyed_ancestor.as_deref(), Some("xa"));
        assert!(outcome.unresolved_fields.is_empty());
    }

    #[test]
    fn example_4_2_negative_case() {
        // (inChapt, number) -> name over Rule(section) is NOT propagated:
        // section numbers are only unique within a chapter, and the chapter
        // is only identified relative to a book, whose isbn is not a field.
        let sigma = example_2_1_keys();
        let t = example_2_4_transformation();
        let rule = t.rule("section").unwrap();
        let fd = fd("inChapt, number -> name");
        assert!(!propagation(&sigma, rule, &fd));
        let outcome = &propagation_explained(&sigma, rule, &fd)[0];
        assert!(!outcome.propagated);
        assert!(outcome.keyed_ancestor.is_none());
        // Both LHS fields are assured to exist; the failure is the missing key.
        assert!(outcome.unresolved_fields.is_empty());
    }

    #[test]
    fn headline_fd_of_example_1_1() {
        // (isbn, chapterNum) -> chapterName on the refined Chapter design is
        // guaranteed; (bookTitle, chapterNum) -> chapterName on the initial
        // design is not.
        let sigma = example_2_1_keys();
        let refined = example_1_1_refined_chapter();
        assert!(propagation(
            &sigma,
            &refined,
            &fd("isbn, chapterNum -> chapterName")
        ));
        let initial = example_1_1_initial_chapter();
        assert!(!propagation(
            &sigma,
            &initial,
            &fd("bookTitle, chapterNum -> chapterName")
        ));
    }

    #[test]
    fn chapter_rule_key_is_propagated() {
        let sigma = example_2_1_keys();
        let t = example_2_4_transformation();
        let rule = t.rule("chapter").unwrap();
        assert!(propagation(&sigma, rule, &fd("inBook, number -> name")));
        // Dropping inBook breaks it: chapter numbers repeat across books.
        assert!(!propagation(&sigma, rule, &fd("number -> name")));
        // And inBook alone does not determine the chapter name.
        assert!(!propagation(&sigma, rule, &fd("inBook -> name")));
    }

    #[test]
    fn book_rule_fds() {
        let sigma = example_2_1_keys();
        let t = example_2_4_transformation();
        let rule = t.rule("book").unwrap();
        assert!(propagation(&sigma, rule, &fd("isbn -> title")));
        assert!(propagation(&sigma, rule, &fd("isbn -> contact")));
        // A book may have several authors: isbn -> author must NOT propagate.
        assert!(!propagation(&sigma, rule, &fd("isbn -> author")));
        // title is not a key for books (two books share "XML" in Fig. 1).
        assert!(!propagation(&sigma, rule, &fd("title -> isbn")));
        assert!(!propagation(&sigma, rule, &fd("title -> contact")));
    }

    #[test]
    fn multi_attribute_rhs_decomposes() {
        let sigma = example_2_1_keys();
        let t = example_2_4_transformation();
        let rule = t.rule("book").unwrap();
        assert!(propagation(&sigma, rule, &fd("isbn -> title, contact")));
        assert!(!propagation(&sigma, rule, &fd("isbn -> title, author")));
    }

    #[test]
    fn trivial_fds() {
        let sigma = example_2_1_keys();
        let t = example_2_4_transformation();
        let rule = t.rule("book").unwrap();
        // A -> A always propagates.
        assert!(propagation(&sigma, rule, &fd("author -> author")));
        // (isbn, author) -> author: trivial key-wise, but condition (1) of
        // the null semantics requires isbn to be non-null whenever author is;
        // isbn is assured on //book by K1, so this holds.
        assert!(propagation(&sigma, rule, &fd("isbn, author -> author")));
        // (title, author) -> author: title is an element field, not an
        // assured attribute, so the existence condition fails.
        assert!(!propagation(&sigma, rule, &fd("title, author -> author")));
    }

    #[test]
    fn unknown_fields_are_rejected_not_panicking() {
        let sigma = example_2_1_keys();
        let t = example_2_4_transformation();
        let rule = t.rule("book").unwrap();
        assert!(!propagation(&sigma, rule, &fd("isbn -> nosuchfield")));
        assert!(!propagation(&sigma, rule, &fd("nosuchfield -> title")));
    }

    #[test]
    fn universal_relation_fds_of_example_3_1() {
        let sigma = example_2_1_keys();
        let u = example_3_1_universal();
        for good in [
            "bookIsbn -> bookTitle",
            "bookIsbn -> authContact",
            "bookIsbn, chapNum -> chapName",
            "bookIsbn, chapNum, secNum -> secName",
        ] {
            assert!(
                propagation(&sigma, &u, &fd(good)),
                "{good} should be propagated"
            );
        }
        for bad in [
            "bookIsbn -> bookAuthor",
            "bookIsbn -> chapName",
            "chapNum -> chapName",
            "bookIsbn, secNum -> secName",
            "bookTitle -> bookIsbn",
            "bookIsbn, chapNum -> secName",
        ] {
            assert!(
                !propagation(&sigma, &u, &fd(bad)),
                "{bad} should NOT be propagated"
            );
        }
    }

    #[test]
    fn empty_sigma_propagates_only_trivial_like_fds() {
        let sigma = KeySet::new();
        let t = example_2_4_transformation();
        let rule = t.rule("book").unwrap();
        assert!(!propagation(&sigma, rule, &fd("isbn -> title")));
        assert!(propagation(&sigma, rule, &fd("author -> author")));
        // Even trivial-with-extra-attribute FDs fail: nothing assures isbn.
        assert!(!propagation(&sigma, rule, &fd("isbn, author -> author")));
    }

    #[test]
    fn constant_fields_under_a_unique_root_path() {
        // A field bound to a node unique in the whole document is determined
        // by the empty set of attributes.
        let sigma: KeySet = [
            XmlKey::parse("(ε, (library, {}))").unwrap(),
            XmlKey::parse("(library, (name, {}))").unwrap(),
        ]
        .into_iter()
        .collect();
        let t = Transformation::parse(
            "rule meta(libname) {
                l := xr/library;
                n := l/name;
                libname := value(n);
            }",
        )
        .unwrap();
        let rule = t.rule("meta").unwrap();
        assert!(propagation(&sigma, rule, &fd(" -> libname")));
    }

    #[test]
    fn batch_facade_matches_single_calls() {
        let sigma = example_2_1_keys();
        let u = example_3_1_universal();
        let probes = vec![
            fd("bookIsbn -> bookTitle"),
            fd("bookIsbn -> bookAuthor"),
            fd("bookIsbn, chapNum -> chapName"),
        ];
        assert_eq!(
            propagate_all(&sigma, &u, &probes),
            probes
                .iter()
                .map(|f| propagation(&sigma, &u, f))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn engine_matches_oracle_on_probe_grids() {
        // The prepared engine and the pre-engine oracle must return
        // identical outcomes (verdict, keyed ancestor and Ycheck residue)
        // over an exhaustive grid of 1- and 2-field left-hand sides on
        // every sample rule.
        let sigma = example_2_1_keys();
        let t = example_2_4_transformation();
        let mut rules: Vec<TableRule> = t.rules().to_vec();
        rules.push(example_3_1_universal());
        rules.push(example_1_1_refined_chapter());
        for rule in &rules {
            let engine = PropagationEngine::new(&sigma, rule);
            let attrs: Vec<String> = rule.schema().attributes().to_vec();
            for a in &attrs {
                for x in &attrs {
                    let probe = Fd::to_attr([x.clone()], a.clone());
                    assert_eq!(
                        engine.propagation_explained(&probe),
                        oracle::propagation_explained(&sigma, rule, &probe),
                        "disagreement on {probe} over {}",
                        rule.schema().name()
                    );
                    for y in &attrs {
                        if x >= y {
                            continue;
                        }
                        let probe = Fd::to_attr([x.clone(), y.clone()], a.clone());
                        assert_eq!(
                            engine.propagation(&probe),
                            oracle::propagation(&sigma, rule, &probe),
                            "disagreement on {probe} over {}",
                            rule.schema().name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn soundness_against_shredded_instances() {
        // Whatever propagation accepts must hold, under the paper's null
        // semantics, on the shredded instance of a document satisfying Σ.
        let sigma = example_2_1_keys();
        let t = example_2_4_transformation();
        let doc = xmlprop_xmltree::sample::fig1();
        let fields = ["isbn", "title", "author", "contact"];
        let rule = t.rule("book").unwrap();
        let rel = rule.shred(&doc);
        for a in fields {
            // All single-attribute LHS choices.
            for x in fields {
                let fd = Fd::to_attr([x], a);
                if propagation(&sigma, rule, &fd) {
                    assert!(
                        rel.satisfies_fd_paper(&fd),
                        "propagation accepted {fd} but the Fig. 1 instance violates it"
                    );
                }
            }
        }
    }
}
