//! The prepared propagation engine: one [`KeyIndex`] + one compiled table
//! tree, reused across an entire grid of candidate FDs.
//!
//! The free functions of this crate ([`crate::propagation`],
//! [`crate::minimum_cover`], …) answer one question per call, recompiling
//! the key set and the rule's tree paths each time.  A
//! [`PropagationEngine`] does that preparation once per `(Σ, rule)` pair:
//!
//! * Σ is prepared into a [`KeyIndex`] (compiled context/target/absolute
//!   paths, precompiled target-to-context splits, assured-attribute index);
//! * every table-tree variable's position `path(xr, v)` and every
//!   ancestor-relative path `path(u, v)` is compiled against the same
//!   [`xmlprop_xmlpath::LabelUniverse`], so the Fig. 5 walk and the
//!   Section 5 transitive-key bookkeeping probe the key index with
//!   ready-made expressions and no per-probe path construction;
//! * per-variable attribute edges (which fields they populate, whether
//!   their existence is assured by Σ) are resolved up front for the
//!   `Ycheck` analysis and the `GminimumCover` non-null condition.
//!
//! The engine exposes the paper's algorithms as methods —
//! [`PropagationEngine::propagation`],
//! [`PropagationEngine::minimum_cover`], the batch
//! [`PropagationEngine::propagate_all`] — and the free functions are
//! one-shot facades over it.

use crate::mincover::CoverStats;
use crate::propagation::PropagationOutcome;
use std::collections::BTreeMap;
use xmlprop_reldb::intern::minimize_interned;
use xmlprop_reldb::{AttrSet, AttrUniverse, Fd, IFd};
use xmlprop_xmlkeys::{KeyIndex, KeySet};
use xmlprop_xmlpath::{CompiledExpr, LabelId};
use xmlprop_xmltransform::{TableRule, TableTree};

/// One table-tree variable in compiled form.
#[derive(Debug, Clone)]
struct VarData {
    /// The variable's name.
    name: String,
    /// Indices of the ancestors from the root down to this variable
    /// (inclusive); `ancestors[d]` is the ancestor at depth `d`.
    ancestors: Vec<usize>,
    /// The compiled position `path(xr, v)`.
    position: CompiledExpr,
    /// Parallel to `ancestors`: the compiled relative path
    /// `path(ancestors[d], v)` (the last entry is `ε`).
    rel_from_ancestor: Vec<CompiledExpr>,
    /// Children reached through a single `@attr` edge that populate a
    /// field: `(attribute id, field name)`, sorted by id (ties keep
    /// field-rule order).
    attr_children: Vec<(LabelId, String)>,
    /// If this variable's own edge is a single `@attr` label: its id.
    edge_attr: Option<LabelId>,
}

/// A prepared `(Σ, rule)` pair answering propagation and minimum-cover
/// questions from precompiled state; see the module docs.
#[derive(Debug, Clone)]
pub struct PropagationEngine {
    sigma: KeySet,
    rule: TableRule,
    tree: TableTree,
    keys: KeyIndex,
    vars: Vec<VarData>,
    var_index: BTreeMap<String, usize>,
    /// Field name → index of the variable populating it (first field rule
    /// wins, like [`TableRule::field_var`]).
    field_var: BTreeMap<String, usize>,
}

impl PropagationEngine {
    /// Prepares Σ and the rule's table tree for repeated queries.
    pub fn new(sigma: &KeySet, rule: &TableRule) -> Self {
        Self::from_owned(sigma.clone(), rule.clone())
    }

    /// The `prepare`-shaped constructor, matching
    /// [`xmlprop_xmlkeys::KeySet::prepare`] and
    /// [`xmlprop_xmltransform::Transformation::prepare`]: every compiled
    /// layer spells its one-time preparation the same way.  Identical to
    /// [`PropagationEngine::new`].
    pub fn prepare(sigma: &KeySet, rule: &TableRule) -> Self {
        Self::new(sigma, rule)
    }

    /// Like [`PropagationEngine::new`] but takes ownership of the key set
    /// and rule, avoiding the clones.
    pub fn from_owned(sigma: KeySet, rule: TableRule) -> Self {
        let tree = rule.table_tree();
        let mut keys = KeyIndex::new(&sigma);

        let names: Vec<String> = tree.variables().to_vec();
        let var_index: BTreeMap<String, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();

        // Compile each variable's position and ancestor-relative paths
        // incrementally: `path(u, v) = path(u, parent(v)) ⋅ edge(v)`, all at
        // the interned-atom level — only the edge paths themselves go
        // through string interning (the topological variable order
        // guarantees the parent's data is already built).
        let mut vars: Vec<VarData> = Vec::with_capacity(names.len());
        for name in &names {
            let chain = tree.ancestors_from_root(name);
            let ancestors: Vec<usize> = chain.iter().map(|u| var_index[u]).collect();
            let (position, rel_from_ancestor) = match tree.edge_path(name) {
                None => (CompiledExpr::epsilon(), vec![CompiledExpr::epsilon()]),
                Some(edge_path) => {
                    let edge = keys.compile(edge_path);
                    let parent = &vars[ancestors[ancestors.len() - 2]];
                    let mut rel: Vec<CompiledExpr> = parent
                        .rel_from_ancestor
                        .iter()
                        .map(|r| r.concat(&edge))
                        .collect();
                    rel.push(CompiledExpr::epsilon());
                    (parent.position.concat(&edge), rel)
                }
            };
            let edge_attr = match tree.edge_path(name).map(xmlprop_xmlpath::PathExpr::atoms) {
                Some([xmlprop_xmlpath::Atom::Label(label)]) if label.starts_with('@') => {
                    Some(keys.intern_label(label))
                }
                _ => None,
            };
            vars.push(VarData {
                name: name.clone(),
                ancestors,
                position,
                rel_from_ancestor,
                attr_children: Vec::new(),
                edge_attr,
            });
        }

        // Attribute edges populating fields, grouped under the parent.
        for fr in rule.field_rules() {
            let Some(&v) = var_index.get(&fr.var) else {
                continue;
            };
            let Some(attr) = vars[v].edge_attr else {
                continue;
            };
            let parent = vars[v].ancestors[vars[v].ancestors.len() - 2];
            vars[parent].attr_children.push((attr, fr.field.clone()));
        }
        for v in &mut vars {
            v.attr_children.sort_by_key(|(id, _)| *id);
        }

        let mut field_var = BTreeMap::new();
        for fr in rule.field_rules() {
            if let Some(&v) = var_index.get(&fr.var) {
                field_var.entry(fr.field.clone()).or_insert(v);
            }
        }

        PropagationEngine {
            sigma,
            rule,
            tree,
            keys,
            vars,
            var_index,
            field_var,
        }
    }

    /// The key set this engine was prepared for.
    pub fn sigma(&self) -> &KeySet {
        &self.sigma
    }

    /// The table rule this engine was prepared for.
    pub fn rule(&self) -> &TableRule {
        &self.rule
    }

    /// The prepared key index (for callers issuing their own implication
    /// probes against the same Σ).
    pub fn key_index(&self) -> &KeyIndex {
        &self.keys
    }

    /// Checks whether the FD `fd` over the prepared rule is propagated from
    /// the prepared keys: `Σ ⊨_σ fd` — the method form of
    /// [`crate::propagation`].
    pub fn propagation(&self, fd: &Fd) -> bool {
        let x_fields: Vec<&str> = fd.lhs().iter().map(String::as_str).collect();
        fd.rhs()
            .iter()
            .all(|a| self.propagation_single(&x_fields, a).propagated)
    }

    /// Like [`PropagationEngine::propagation`] but returns one
    /// [`PropagationOutcome`] per right-hand-side attribute.
    pub fn propagation_explained(&self, fd: &Fd) -> Vec<PropagationOutcome> {
        let x_fields: Vec<&str> = fd.lhs().iter().map(String::as_str).collect();
        fd.rhs()
            .iter()
            .map(|a| self.propagation_single(&x_fields, a))
            .collect()
    }

    /// Batch entry point: one verdict per FD, reusing the prepared state
    /// across the whole grid.
    pub fn propagate_all(&self, fds: &[Fd]) -> Vec<bool> {
        fds.iter().map(|fd| self.propagation(fd)).collect()
    }

    /// Propagation for callers that already hold the left-hand side as a
    /// sorted, duplicate-free field slice (the `naive` enumeration, the
    /// consistency checker): avoids materializing an [`Fd`] per probe.
    pub fn propagation_fields(&self, x_fields: &[&str], a_field: &str) -> bool {
        self.propagation_single(x_fields, a_field).propagated
    }

    /// The Fig. 5 algorithm for a single FD `X → A`, over prepared state.
    ///
    /// See `crate::propagation` for the reconstruction notes; this is the
    /// same walk with every path precompiled and every implication probe
    /// answered by the key index.
    fn propagation_single(&self, x_fields: &[&str], a_field: &str) -> PropagationOutcome {
        debug_assert!(
            x_fields.windows(2).all(|w| w[0] < w[1]),
            "x_fields must be sorted and duplicate-free"
        );

        // Every mentioned field must exist in the schema.
        let Some(&x_var) = self.field_var.get(a_field) else {
            return PropagationOutcome::rejected(a_field, x_fields);
        };
        if x_fields.iter().any(|f| !self.field_var.contains_key(*f)) {
            return PropagationOutcome::rejected(a_field, x_fields);
        }
        let xv = &self.vars[x_var];

        // Fields of X that still need an existence guarantee.
        let mut ycheck_pending: Vec<bool> = x_fields.iter().map(|f| *f != a_field).collect();
        let mut ycheck_len = ycheck_pending.iter().filter(|p| **p).count();

        // A trivial FD (A ∈ X) needs no key.
        let mut key_found = x_fields.contains(&a_field);
        let mut keyed_ancestor = if key_found {
            Some(xv.name.clone())
        } else {
            None
        };

        // The keyed context, as a depth into x's ancestor chain.
        let mut context_depth = 0usize;

        // Scratch for the β attribute sets (the only per-probe allocation).
        let mut beta: Vec<(LabelId, &str)> = Vec::new();
        let mut beta_ids: Vec<LabelId> = Vec::new();

        // Walk the proper ancestors of x top-down.
        for (depth, &t) in xv.ancestors[..xv.ancestors.len() - 1].iter().enumerate() {
            let tv = &self.vars[t];

            // The attributes of `t` that populate fields of X (ids sorted,
            // deduplicated; a duplicated attribute keeps every field).
            beta.clear();
            beta_ids.clear();
            for (id, field) in &tv.attr_children {
                if x_fields.binary_search(&field.as_str()).is_ok() {
                    beta.push((*id, field.as_str()));
                    if beta_ids.last() != Some(id) {
                        beta_ids.push(*id);
                    }
                }
            }

            if !key_found {
                // Is `t` keyed (by β) relative to the current keyed context?
                let context_position = &self.vars[xv.ancestors[context_depth]].position;
                let relative = &tv.rel_from_ancestor[context_depth];
                if self
                    .keys
                    .implies_parts(context_position, relative, &tv.position, &beta_ids)
                {
                    // Move the context down, then test uniqueness of x
                    // under the (now keyed) target.
                    context_depth = depth;
                    let to_x = &xv.rel_from_ancestor[depth];
                    if self
                        .keys
                        .node_unique_under(&tv.position, to_x, &xv.position)
                    {
                        key_found = true;
                        keyed_ancestor = Some(tv.name.clone());
                    }
                }
            }

            // Existence analysis for the Ycheck bookkeeping.
            if !beta.is_empty() && self.keys.attributes_assured(&tv.position, &beta_ids) {
                for (_, field) in &beta {
                    if let Ok(i) = x_fields.binary_search(field) {
                        if ycheck_pending[i] {
                            ycheck_pending[i] = false;
                            ycheck_len -= 1;
                        }
                    }
                }
            }
        }

        PropagationOutcome {
            field: a_field.to_string(),
            propagated: key_found && ycheck_len == 0,
            keyed_ancestor,
            unresolved_fields: x_fields
                .iter()
                .zip(&ycheck_pending)
                .filter(|(_, pending)| **pending)
                .map(|(f, _)| f.to_string())
                .collect(),
        }
    }

    /// Computes a minimum cover of all the FDs propagated onto the prepared
    /// rule — the method form of [`crate::minimum_cover`].
    pub fn minimum_cover(&self) -> Vec<Fd> {
        self.minimum_cover_with_stats().0
    }

    /// Like [`PropagationEngine::minimum_cover`] but also reports
    /// [`CoverStats`].  Same algorithm as the facade (see
    /// `crate::minimum_cover` for the reconstruction notes); every
    /// implication probe runs against the prepared key index.
    pub fn minimum_cover_with_stats(&self) -> (Vec<Fd>, CoverStats) {
        let mut stats = CoverStats::default();

        // Intern the universal relation's fields once (sorted, matching the
        // historical string-set ordering for canonical-key tie-breaking).
        let universe = AttrUniverse::from_names(
            self.rule
                .schema()
                .attributes()
                .iter()
                .map(String::as_str)
                .chain(self.rule.field_rules().iter().map(|fr| fr.field.as_str())),
        );

        // Canonical transitive key of each keyed variable (by name, so the
        // FD-generation loop below iterates in the historical order).
        let mut canonical: BTreeMap<&str, AttrSet> = BTreeMap::new();
        canonical.insert(self.tree.root(), AttrSet::new());

        let mut fds: Vec<IFd> = Vec::new();

        let field_of_var: BTreeMap<&str, &str> = self
            .rule
            .field_rules()
            .iter()
            .map(|fr| (fr.var.as_str(), fr.field.as_str()))
            .collect();

        // Top-down traversal (parents before children).
        for (vi, vd) in self.vars.iter().enumerate() {
            if vi == 0 {
                continue; // the root
            }
            let mut candidates: Vec<AttrSet> = Vec::new();
            for (depth, &u) in vd.ancestors[..vd.ancestors.len() - 1].iter().enumerate() {
                let Some(k_u) = canonical.get(self.vars[u].name.as_str()).cloned() else {
                    continue;
                };
                let u_position = &self.vars[u].position;
                let relative = &vd.rel_from_ancestor[depth];

                // The "unique under" step: v inherits u's key outright.
                stats.implication_calls += 1;
                if self
                    .keys
                    .node_unique_under(u_position, relative, &vd.position)
                {
                    candidates.push(k_u.clone());
                }

                // One key of Σ per level, restricted to attributes that are
                // mapped to fields of the universal relation on `v`.
                if vd.attr_children.is_empty() {
                    continue;
                }
                for key in self.keys.keys() {
                    if key.attrs().is_empty() {
                        continue; // covered by the unique-under step
                    }
                    let Some(fields) = self.fields_for_attrs(&universe, vd, key.attrs()) else {
                        continue;
                    };
                    stats.implication_calls += 1;
                    if self
                        .keys
                        .implies_parts(u_position, relative, &vd.position, key.attrs())
                    {
                        let mut k_v = k_u.clone();
                        k_v.union_with(&fields);
                        candidates.push(k_v);
                    }
                }
            }

            if candidates.is_empty() {
                continue;
            }
            candidates.sort_by_cached_key(|k| universe.names_key(k));
            candidates.dedup();
            let chosen = candidates[0].clone();

            // Equivalence FDs between the canonical key and every
            // alternative, in both directions.
            for alt in &candidates[1..] {
                for field in alt.difference(&chosen).iter() {
                    fds.push(IFd::new(chosen.clone(), std::iter::once(field).collect()));
                }
                for field in chosen.difference(alt).iter() {
                    fds.push(IFd::new(alt.clone(), std::iter::once(field).collect()));
                }
            }

            canonical.insert(vd.name.as_str(), chosen);
        }

        stats.keyed_variables = canonical.len();

        // FD generation: for each keyed variable `v` and each field `A`
        // defined by a variable `w` unique under `v`, emit K(v) → A.
        for (var, key_fields) in &canonical {
            let v = self.var_index[*var];
            let v_depth = self.vars[v].ancestors.len() - 1;
            for (w, field) in &field_of_var {
                let w_idx = self.var_index[*w];
                if self.vars[w_idx].ancestors.get(v_depth) != Some(&v) {
                    continue; // v is not an ancestor-or-self of w
                }
                let field_id = universe
                    .lookup(field)
                    .expect("every rule field is interned");
                if key_fields.contains(field_id) {
                    continue; // trivial
                }
                let to_w = &self.vars[w_idx].rel_from_ancestor[v_depth];
                stats.implication_calls += 1;
                if self.keys.node_unique_under(
                    &self.vars[v].position,
                    to_w,
                    &self.vars[w_idx].position,
                ) {
                    let fd = IFd::new(key_fields.clone(), std::iter::once(field_id).collect());
                    if !fds.contains(&fd) {
                        fds.push(fd);
                    }
                }
            }
        }

        stats.generated_fds = fds.len();
        let cover: Vec<Fd> = minimize_interned(universe.len(), &fds)
            .iter()
            .map(|fd| universe.extern_fd(fd))
            .collect();
        stats.cover_size = cover.len();
        (cover, stats)
    }

    /// Maps every attribute of `attrs` to its (interned) field on this
    /// variable; `None` if some attribute is not mapped to a field (the key
    /// is then unusable at this level).  When one attribute populates
    /// several fields, the last field rule wins (matching the historical
    /// map-overwrite behavior).
    fn fields_for_attrs(
        &self,
        universe: &AttrUniverse,
        vd: &VarData,
        attrs: &[LabelId],
    ) -> Option<AttrSet> {
        attrs
            .iter()
            .map(|a| {
                vd.attr_children
                    .iter()
                    .rev()
                    .find(|(id, _)| id == a)
                    .and_then(|(_, field)| universe.lookup(field))
            })
            .collect()
    }

    /// The variable index populating `field`, if any.
    pub(crate) fn field_var_index(&self, field: &str) -> Option<usize> {
        self.field_var.get(field).copied()
    }

    /// The parent index of a variable (`None` for the root).
    pub(crate) fn parent_index(&self, var: usize) -> Option<usize> {
        let chain = &self.vars[var].ancestors;
        (chain.len() >= 2).then(|| chain[chain.len() - 2])
    }

    /// True if `anc` is an ancestor of `var` or equal to it.
    pub(crate) fn is_ancestor_or_self(&self, anc: usize, var: usize) -> bool {
        let d = self.vars[anc].ancestors.len() - 1;
        self.vars[var].ancestors.get(d) == Some(&anc)
    }

    /// For every variable: true if its edge is a single attribute whose
    /// existence is assured by Σ at the parent position — the
    /// probe-independent half of the `GminimumCover` non-null analysis.
    /// Computed on demand (one assured probe per attribute edge) so plain
    /// propagation engines never pay for it; `GMinimumCover` calls it once
    /// at construction.
    pub(crate) fn edge_attr_assured_map(&self) -> Vec<bool> {
        self.vars
            .iter()
            .map(|v| match v.edge_attr {
                Some(attr) => {
                    let parent = v.ancestors[v.ancestors.len() - 2];
                    self.keys
                        .attribute_assured(&self.vars[parent].position, attr)
                }
                None => false,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_xmlkeys::example_2_1_keys;
    use xmlprop_xmltransform::sample::{example_2_4_transformation, example_3_1_universal};

    fn fd(s: &str) -> Fd {
        Fd::parse(s).unwrap()
    }

    #[test]
    fn engine_answers_the_example_4_2_probes() {
        let sigma = example_2_1_keys();
        let t = example_2_4_transformation();
        let engine = PropagationEngine::new(&sigma, t.rule("book").unwrap());
        assert!(engine.propagation(&fd("isbn -> contact")));
        assert!(!engine.propagation(&fd("title -> isbn")));
        let outcome = &engine.propagation_explained(&fd("isbn -> contact"))[0];
        assert!(outcome.propagated);
        assert_eq!(outcome.keyed_ancestor.as_deref(), Some("xa"));
        assert_eq!(engine.rule().schema().name(), "book");
        assert_eq!(engine.sigma().len(), 7);
        assert_eq!(engine.key_index().len(), 7);
    }

    #[test]
    fn batch_propagation_matches_single_calls() {
        let sigma = example_2_1_keys();
        let u = example_3_1_universal();
        let engine = PropagationEngine::new(&sigma, &u);
        let probes = vec![
            fd("bookIsbn -> bookTitle"),
            fd("bookIsbn -> bookAuthor"),
            fd("bookIsbn, chapNum -> chapName"),
            fd("chapNum -> chapName"),
        ];
        let batch = engine.propagate_all(&probes);
        let single: Vec<bool> = probes.iter().map(|f| engine.propagation(f)).collect();
        assert_eq!(batch, single);
        assert_eq!(batch, vec![true, false, true, false]);
    }

    #[test]
    fn engine_minimum_cover_matches_example_3_1() {
        let sigma = example_2_1_keys();
        let u = example_3_1_universal();
        let engine = PropagationEngine::new(&sigma, &u);
        let (cover, stats) = engine.minimum_cover_with_stats();
        assert_eq!(cover.len(), 4);
        assert_eq!(stats.cover_size, 4);
        assert!(stats.generated_fds >= 4);
        assert!(stats.keyed_variables >= 4);
        assert!(stats.implication_calls > 0);
    }
}
