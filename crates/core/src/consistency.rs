//! Checking a *predefined* relational schema against XML keys
//! (the Example 1.1 scenario).
//!
//! A consumer database designer declares keys on the relations their
//! transformation populates.  Each declared key `K` of relation `R`
//! corresponds to the FDs `K → A` for every other attribute `A` of `R`;
//! the design is *consistent* with the XML keys when every such FD is
//! propagated — then no import of key-satisfying XML data can ever violate
//! the relational keys, which is exactly the guarantee the designers of
//! Example 1.1 were missing.

use crate::PropagationEngine;
use std::collections::BTreeSet;
use xmlprop_reldb::Fd;
use xmlprop_xmlkeys::KeySet;
use xmlprop_xmltransform::Transformation;

/// The verdict for one declared relational key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyCheck {
    /// The relation the key was declared on.
    pub relation: String,
    /// The declared key attributes.
    pub key: BTreeSet<String>,
    /// The FDs (one per non-key attribute) the key stands for.
    pub required_fds: Vec<Fd>,
    /// The subset of `required_fds` that are *not* propagated from the XML
    /// keys; empty iff the declared key is guaranteed.
    pub unsupported_fds: Vec<Fd>,
}

impl KeyCheck {
    /// True if the declared key is guaranteed by the XML keys.
    pub fn guaranteed(&self) -> bool {
        self.unsupported_fds.is_empty()
    }
}

/// A consistency report over a set of declared keys.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyReport {
    /// One entry per declared key, in the order they were given.
    pub checks: Vec<KeyCheck>,
}

impl ConsistencyReport {
    /// True if every declared key is guaranteed.
    pub fn all_guaranteed(&self) -> bool {
        self.checks.iter().all(KeyCheck::guaranteed)
    }

    /// The checks that failed.
    pub fn failures(&self) -> impl Iterator<Item = &KeyCheck> {
        self.checks.iter().filter(|c| !c.guaranteed())
    }
}

impl std::fmt::Display for ConsistencyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for check in &self.checks {
            let key: Vec<&str> = check.key.iter().map(String::as_str).collect();
            if check.guaranteed() {
                writeln!(
                    f,
                    "[ok]   {}({}) is guaranteed by the XML keys",
                    check.relation,
                    key.join(", ")
                )?;
            } else {
                writeln!(
                    f,
                    "[FAIL] {}({}) is NOT guaranteed; unsupported dependencies:",
                    check.relation,
                    key.join(", ")
                )?;
                for fd in &check.unsupported_fds {
                    writeln!(f, "         {fd}")?;
                }
            }
        }
        Ok(())
    }
}

/// Checks declared relational keys against the XML keys via the
/// transformation.  `declared` associates relation names with their declared
/// key attribute sets; relations or attributes that do not exist in the
/// transformation make the corresponding key unsupported (reported, not
/// panicking).
pub fn check_declared_keys<'a, I, K, S>(
    sigma: &KeySet,
    transformation: &Transformation,
    declared: I,
) -> ConsistencyReport
where
    I: IntoIterator<Item = (&'a str, K)>,
    K: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut report = ConsistencyReport::default();
    for (relation, key) in declared {
        let key: BTreeSet<String> = key.into_iter().map(Into::into).collect();
        let Some(rule) = transformation.rule(relation) else {
            report.checks.push(KeyCheck {
                relation: relation.to_string(),
                key: key.clone(),
                required_fds: Vec::new(),
                unsupported_fds: vec![Fd::new(key, BTreeSet::new())],
            });
            continue;
        };
        let mut required = Vec::new();
        let mut unsupported = Vec::new();
        // One prepared engine and one borrowed slice of the key serve every
        // probe; the FDs the report carries are only materialized per
        // checked attribute.
        let engine = PropagationEngine::new(sigma, rule);
        let key_fields: Vec<&str> = key.iter().map(String::as_str).collect();
        for attr in rule.schema().attributes() {
            if key.contains(attr) {
                continue;
            }
            let fd = Fd::new(key.clone(), std::iter::once(attr.clone()).collect());
            if !engine.propagation_fields(&key_fields, attr) {
                unsupported.push(fd.clone());
            }
            required.push(fd);
        }
        report.checks.push(KeyCheck {
            relation: relation.to_string(),
            key,
            required_fds: required,
            unsupported_fds: unsupported,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_xmlkeys::example_2_1_keys;
    use xmlprop_xmltransform::Transformation;

    fn designs() -> (Transformation, Transformation) {
        let initial = Transformation::new(vec![
            xmlprop_xmltransform::sample::example_1_1_initial_chapter(),
        ]);
        let refined = Transformation::new(vec![
            xmlprop_xmltransform::sample::example_1_1_refined_chapter(),
        ]);
        (initial, refined)
    }

    #[test]
    fn example_1_1_initial_design_is_flagged() {
        let sigma = example_2_1_keys();
        let (initial, _) = designs();
        let report =
            check_declared_keys(&sigma, &initial, [("Chapter", ["bookTitle", "chapterNum"])]);
        assert!(!report.all_guaranteed());
        assert_eq!(report.failures().count(), 1);
        let check = &report.checks[0];
        assert!(!check.guaranteed());
        assert_eq!(check.unsupported_fds.len(), 1);
        assert!(report.to_string().contains("NOT guaranteed"));
    }

    #[test]
    fn example_1_1_refined_design_is_guaranteed() {
        let sigma = example_2_1_keys();
        let (_, refined) = designs();
        let report = check_declared_keys(&sigma, &refined, [("Chapter", ["isbn", "chapterNum"])]);
        assert!(report.all_guaranteed());
        assert!(report.to_string().contains("[ok]"));
        assert_eq!(report.checks[0].required_fds.len(), 1);
    }

    #[test]
    fn whole_schema_of_example_2_4() {
        let sigma = example_2_1_keys();
        let t = xmlprop_xmltransform::sample::example_2_4_transformation();
        // The keys underlined in Example 2.4's schema R.
        let report = check_declared_keys(
            &sigma,
            &t,
            [
                ("book", vec!["isbn"]),
                ("chapter", vec!["inBook", "number"]),
                ("section", vec!["inChapt", "number"]),
            ],
        );
        // book(isbn) is NOT fully guaranteed (isbn does not determine the
        // author field — a book may have several authors), chapter's key is
        // guaranteed, and section's is not (section numbers repeat across
        // books).
        let verdicts: Vec<bool> = report.checks.iter().map(KeyCheck::guaranteed).collect();
        assert_eq!(verdicts, vec![false, true, false]);
        let book = &report.checks[0];
        assert_eq!(
            book.unsupported_fds,
            vec![Fd::parse("isbn -> author").unwrap()]
        );
    }

    #[test]
    fn unknown_relation_is_reported_not_panicking() {
        let sigma = example_2_1_keys();
        let (_, refined) = designs();
        let report = check_declared_keys(&sigma, &refined, [("NoSuchTable", ["id"])]);
        assert!(!report.all_guaranteed());
    }
}
