//! Algorithm `minimumCover`: the polynomial-time minimum cover of all FDs
//! propagated onto a universal relation (Section 5).
//!
//! Pages 551–552 of the conference scan (the pseudocode figure) are missing,
//! so this module reconstructs the algorithm from the surrounding prose,
//! which fixes its structure precisely enough:
//!
//! * the table tree of the universal relation is traversed **top-down**;
//! * at each variable `v` the algorithm maintains **transitive keys**: sets
//!   of universal-relation fields that identify `v`'s node from the root,
//!   assembled from keys of `Σ` (one key per level, attributes that are
//!   mapped to fields) and from "unique under" steps (an ancestor's key also
//!   identifies `v` when `Σ` implies there is at most one `v` node per
//!   ancestor node);
//! * new FDs `K(v) → A` are emitted only when `v` is keyed and the field `A`
//!   is defined by a node that is **unique under** `v`;
//! * when a node has several transitive keys, only one (the *canonical* key)
//!   is propagated downward, and pairwise **equivalence FDs** between the
//!   canonical key and each alternative are emitted so that no propagated FD
//!   is lost from the cover (this is the paper's trick for staying
//!   polynomial);
//! * finally `minimize` removes redundant FDs and extraneous attributes.
//!
//! The algorithm itself lives on [`PropagationEngine`]
//! ([`PropagationEngine::minimum_cover_with_stats`]), where every
//! implication probe runs against the prepared key index and compiled tree
//! paths; the functions here are one-shot facades.  The defining
//! correctness property — the result is a non-redundant cover equivalent
//! (under Armstrong's axioms) to the output of the exponential
//! [`crate::naive_minimum_cover`] — is asserted by integration and property
//! tests across the workspace, and the pre-engine implementation is
//! retained below as a `#[cfg(test)]` oracle.

use crate::PropagationEngine;
use xmlprop_reldb::Fd;
use xmlprop_xmlkeys::KeySet;
use xmlprop_xmltransform::TableRule;

/// Statistics about a minimum-cover computation, reported by
/// [`minimum_cover_with_stats`] and used by the benchmark harness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverStats {
    /// Number of candidate FDs generated before minimization.
    pub generated_fds: usize,
    /// Number of FDs in the final minimum cover.
    pub cover_size: usize,
    /// Number of table-tree variables that received a transitive key.
    pub keyed_variables: usize,
    /// Number of calls made to the key-implication procedure.
    pub implication_calls: usize,
}

/// Computes a minimum cover of all the FDs propagated from `sigma` onto the
/// universal relation defined by `rule`.
pub fn minimum_cover(sigma: &KeySet, rule: &TableRule) -> Vec<Fd> {
    PropagationEngine::new(sigma, rule).minimum_cover()
}

/// Like [`minimum_cover`] but also reports [`CoverStats`].
pub fn minimum_cover_with_stats(sigma: &KeySet, rule: &TableRule) -> (Vec<Fd>, CoverStats) {
    PropagationEngine::new(sigma, rule).minimum_cover_with_stats()
}

/// The pre-engine implementation (per-probe `XmlKey` construction and
/// string-based implication), kept verbatim as the reference oracle for the
/// agreement tests.
#[cfg(test)]
pub(crate) mod oracle {
    use super::CoverStats;
    use std::collections::BTreeMap;
    use xmlprop_reldb::intern::minimize_interned;
    use xmlprop_reldb::{AttrSet, AttrUniverse, Fd, IFd};
    use xmlprop_xmlkeys::{implies, node_unique_under, KeySet, XmlKey};
    use xmlprop_xmltransform::{TableRule, TableTree};

    /// `minimum_cover_with_stats` as originally written.
    pub fn minimum_cover_with_stats(sigma: &KeySet, rule: &TableRule) -> (Vec<Fd>, CoverStats) {
        let tree = rule.table_tree();
        let mut stats = CoverStats::default();

        let universe = AttrUniverse::from_names(
            rule.schema()
                .attributes()
                .iter()
                .map(String::as_str)
                .chain(rule.field_rules().iter().map(|fr| fr.field.as_str())),
        );

        let mut canonical: BTreeMap<String, AttrSet> = BTreeMap::new();
        canonical.insert(tree.root().to_string(), AttrSet::new());

        let mut fds: Vec<IFd> = Vec::new();

        let field_of_var: BTreeMap<&str, &str> = rule
            .field_rules()
            .iter()
            .map(|fr| (fr.var.as_str(), fr.field.as_str()))
            .collect();

        for var in tree.variables().iter() {
            if var == tree.root() {
                continue;
            }
            let mut candidates: Vec<AttrSet> = Vec::new();
            let ancestors = tree.ancestors_from_root(var);
            for u in &ancestors[..ancestors.len() - 1] {
                let Some(k_u) = canonical.get(u.as_str()).cloned() else {
                    continue;
                };
                let u_position = tree.path_from_root(u);
                let relative = tree.path_between(u, var).expect("u is an ancestor of var");

                stats.implication_calls += 1;
                if node_unique_under(sigma, &u_position, &relative) {
                    candidates.push(k_u.clone());
                }

                let attr_fields = attribute_fields_of(rule, &tree, var);
                if attr_fields.is_empty() {
                    continue;
                }
                for key in sigma.iter() {
                    if key.key_attrs().is_empty() {
                        continue; // covered by the unique-under step
                    }
                    let Some(fields) = fields_for_attrs(&universe, &attr_fields, key.key_attrs())
                    else {
                        continue;
                    };
                    stats.implication_calls += 1;
                    let probe = XmlKey::new(
                        u_position.clone(),
                        relative.clone(),
                        key.key_attrs().iter().cloned(),
                    );
                    if implies(sigma, &probe) {
                        let mut k_v = k_u.clone();
                        k_v.union_with(&fields);
                        candidates.push(k_v);
                    }
                }
            }

            if candidates.is_empty() {
                continue;
            }
            candidates.sort_by_cached_key(|k| universe.names_key(k));
            candidates.dedup();
            let chosen = candidates[0].clone();

            for alt in &candidates[1..] {
                for field in alt.difference(&chosen).iter() {
                    fds.push(IFd::new(chosen.clone(), std::iter::once(field).collect()));
                }
                for field in chosen.difference(alt).iter() {
                    fds.push(IFd::new(alt.clone(), std::iter::once(field).collect()));
                }
            }

            canonical.insert(var.clone(), chosen);
        }

        stats.keyed_variables = canonical.len();

        for (var, key_fields) in &canonical {
            let v_position = tree.path_from_root(var);
            for (w, field) in &field_of_var {
                if !tree.is_ancestor_or_self(var, w) {
                    continue;
                }
                let field_id = universe
                    .lookup(field)
                    .expect("every rule field is interned");
                if key_fields.contains(field_id) {
                    continue; // trivial
                }
                let to_w = tree.path_between(var, w).expect("w is in v's subtree");
                stats.implication_calls += 1;
                if node_unique_under(sigma, &v_position, &to_w) {
                    let fd = IFd::new(key_fields.clone(), std::iter::once(field_id).collect());
                    if !fds.contains(&fd) {
                        fds.push(fd);
                    }
                }
            }
        }

        stats.generated_fds = fds.len();
        let cover: Vec<Fd> = minimize_interned(universe.len(), &fds)
            .iter()
            .map(|fd| universe.extern_fd(fd))
            .collect();
        stats.cover_size = cover.len();
        (cover, stats)
    }

    fn attribute_fields_of(
        rule: &TableRule,
        tree: &TableTree,
        var: &str,
    ) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        for fr in rule.field_rules() {
            let Some(parent) = tree.parent(&fr.var) else {
                continue;
            };
            if parent != var {
                continue;
            }
            let path = tree
                .edge_path(&fr.var)
                .expect("non-root variable has an edge");
            if let [xmlprop_xmlpath::Atom::Label(label)] = path.atoms() {
                if label.starts_with('@') {
                    out.insert(label.clone(), fr.field.clone());
                }
            }
        }
        out
    }

    fn fields_for_attrs(
        universe: &AttrUniverse,
        attr_fields: &BTreeMap<String, String>,
        attrs: &[String],
    ) -> Option<AttrSet> {
        attrs
            .iter()
            .map(|a| attr_fields.get(a).and_then(|field| universe.lookup(field)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive_minimum_cover;
    use xmlprop_reldb::{covers_equivalent, is_nonredundant};
    use xmlprop_xmlkeys::{example_2_1_keys, XmlKey};
    use xmlprop_xmltransform::sample::{
        example_1_1_refined_chapter, example_2_4_transformation, example_3_1_universal,
    };
    use xmlprop_xmltransform::Transformation;

    fn fd(s: &str) -> Fd {
        Fd::parse(s).unwrap()
    }

    #[test]
    fn example_3_1_minimum_cover() {
        // The paper's Example 3.1 prints exactly this minimum cover.
        let sigma = example_2_1_keys();
        let u = example_3_1_universal();
        let cover = minimum_cover(&sigma, &u);
        let expected = vec![
            fd("bookIsbn -> bookTitle"),
            fd("bookIsbn -> authContact"),
            fd("bookIsbn, chapNum -> chapName"),
            fd("bookIsbn, chapNum, secNum -> secName"),
        ];
        assert!(covers_equivalent(&cover, &expected), "got {cover:?}");
        assert_eq!(cover.len(), 4, "got {cover:?}");
        assert!(is_nonredundant(&cover));
    }

    #[test]
    fn example_1_2_minimum_cover() {
        // Example 1.2: over Chapter(isbn, bookTitle, author, chapterNum,
        // chapterName) the cover is isbn -> bookTitle and
        // (isbn, chapterNum) -> chapterName.
        let sigma = example_2_1_keys();
        let rule = xmlprop_xmltransform::parse_single_rule(
            "rule Chapter(isbn, bookTitle, author, chapterNum, chapterName) {
                b := xr//book;
                i := b/@isbn;
                t := b/title;
                a := b/author;
                an := a/name;
                c := b/chapter;
                n := c/@number;
                m := c/name;
                isbn := value(i);
                bookTitle := value(t);
                author := value(an);
                chapterNum := value(n);
                chapterName := value(m);
            }",
        )
        .unwrap();
        let cover = minimum_cover(&sigma, &rule);
        let expected = vec![
            fd("isbn -> bookTitle"),
            fd("isbn, chapterNum -> chapterName"),
        ];
        assert!(covers_equivalent(&cover, &expected), "got {cover:?}");
        // isbn -> author must NOT be derivable (books have several authors).
        assert!(!xmlprop_reldb::implies(&cover, &fd("isbn -> author")));
    }

    #[test]
    fn agrees_with_naive_on_the_paper_rules() {
        let sigma = example_2_1_keys();
        let t = example_2_4_transformation();
        for relation in ["book", "chapter", "section"] {
            let rule = t.rule(relation).unwrap();
            let fast = minimum_cover(&sigma, rule);
            let slow = naive_minimum_cover(&sigma, rule);
            assert!(
                covers_equivalent(&fast, &slow),
                "cover mismatch on {relation}: fast={fast:?} slow={slow:?}"
            );
        }
        let refined = example_1_1_refined_chapter();
        assert!(covers_equivalent(
            &minimum_cover(&sigma, &refined),
            &naive_minimum_cover(&sigma, &refined)
        ));
    }

    #[test]
    fn engine_matches_oracle_bit_for_bit() {
        // The engine and the pre-engine oracle must agree on the exact
        // cover (same FDs, same order) and on every statistic, for every
        // sample rule and for a Σ with alternative keys.
        let mut sigma = example_2_1_keys();
        let t = example_2_4_transformation();
        let mut rules: Vec<TableRule> = t.rules().to_vec();
        rules.push(example_3_1_universal());
        rules.push(example_1_1_refined_chapter());
        sigma.add(XmlKey::parse("K8: (ε, (//book, {@isbn13}))").unwrap());
        for rule in &rules {
            assert_eq!(
                minimum_cover_with_stats(&sigma, rule),
                oracle::minimum_cover_with_stats(&sigma, rule),
                "engine/oracle mismatch on {}",
                rule.schema().name()
            );
        }
    }

    #[test]
    fn empty_key_set_gives_empty_cover() {
        let sigma = KeySet::new();
        let u = example_3_1_universal();
        assert!(minimum_cover(&sigma, &u).is_empty());
    }

    #[test]
    fn field_rules_outside_the_schema_do_not_panic() {
        // `TableRule::validate` requires every schema attribute to be
        // populated but not the converse, so a rule may map a field the
        // schema never declares; the cover computation must intern it
        // rather than panic on the lookup.
        use xmlprop_xmlpath::PathExpr;
        use xmlprop_xmltransform::{FieldRule, VarMapping};
        let rule = xmlprop_xmltransform::TableRule::new(
            xmlprop_reldb::RelationSchema::new("r", ["isbn"]),
            vec![
                VarMapping {
                    var: "b".into(),
                    parent: "xr".into(),
                    path: PathExpr::epsilon().descendant("book"),
                },
                VarMapping {
                    var: "i".into(),
                    parent: "b".into(),
                    path: PathExpr::label("@isbn"),
                },
                VarMapping {
                    var: "t".into(),
                    parent: "b".into(),
                    path: PathExpr::label("title"),
                },
            ],
            vec![
                FieldRule {
                    field: "isbn".into(),
                    var: "i".into(),
                },
                FieldRule {
                    field: "ghost".into(),
                    var: "t".into(),
                },
            ],
        )
        .unwrap();
        let sigma = example_2_1_keys();
        let cover = minimum_cover(&sigma, &rule);
        // K3 makes //book/title unique, so the undeclared field is even
        // derivable from the book key — the point is that nothing panics.
        assert!(cover
            .iter()
            .all(|fd| fd.attributes().iter().all(|a| a == "isbn" || a == "ghost")));
    }

    #[test]
    fn stats_are_populated() {
        let sigma = example_2_1_keys();
        let u = example_3_1_universal();
        let (cover, stats) = minimum_cover_with_stats(&sigma, &u);
        assert_eq!(stats.cover_size, cover.len());
        assert!(stats.generated_fds >= cover.len());
        assert!(stats.keyed_variables >= 4); // xr, xb, yc, zs at least
        assert!(stats.implication_calls > 0);
    }

    #[test]
    fn alternative_keys_produce_equivalence_fds() {
        // Books carry two alternative keys (@isbn and @isbn13); the cover
        // must make the two identifiers interderivable and title reachable
        // from either.
        let mut sigma = example_2_1_keys();
        sigma.add(XmlKey::parse("K8: (ε, (//book, {@isbn13}))").unwrap());
        let rule = xmlprop_xmltransform::parse_single_rule(
            "rule U(isbn, isbn13, title) {
                b := xr//book;
                i := b/@isbn;
                j := b/@isbn13;
                t := b/title;
                isbn := value(i);
                isbn13 := value(j);
                title := value(t);
            }",
        )
        .unwrap();
        let cover = minimum_cover(&sigma, &rule);
        assert!(xmlprop_reldb::implies(&cover, &fd("isbn -> isbn13")));
        assert!(xmlprop_reldb::implies(&cover, &fd("isbn13 -> isbn")));
        assert!(xmlprop_reldb::implies(&cover, &fd("isbn13 -> title")));
        assert!(xmlprop_reldb::implies(&cover, &fd("isbn -> title")));
        // And it agrees with the exponential baseline.
        let slow = naive_minimum_cover(&sigma, &rule);
        assert!(
            covers_equivalent(&cover, &slow),
            "fast={cover:?} slow={slow:?}"
        );
    }

    #[test]
    fn composite_relative_keys() {
        // A two-attribute relative key: sections identified by (@number,
        // @part) within a chapter.
        let sigma: KeySet = [
            XmlKey::parse("(ε, (//book, {@isbn}))").unwrap(),
            XmlKey::parse("(//book, (chapter, {@number}))").unwrap(),
            XmlKey::parse("(//book/chapter, (section, {@number, @part}))").unwrap(),
            XmlKey::parse("(//book/chapter/section, (name, {}))").unwrap(),
        ]
        .into_iter()
        .collect();
        let rule = xmlprop_xmltransform::parse_single_rule(
            "rule U(isbn, chapNum, secNum, secPart, secName) {
                b := xr//book;
                i := b/@isbn;
                c := b/chapter;
                n := c/@number;
                s := c/section;
                sn := s/@number;
                sp := s/@part;
                sm := s/name;
                isbn := value(i);
                chapNum := value(n);
                secNum := value(sn);
                secPart := value(sp);
                secName := value(sm);
            }",
        )
        .unwrap();
        let cover = minimum_cover(&sigma, &rule);
        assert!(xmlprop_reldb::implies(
            &cover,
            &fd("isbn, chapNum, secNum, secPart -> secName")
        ));
        // The smaller LHS without secPart must not be derivable.
        assert!(!xmlprop_reldb::implies(
            &cover,
            &fd("isbn, chapNum, secNum -> secName")
        ));
        let slow = naive_minimum_cover(&sigma, &rule);
        assert!(
            covers_equivalent(&cover, &slow),
            "fast={cover:?} slow={slow:?}"
        );
    }

    #[test]
    fn shared_prefix_transformation_without_wildcards() {
        // A rule whose paths are all simple (no //) exercises the containment
        // logic differently.
        let sigma: KeySet = [
            XmlKey::parse("(ε, (db/customer, {@id}))").unwrap(),
            XmlKey::parse("(db/customer, (order, {@oid}))").unwrap(),
            XmlKey::parse("(db/customer/order, (total, {}))").unwrap(),
        ]
        .into_iter()
        .collect();
        let t = Transformation::parse(
            "rule orders(cust, ord, total) {
                c := xr/db/customer;
                ci := c/@id;
                o := c/order;
                oi := o/@oid;
                ot := o/total;
                cust := value(ci);
                ord := value(oi);
                total := value(ot);
            }",
        )
        .unwrap();
        let rule = t.rule("orders").unwrap();
        let cover = minimum_cover(&sigma, rule);
        let expected = vec![fd("cust, ord -> total")];
        assert!(covers_equivalent(&cover, &expected), "got {cover:?}");
        assert!(covers_equivalent(
            &cover,
            &naive_minimum_cover(&sigma, rule)
        ));
    }
}
