//! Workload generation: universal relations, table trees and key sets.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use xmlprop_reldb::Fd;
use xmlprop_xmlkeys::{KeySet, XmlKey};
use xmlprop_xmlpath::PathExpr;
use xmlprop_xmltransform::{parse_single_rule, TableRule};

/// Parameters of a synthetic workload (the independent variables of the
/// Section 6 experiments).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of fields of the universal relation.
    pub fields: usize,
    /// Depth of the table tree: number of nested entity levels.
    pub depth: usize,
    /// Number of XML keys to generate (at least `depth` are needed to form
    /// the transitive identification chain; extra keys are alternative
    /// identifiers).
    pub keys: usize,
    /// Fraction of the non-identifier fields that are mapped from *element*
    /// children rather than attributes (such fields can never participate in
    /// key left-hand sides, like `bookTitle` in the paper's example).
    pub element_field_ratio: f64,
    /// RNG seed, so experiments are reproducible.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            fields: 15,
            depth: 5,
            keys: 10,
            element_field_ratio: 0.3,
            seed: 42,
        }
    }
}

impl WorkloadConfig {
    /// A convenience constructor for the three experiment parameters, with
    /// defaults for the rest.
    pub fn new(fields: usize, depth: usize, keys: usize) -> Self {
        WorkloadConfig {
            fields,
            depth,
            keys,
            ..WorkloadConfig::default()
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One generated workload: the key set `Σ`, the universal-relation table
/// rule, and bookkeeping needed by the document generator and FD probes.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The configuration the workload was generated from.
    pub config: WorkloadConfig,
    /// The generated XML keys.
    pub sigma: KeySet,
    /// The universal-relation table rule.
    pub universal: TableRule,
    /// For every entity level `i` (0-based): the element label of that level.
    pub level_labels: Vec<String>,
    /// For every entity level: the fields mapped from attributes of that
    /// level (the identifier field first).
    pub attr_fields_per_level: Vec<Vec<String>>,
    /// For every entity level: the fields mapped from element children.
    pub element_fields_per_level: Vec<Vec<String>>,
}

impl Workload {
    /// The field that identifies entity level `i` within its parent.
    pub fn id_field(&self, level: usize) -> &str {
        &self.attr_fields_per_level[level][0]
    }

    /// The identifying fields of all levels from the root down to `level`
    /// (inclusive) — a transitive key for that level.
    pub fn chain_key(&self, level: usize) -> BTreeSet<String> {
        (0..=level).map(|l| self.id_field(l).to_string()).collect()
    }
}

/// Generates a workload from a configuration.
///
/// Structure: `depth` nested levels `e0, e1, …`; level `i` is reached from
/// level `i-1` by the child path `e{i}` (level 0 by `//e0` from the root).
/// Level `i` carries an identifying attribute `@id{i}` mapped to the field
/// `id{i}`; the remaining fields are distributed round-robin over the
/// levels, each as either an attribute (`@a{j}`) or an element (`m{j}`)
/// child.  The key set is the identification chain
/// `(ε, (//e0, {@id0})), (//e0, (e1, {@id1})), …` plus, for every extra key
/// requested, either a uniqueness key for an element field or an alternative
/// relative key on an attribute field of some level.
pub fn generate(config: &WorkloadConfig) -> Workload {
    assert!(config.depth >= 1, "depth must be at least 1");
    assert!(
        config.fields >= config.depth,
        "need at least one (identifier) field per level: fields={} depth={}",
        config.fields,
        config.depth
    );
    let mut rng = StdRng::seed_from_u64(config.seed);

    let level_labels: Vec<String> = (0..config.depth).map(|i| format!("e{i}")).collect();

    // Field assignment.
    let mut attr_fields_per_level: Vec<Vec<String>> = Vec::with_capacity(config.depth);
    let mut element_fields_per_level: Vec<Vec<String>> = vec![Vec::new(); config.depth];
    for (i, _) in level_labels.iter().enumerate() {
        attr_fields_per_level.push(vec![format!("id{i}")]);
    }
    for j in 0..(config.fields - config.depth) {
        let level = j % config.depth;
        let field = format!("f{j}");
        if rng.gen_bool(config.element_field_ratio) {
            element_fields_per_level[level].push(field);
        } else {
            attr_fields_per_level[level].push(field);
        }
    }

    // Universal-relation rule text.
    let mut all_fields: Vec<String> = Vec::with_capacity(config.fields);
    for level in 0..config.depth {
        all_fields.extend(attr_fields_per_level[level].iter().cloned());
        all_fields.extend(element_fields_per_level[level].iter().cloned());
    }
    let mut body = String::new();
    for (level, label) in level_labels.iter().enumerate() {
        if level == 0 {
            body.push_str(&format!("  v0 := xr//{label};\n"));
        } else {
            body.push_str(&format!("  v{level} := v{}/{label};\n", level - 1));
        }
        for field in &attr_fields_per_level[level] {
            body.push_str(&format!("  w_{field} := v{level}/@{field};\n"));
        }
        for field in &element_fields_per_level[level] {
            body.push_str(&format!("  w_{field} := v{level}/{field}_el;\n"));
        }
    }
    for field in &all_fields {
        body.push_str(&format!("  {field} := value(w_{field});\n"));
    }
    let rule_text = format!("rule U({}) {{\n{body}}}", all_fields.join(", "));
    let universal = parse_single_rule(&rule_text).expect("generated rule is well-formed");

    // Key set: the identification chain first.
    let mut sigma = KeySet::new();
    for level in 0..config.depth {
        let context = level_path(&level_labels, level);
        let target = if level == 0 {
            PathExpr::epsilon().descendant(&level_labels[0])
        } else {
            PathExpr::label(&level_labels[level])
        };
        let context = if level == 0 {
            PathExpr::epsilon()
        } else {
            context
        };
        sigma.add(
            XmlKey::new(context, target, [format!("@id{level}")]).named(format!("chain{level}")),
        );
    }

    // Extra keys up to the requested count.
    let mut extra_index = 0usize;
    while sigma.len() < config.keys {
        let level = extra_index % config.depth;
        let position = level_path(&level_labels, level + 1);
        // Prefer a uniqueness key for an element field of this level (these
        // are what make element fields determinable, like K3/K4/K7 in the
        // paper); fall back to an alternative attribute key; finally fall
        // back to an absolute identifier for the level.
        let element_choice = element_fields_per_level[level]
            .get(extra_index / config.depth)
            .cloned();
        let attr_choice = attr_fields_per_level[level]
            .get(1 + extra_index / config.depth)
            .cloned();
        let key = if let Some(field) = element_choice {
            XmlKey::new(
                position,
                PathExpr::label(format!("{field}_el")),
                Vec::<String>::new(),
            )
            .named(format!("uniq_{field}"))
        } else if let Some(field) = attr_choice {
            let context = level_path(&level_labels, level);
            let target = if level == 0 {
                PathExpr::epsilon().descendant(&level_labels[0])
            } else {
                PathExpr::label(&level_labels[level])
            };
            let context = if level == 0 {
                PathExpr::epsilon()
            } else {
                context
            };
            XmlKey::new(context, target, [format!("@{field}")]).named(format!("alt_{field}"))
        } else {
            // Fallback when the level has no spare field: a (derivable but
            // still size-contributing) uniqueness key on the level's
            // identifier attribute.  Kept relative so that documents only
            // need sibling-local identifier uniqueness.
            XmlKey::new(
                level_path(&level_labels, level + 1),
                PathExpr::label(format!("@id{level}")),
                Vec::<String>::new(),
            )
            .named(format!("extra{extra_index}"))
        };
        sigma.add(key);
        extra_index += 1;
        if extra_index > config.keys * 4 + config.depth * 4 {
            break; // every candidate exhausted; sigma is as large as it gets
        }
    }

    Workload {
        config: config.clone(),
        sigma,
        universal,
        level_labels,
        attr_fields_per_level,
        element_fields_per_level,
    }
}

/// The path from the document root to entity level `len` (exclusive), e.g.
/// `//e0/e1/e2` for `len = 3`.
fn level_path(labels: &[String], len: usize) -> PathExpr {
    let mut path = PathExpr::epsilon();
    for (i, label) in labels.iter().take(len).enumerate() {
        if i == 0 {
            path = path.descendant(label);
        } else {
            path = path.child(label);
        }
    }
    path
}

/// An FD that the generated key chain propagates: the chain key of the
/// deepest level determines any field of that level.  This is the "expected
/// positive" probe used by the propagation benchmarks (Fig. 7(b)/(c)).
pub fn target_fd(workload: &Workload) -> Fd {
    let deepest = workload.config.depth - 1;
    let lhs = workload.chain_key(deepest);
    // Prefer a field of the deepest level whose determination is actually
    // supported by a generated key: an element field with a `uniq_…` key, an
    // attribute field with an `alt_…` key, or (as a last resort) the level's
    // identifier itself, which makes the probe a trivial-but-null-sensitive
    // FD.  This keeps the probe a *positive* case at every workload size,
    // matching the paper's use of a representative propagated FD.
    let has_key = |prefix: &str, field: &str| {
        workload
            .sigma
            .iter()
            .any(|k| k.name() == Some(&format!("{prefix}{field}")))
    };
    let rhs = workload.element_fields_per_level[deepest]
        .iter()
        .find(|f| has_key("uniq_", f))
        .or_else(|| {
            workload.attr_fields_per_level[deepest]
                .iter()
                .skip(1)
                .find(|f| has_key("alt_", f))
        })
        .cloned()
        .unwrap_or_else(|| workload.id_field(deepest).to_string());
    Fd::new(lhs, std::iter::once(rhs).collect())
}

/// A random FD probe over the workload's fields: `lhs_size` random distinct
/// fields on the left, one other random field on the right.  Used to
/// exercise the negative/mixed cases of the propagation benchmarks.
pub fn random_fd(workload: &Workload, rng: &mut StdRng, lhs_size: usize) -> Fd {
    let fields: Vec<&String> = workload.universal.schema().attributes().iter().collect();
    let mut shuffled = fields.clone();
    shuffled.shuffle(rng);
    let lhs: BTreeSet<String> = shuffled
        .iter()
        .take(lhs_size.min(fields.len().saturating_sub(1)))
        .map(|s| (*s).clone())
        .collect();
    let rhs = shuffled
        .iter()
        .skip(lhs_size)
        .chain(shuffled.iter())
        .find(|f| !lhs.contains(f.as_str()))
        .expect("at least one field outside the LHS")
        .to_string();
    Fd::new(lhs, std::iter::once(rhs).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_core::{minimum_cover, propagation};

    #[test]
    fn generated_workload_has_requested_shape() {
        let config = WorkloadConfig::new(20, 4, 12);
        let w = generate(&config);
        assert_eq!(w.universal.schema().arity(), 20);
        assert_eq!(w.universal.table_tree().depth(), 5); // entities + leaf vars
        assert_eq!(w.level_labels.len(), 4);
        assert!(w.sigma.len() >= 4, "chain keys present");
        assert!(w.sigma.len() <= 12);
        assert!(
            w.sigma.is_transitive(),
            "generated key set must be transitive"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = WorkloadConfig::new(30, 5, 15).with_seed(7);
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.sigma, b.sigma);
        assert_eq!(a.universal, b.universal);
        let c = generate(&WorkloadConfig::new(30, 5, 15).with_seed(8));
        assert!(c.universal != a.universal || c.sigma != a.sigma);
    }

    #[test]
    fn chain_fd_is_propagated() {
        for (fields, depth, keys) in [(10, 3, 6), (15, 5, 10), (24, 6, 20)] {
            let w = generate(&WorkloadConfig::new(fields, depth, keys));
            let fd = target_fd(&w);
            assert!(
                propagation(&w.sigma, &w.universal, &fd),
                "target FD {fd} should be propagated for fields={fields} depth={depth} keys={keys}"
            );
        }
    }

    #[test]
    fn shallow_lhs_is_not_propagated_for_deep_fields() {
        // A field at the deepest level cannot be determined by the top-level
        // identifier alone.
        let w = generate(&WorkloadConfig::new(12, 4, 8));
        let deep_field = target_fd(&w).rhs().iter().next().unwrap().clone();
        let fd = Fd::to_attr([w.id_field(0).to_string()], deep_field);
        assert!(!propagation(&w.sigma, &w.universal, &fd));
    }

    #[test]
    fn minimum_cover_scales_with_keys() {
        let small = generate(&WorkloadConfig::new(20, 4, 4));
        let large = generate(&WorkloadConfig::new(20, 4, 20));
        let cover_small = minimum_cover(&small.sigma, &small.universal);
        let cover_large = minimum_cover(&large.sigma, &large.universal);
        assert!(
            cover_large.len() >= cover_small.len(),
            "more keys should not shrink the cover ({} vs {})",
            cover_large.len(),
            cover_small.len()
        );
        assert!(!cover_large.is_empty());
    }

    #[test]
    fn random_fd_probe_is_well_formed() {
        let w = generate(&WorkloadConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        for lhs_size in 1..5 {
            let fd = random_fd(&w, &mut rng, lhs_size);
            assert!(!fd.rhs().is_empty());
            assert!(!fd.is_trivial());
            for a in fd.attributes() {
                assert!(w.universal.schema().contains(&a), "unknown field {a}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one (identifier) field per level")]
    fn rejects_fewer_fields_than_levels() {
        generate(&WorkloadConfig::new(3, 5, 5));
    }
}
