//! Random document generation for a synthetic workload.
//!
//! Documents produced here are guaranteed to satisfy the workload's key set
//! `Σ` (identifier and alternative-key attributes are unique among siblings,
//! uniqueness-keyed element children appear at most once), which is what the
//! soundness property tests need: whatever the propagation algorithms derive
//! from `Σ` must hold on the shredded instance of any such document.

use crate::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlprop_xmltree::{Document, NodeId};

/// Parameters of document generation.
#[derive(Debug, Clone, PartialEq)]
pub struct DocConfig {
    /// Number of entity children per node at every level.
    pub branching: usize,
    /// Probability that an optional (non-identifier) attribute or element
    /// child is omitted, exercising the null paths of the shredding
    /// semantics.
    pub omission_probability: f64,
    /// RNG seed.
    pub seed: u64,
    /// How many entity levels to materialize: `None` grows all of the
    /// workload's levels; `Some(d)` grows only the topmost `d`.  Together
    /// with `branching` this dials the node count (the entity count is
    /// `branching + branching² + … + branching^levels`, each entity carrying
    /// its level's field nodes on top), which is how the document-engine
    /// benches reach 10⁴–10⁶-node documents deterministically.  There is no
    /// silent cap: asking for more levels than the workload has panics.
    pub depth: Option<usize>,
}

impl Default for DocConfig {
    fn default() -> Self {
        DocConfig {
            branching: 3,
            omission_probability: 0.2,
            seed: 7,
            depth: None,
        }
    }
}

impl DocConfig {
    /// The number of entity levels this configuration materializes for
    /// `workload`.
    ///
    /// # Panics
    ///
    /// Panics if an explicit `depth` exceeds the workload's level count
    /// (the generator refuses to silently cap the request).
    pub fn levels(&self, workload: &Workload) -> usize {
        match self.depth {
            None => workload.config.depth,
            Some(d) => {
                assert!(
                    d <= workload.config.depth,
                    "DocConfig.depth = {d} exceeds the workload's {} entity levels",
                    workload.config.depth
                );
                d
            }
        }
    }
}

/// Size report of one generated document; see
/// [`generate_document_with_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocReport {
    /// Total node count (elements, attributes and text), the scale
    /// parameter of the document-engine benches.
    pub nodes: usize,
    /// Number of entity elements generated across all levels.
    pub entities: usize,
    /// Number of entity levels materialized.
    pub levels: usize,
}

/// Generates a random document conforming to the workload's hierarchy and
/// satisfying its key set.
pub fn generate_document(workload: &Workload, config: &DocConfig) -> Document {
    generate_document_with_report(workload, config).0
}

/// [`generate_document`] plus a [`DocReport`] stating exactly how large the
/// document came out — benches record the node count instead of trusting
/// the requested parameters.
pub fn generate_document_with_report(
    workload: &Workload,
    config: &DocConfig,
) -> (Document, DocReport) {
    let levels = config.levels(workload);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut doc = Document::new("r");
    let root = doc.root();
    // An extra wrapper level exercises the `//` step of the level-0 mapping.
    let wrapper = doc.add_element(root, "collection");
    let mut entities = 0usize;
    grow(
        workload,
        config,
        levels,
        &mut rng,
        &mut doc,
        wrapper,
        0,
        &mut entities,
    );
    let report = DocReport {
        nodes: doc.len(),
        entities,
        levels,
    };
    (doc, report)
}

#[allow(clippy::too_many_arguments)]
fn grow(
    workload: &Workload,
    config: &DocConfig,
    levels: usize,
    rng: &mut StdRng,
    doc: &mut Document,
    parent: NodeId,
    level: usize,
    entities: &mut usize,
) {
    if level >= levels {
        return;
    }
    let label = &workload.level_labels[level];
    for sibling in 0..config.branching.max(1) {
        let node = doc.add_element(parent, label.clone());
        *entities += 1;
        // Identifier: unique among siblings (key condition 2) and always
        // present (key condition 1).
        doc.add_attribute(node, format!("id{level}"), format!("{label}-{sibling}"));
        // Other attribute fields: alternative-key attributes must also be
        // unique among siblings and present; to keep generation simple every
        // attribute field is generated that way, with a random component so
        // different parents may or may not collide.
        for field in workload.attr_fields_per_level[level].iter().skip(1) {
            let collide: u8 = rng.gen_range(0..3);
            doc.add_attribute(
                node,
                format!("@{field}"),
                format!("{field}-{sibling}-{collide}"),
            );
        }
        // Element fields: at most one occurrence (uniqueness keys demand at
        // most one), possibly omitted to exercise nulls.
        for field in &workload.element_fields_per_level[level] {
            if rng.gen_bool(config.omission_probability) {
                continue;
            }
            let child = doc.add_element(node, format!("{field}_el"));
            let text: u16 = rng.gen_range(0..1000);
            doc.add_text(child, format!("{field}-text-{text}"));
        }
        grow(
            workload,
            config,
            levels,
            rng,
            doc,
            node,
            level + 1,
            entities,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, WorkloadConfig};
    use xmlprop_xmlkeys::satisfies_all;

    #[test]
    fn generated_documents_satisfy_sigma() {
        for seed in 0..5 {
            let w = generate(&WorkloadConfig::new(14, 4, 12).with_seed(seed));
            let doc = generate_document(
                &w,
                &DocConfig {
                    seed,
                    ..DocConfig::default()
                },
            );
            assert!(
                satisfies_all(&doc, w.sigma.iter()),
                "seed {seed}: generated document violates its own key set"
            );
        }
    }

    #[test]
    fn depth_knob_truncates_levels_and_reports_sizes() {
        let w = generate(&WorkloadConfig::new(12, 4, 8));
        let (full, full_report) = generate_document_with_report(
            &w,
            &DocConfig {
                branching: 2,
                omission_probability: 0.0,
                ..DocConfig::default()
            },
        );
        let (shallow, shallow_report) = generate_document_with_report(
            &w,
            &DocConfig {
                branching: 2,
                omission_probability: 0.0,
                depth: Some(2),
                ..DocConfig::default()
            },
        );
        assert_eq!(full_report.nodes, full.len());
        assert_eq!(shallow_report.nodes, shallow.len());
        assert_eq!(full_report.levels, 4);
        assert_eq!(shallow_report.levels, 2);
        // b + b² entities for the truncated doc, b + … + b⁴ for the full one.
        assert_eq!(shallow_report.entities, 2 + 4);
        assert_eq!(full_report.entities, 2 + 4 + 8 + 16);
        assert!(full.len() > shallow.len());
        // Truncated documents still satisfy Σ (the keys constrain what
        // exists; absent levels violate nothing).
        assert!(satisfies_all(&shallow, w.sigma.iter()));
    }

    #[test]
    #[should_panic(expected = "exceeds the workload's")]
    fn depth_knob_refuses_to_exceed_the_workload() {
        let w = generate(&WorkloadConfig::new(12, 4, 8));
        generate_document(
            &w,
            &DocConfig {
                depth: Some(5),
                ..DocConfig::default()
            },
        );
    }

    #[test]
    fn node_counts_scale_into_the_bench_range() {
        // The grid the `docs` experiment uses must actually reach ~10⁴
        // nodes deterministically (larger sizes scale the same formula).
        let w = generate(&WorkloadConfig::new(15, 4, 10));
        let (_, report) = generate_document_with_report(
            &w,
            &DocConfig {
                branching: 6,
                omission_probability: 0.0,
                seed: 1,
                ..DocConfig::default()
            },
        );
        assert!(report.nodes >= 5_000, "got {} nodes", report.nodes);
        assert_eq!(report.entities, 6 + 36 + 216 + 1296);
    }

    #[test]
    fn document_size_scales_with_branching() {
        let w = generate(&WorkloadConfig::new(10, 3, 6));
        let small = generate_document(
            &w,
            &DocConfig {
                branching: 2,
                ..DocConfig::default()
            },
        );
        let large = generate_document(
            &w,
            &DocConfig {
                branching: 4,
                ..DocConfig::default()
            },
        );
        assert!(large.len() > small.len());
    }

    #[test]
    fn shredded_instance_has_expected_row_count() {
        // With no omissions and branching b over depth d, the Cartesian
        // semantics produces exactly b^d rows (one per deepest entity, since
        // every non-entity child is unique or missing).
        let w = generate(&WorkloadConfig::new(8, 3, 6));
        let doc = generate_document(
            &w,
            &DocConfig {
                branching: 2,
                omission_probability: 0.0,
                seed: 1,
                ..DocConfig::default()
            },
        );
        let rel = w.universal.shred(&doc);
        assert_eq!(rel.len(), 8); // 2^3
    }

    #[test]
    fn omissions_produce_nulls() {
        let w = generate(&WorkloadConfig::new(16, 3, 12).with_seed(3));
        let doc = generate_document(
            &w,
            &DocConfig {
                branching: 2,
                omission_probability: 0.9,
                seed: 3,
                ..DocConfig::default()
            },
        );
        let rel = w.universal.shred(&doc);
        let has_null = rel.rows().iter().any(|r| r.has_null());
        // With 90% omission of element fields nulls are effectively certain
        // as long as the workload has any element field.
        let any_element_field = w
            .element_fields_per_level
            .iter()
            .any(|fields| !fields.is_empty());
        if any_element_field {
            assert!(has_null);
        }
    }

    #[test]
    fn propagated_fds_hold_on_generated_instances() {
        // End-to-end soundness: everything in the minimum cover holds, under
        // the paper's null semantics, on instances shredded from documents
        // that satisfy Σ.
        for seed in 0..4 {
            let w = generate(&WorkloadConfig::new(12, 3, 10).with_seed(seed));
            let cover = xmlprop_core::minimum_cover(&w.sigma, &w.universal);
            let doc = generate_document(
                &w,
                &DocConfig {
                    seed: seed + 100,
                    ..DocConfig::default()
                },
            );
            let rel = w.universal.shred(&doc);
            for fd in &cover {
                assert!(
                    rel.satisfies_fd_paper(fd),
                    "seed {seed}: cover FD {fd} violated on a generated instance"
                );
            }
        }
    }
}
