//! Synthetic workloads reproducing the experimental setup of Section 6.
//!
//! The paper evaluates its algorithms on synthetic inputs parameterised by
//! three quantities:
//!
//! * **fields** — the number of attributes of the universal relation
//!   (5–500 in Fig. 7(a), up to 1000 in the in-text Oracle-limit check);
//! * **depth** — the depth of the table tree (2–20 in Fig. 7(b), values
//!   chosen "based on the average tree depth found in real XML data");
//! * **keys** — the number of XML keys (10–100 in Fig. 7(c)).
//!
//! The authors' generator is not published, so this crate provides the
//! closest synthetic equivalent (the substitution is documented in
//! DESIGN.md): a hierarchy of `depth` nested entity levels, each identified
//! within its parent by an `@id…` attribute, with the remaining fields
//! spread over the levels as attribute or element children, and a key set
//! consisting of the transitive chain of identifying keys plus additional
//! alternative keys up to the requested count.
//!
//! It also provides a document generator ([`generate_document`]) that
//! produces XML trees *satisfying* the generated key set, which the property
//! tests use to check soundness of the propagation algorithms end to end,
//! a corpus generator ([`generate_corpus`]) materializing many such
//! documents with per-document seeds (the input of the parallel corpus
//! pipeline and its benches), and a raw FD-set generator
//! ([`generate_fds`]) producing the 10³–10⁴-FD inputs of the relational
//! closure/minimum-cover benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod docs;
mod fdsynth;
mod synth;

pub use corpus::{corpus_doc_config, generate_corpus, CorpusConfig, CorpusReport};
pub use docs::{generate_document, generate_document_with_report, DocConfig, DocReport};
pub use fdsynth::{closure_seed, generate_fds, FdSetConfig};
pub use synth::{generate, random_fd, target_fd, Workload, WorkloadConfig};
