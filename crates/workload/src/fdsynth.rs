//! Synthetic *relational* FD-set generation.
//!
//! The Section 6 workloads of [`crate::generate`] produce XML keys and table
//! rules; the FD engine benchmarks need raw functional-dependency sets at
//! scales (10³–10⁴ FDs) no propagated cover reaches.  This module generates
//! them directly: layered FD chains over a bounded attribute universe, so
//! that attribute closures cascade through many FDs instead of terminating
//! immediately.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use xmlprop_reldb::Fd;

/// Parameters of a synthetic FD set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FdSetConfig {
    /// Number of attributes in the universe (`a0` … `a{n-1}`).
    pub attrs: usize,
    /// Number of FDs to generate.
    pub fds: usize,
    /// Maximum left-hand-side size (at least 1).
    pub max_lhs: usize,
    /// RNG seed, so benchmarks are reproducible.
    pub seed: u64,
}

impl FdSetConfig {
    /// A configuration sized for `fds` dependencies: the universe gets one
    /// attribute per five FDs (min 8) — dense enough that closures chain.
    pub fn sized(fds: usize) -> Self {
        FdSetConfig {
            attrs: (fds / 5).max(8),
            fds,
            max_lhs: 3,
            seed: 42,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a reproducible synthetic FD set.
///
/// Attributes are arranged in a conceptual chain: each FD picks its
/// left-hand side near some pivot attribute and determines an attribute a
/// little further down the chain (wrapping around), so the closure of a
/// small seed set keeps firing FDs — the workload the counter-based
/// linear-time closure is built for.
pub fn generate_fds(config: &FdSetConfig) -> Vec<Fd> {
    assert!(config.attrs >= 2, "need at least two attributes");
    assert!(
        config.max_lhs >= 1,
        "left-hand sides need at least one slot"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let attr = |i: usize| format!("a{}", i % config.attrs);
    let mut out = Vec::with_capacity(config.fds);
    for _ in 0..config.fds {
        let pivot = rng.gen_range(0..config.attrs);
        let lhs_size = rng.gen_range(1..config.max_lhs + 1);
        let lhs: BTreeSet<String> = (0..lhs_size)
            // Left-hand sides cluster in a small window above the pivot so
            // distinct FDs share attributes (and therefore interact).
            .map(|_| attr(pivot + rng.gen_range(0..4)))
            .collect();
        // The determined attribute sits 1–8 steps down the chain.
        let rhs = attr(pivot + rng.gen_range(1..9));
        out.push(Fd::new(lhs, std::iter::once(rhs).collect()));
    }
    out
}

/// A seed attribute set for closure probes over a generated FD set: the
/// first `size` attributes of the universe.
pub fn closure_seed(config: &FdSetConfig, size: usize) -> BTreeSet<String> {
    (0..size.min(config.attrs))
        .map(|i| format!("a{i}"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_reldb::closure;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let config = FdSetConfig::sized(100);
        let a = generate_fds(&config);
        let b = generate_fds(&config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let c = generate_fds(&config.clone().with_seed(7));
        assert_ne!(a, c);
    }

    #[test]
    fn closures_cascade() {
        // The chain layout must make closures grow well beyond the seed.
        let config = FdSetConfig::sized(500);
        let fds = generate_fds(&config);
        let seed = closure_seed(&config, 3);
        let cl = closure(&seed, &fds);
        assert!(
            cl.len() > seed.len() * 4,
            "closure barely grew: {} from {}",
            cl.len(),
            seed.len()
        );
    }

    #[test]
    fn all_attributes_stay_in_the_universe() {
        let config = FdSetConfig {
            attrs: 10,
            fds: 200,
            max_lhs: 4,
            seed: 1,
        };
        for fd in generate_fds(&config) {
            for a in fd.attributes() {
                let idx: usize = a[1..].parse().unwrap();
                assert!(idx < config.attrs);
            }
        }
    }
}
