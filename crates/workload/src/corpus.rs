//! Corpus generation: many documents against one workload.
//!
//! The corpus pipeline's unit of scale is a *collection* of documents
//! checked against one key set and shredded through one transformation.
//! [`generate_corpus`] materializes such a collection with **per-document
//! seeds**: document `i` is generated from
//! [`corpus_doc_config`]`(config, i)`, so any single document of a corpus
//! can be regenerated in isolation (for bisecting a pipeline disagreement,
//! or sharding generation itself) without replaying the rest.

use crate::docs::{generate_document_with_report, DocConfig, DocReport};
use crate::Workload;
use xmlprop_xmltree::Document;

/// Parameters of corpus generation.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Number of documents to generate.
    pub documents: usize,
    /// The per-document configuration template; document `i` uses
    /// `base.seed + i` as its seed (see [`corpus_doc_config`]).
    pub base: DocConfig,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            documents: 8,
            base: DocConfig::default(),
        }
    }
}

/// The exact [`DocConfig`] of document `i` of a corpus: the base
/// configuration with the seed offset by `i`.  `generate_document(w,
/// &corpus_doc_config(c, i))` reproduces corpus document `i` bit-for-bit in
/// isolation.
pub fn corpus_doc_config(config: &CorpusConfig, i: usize) -> DocConfig {
    DocConfig {
        seed: config.base.seed.wrapping_add(i as u64),
        ..config.base.clone()
    }
}

/// Size report of one generated corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusReport {
    /// Number of documents generated.
    pub documents: usize,
    /// Total node count across the corpus (the scale parameter of the
    /// corpus benches — recorded, never trusted from the request).
    pub total_nodes: usize,
    /// The per-document reports, in corpus order.
    pub docs: Vec<DocReport>,
}

/// Generates a corpus of `config.documents` documents conforming to the
/// workload (each satisfying its key set Σ), with per-document seeds.
pub fn generate_corpus(
    workload: &Workload,
    config: &CorpusConfig,
) -> (Vec<Document>, CorpusReport) {
    let mut documents = Vec::with_capacity(config.documents);
    let mut docs = Vec::with_capacity(config.documents);
    for i in 0..config.documents {
        let (doc, report) = generate_document_with_report(workload, &corpus_doc_config(config, i));
        documents.push(doc);
        docs.push(report);
    }
    let report = CorpusReport {
        documents: documents.len(),
        total_nodes: docs.iter().map(|r| r.nodes).sum(),
        docs,
    };
    (documents, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::generate_document;
    use crate::{generate, WorkloadConfig};
    use xmlprop_xmlkeys::satisfies_all;

    fn config() -> CorpusConfig {
        CorpusConfig {
            documents: 5,
            base: DocConfig {
                branching: 2,
                omission_probability: 0.3,
                seed: 11,
                depth: None,
            },
        }
    }

    #[test]
    fn corpus_documents_are_reproducible_in_isolation() {
        let w = generate(&WorkloadConfig::new(12, 3, 8));
        let c = config();
        let (docs, report) = generate_corpus(&w, &c);
        assert_eq!(docs.len(), 5);
        assert_eq!(report.documents, 5);
        assert_eq!(report.docs.len(), 5);
        assert_eq!(
            report.total_nodes,
            docs.iter().map(Document::len).sum::<usize>()
        );
        for (i, doc) in docs.iter().enumerate() {
            let alone = generate_document(&w, &corpus_doc_config(&c, i));
            assert_eq!(doc, &alone, "document {i} must regenerate in isolation");
        }
    }

    #[test]
    fn corpus_documents_differ_and_satisfy_sigma() {
        let w = generate(&WorkloadConfig::new(12, 3, 8));
        let (docs, _) = generate_corpus(&w, &config());
        // Distinct seeds produce distinct documents (overwhelmingly likely:
        // attribute collision components are random per seed).
        assert!(docs.windows(2).any(|pair| pair[0] != pair[1]));
        for (i, doc) in docs.iter().enumerate() {
            assert!(
                satisfies_all(doc, w.sigma.iter()),
                "corpus document {i} violates Σ"
            );
        }
    }

    #[test]
    fn corpus_generation_is_deterministic() {
        let w = generate(&WorkloadConfig::new(10, 3, 6));
        let (a, ra) = generate_corpus(&w, &config());
        let (b, rb) = generate_corpus(&w, &config());
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }
}
