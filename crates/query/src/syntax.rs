//! Textual query syntax: tokenizer and recursive-descent parser.
//!
//! The language is a small select/project/join subset, enough to ask
//! questions of a shredded document (see the crate docs for the role it
//! plays in the pipeline):
//!
//! ```text
//! query  ::= 'select' attrs 'from' ident join* where?
//! attrs  ::= '*' | [ attr (',' attr)* ]
//! join   ::= 'join' ident 'on' attr '=' attr ('and' attr '=' attr)*
//! where  ::= 'where' attr '=' string ('and' attr '=' string)*
//! attr   ::= ident ('.' ident)?
//! string ::= '\'' text '\''
//! ```
//!
//! Keywords are lowercase and reserved (an attribute or relation cannot be
//! named `select`, `from`, `join`, `on`, `where` or `and`); whitespace is
//! insignificant. String literals use single quotes with the SQL doubling
//! convention for an embedded quote (`'it''s'`). The attribute list may be
//! empty (`select from r`), which projects every row onto the empty tuple —
//! the degenerate query returns at most one row. Qualified names
//! (`chapter.name`) disambiguate attributes that occur in more than one
//! joined relation.
//!
//! Parse errors reuse the workspace [`Error`] table with origin `query`, so
//! the CLI and the server report them under the same `parse` wire code as
//! every other malformed input.

use std::fmt;
use xmlprop_pipeline::Error;

/// A possibly qualified attribute reference, displayed exactly as written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrRef {
    /// Qualifier naming the relation the attribute must come from.
    pub relation: Option<String>,
    /// The attribute name.
    pub attr: String,
}

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.relation {
            Some(rel) => write!(f, "{rel}.{}", self.attr),
            None => write!(f, "{}", self.attr),
        }
    }
}

/// One `join <rel> on a = b [and c = d]…` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinClause {
    /// The relation joined in.
    pub relation: String,
    /// Equated attribute pairs, as written (sides in source order).
    pub on: Vec<(AttrRef, AttrRef)>,
}

/// One `attr = 'literal'` conjunct of the `where` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Condition {
    /// The filtered attribute.
    pub attr: AttrRef,
    /// The literal it must equal (SQL semantics: NULL never matches).
    pub value: String,
}

/// The projection list: `*` or explicit attributes (possibly none).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Select {
    /// `select *` — every attribute of every relation in the query.
    Star,
    /// An explicit (possibly empty) attribute list.
    Attrs(Vec<AttrRef>),
}

/// A parsed query, before binding against a catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The projection list.
    pub select: Select,
    /// The base relation scanned first.
    pub from: String,
    /// Joined relations, in source order.
    pub joins: Vec<JoinClause>,
    /// `where` conjuncts.
    pub filters: Vec<Condition>,
}

const KEYWORDS: [&str; 6] = ["select", "from", "join", "on", "where", "and"];

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Str(String),
    Comma,
    Eq,
    Star,
    Dot,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Comma => write!(f, "`,`"),
            Token::Eq => write!(f, "`=`"),
            Token::Star => write!(f, "`*`"),
            Token::Dot => write!(f, "`.`"),
        }
    }
}

fn parse_error(message: impl Into<String>) -> Error {
    Error::parse("query", message.into())
}

fn tokenize(text: &str) -> Result<Vec<Token>, Error> {
    let mut tokens = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            _ if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '=' => {
                chars.next();
                tokens.push(Token::Eq);
            }
            '*' => {
                chars.next();
                tokens.push(Token::Star);
            }
            '.' => {
                chars.next();
                tokens.push(Token::Dot);
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            // `''` is an escaped quote; anything else ends
                            // the literal.
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(c) => s.push(c),
                        None => return Err(parse_error("unterminated string literal")),
                    }
                }
                tokens.push(Token::Str(s));
            }
            _ if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(s));
            }
            _ => return Err(parse_error(format!("unexpected character `{c}`"))),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.at_keyword(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.expected(&format!("`{kw}`")))
        }
    }

    fn expected(&self, what: &str) -> Error {
        match self.peek() {
            Some(t) => parse_error(format!("expected {what}, found {t}")),
            None => parse_error(format!("expected {what}, found end of query")),
        }
    }

    /// A non-keyword identifier (relation or attribute name).
    fn ident(&mut self, what: &str) -> Result<String, Error> {
        match self.peek() {
            Some(Token::Ident(s)) if !KEYWORDS.contains(&s.as_str()) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.expected(what)),
        }
    }

    fn attr_ref(&mut self) -> Result<AttrRef, Error> {
        let first = self.ident("an attribute name")?;
        if self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let attr = self.ident("an attribute name after `.`")?;
            Ok(AttrRef {
                relation: Some(first),
                attr,
            })
        } else {
            Ok(AttrRef {
                relation: None,
                attr: first,
            })
        }
    }

    fn select_list(&mut self) -> Result<Select, Error> {
        if self.peek() == Some(&Token::Star) {
            self.pos += 1;
            return Ok(Select::Star);
        }
        // An empty list (`select from r`) is the degenerate zero-attribute
        // projection.
        let mut attrs = Vec::new();
        if self.at_keyword("from") {
            return Ok(Select::Attrs(attrs));
        }
        attrs.push(self.attr_ref()?);
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            attrs.push(self.attr_ref()?);
        }
        Ok(Select::Attrs(attrs))
    }

    fn join_clause(&mut self) -> Result<JoinClause, Error> {
        let relation = self.ident("a relation name after `join`")?;
        self.expect_keyword("on")?;
        let mut on = Vec::new();
        loop {
            let left = self.attr_ref()?;
            if self.next() != Some(Token::Eq) {
                return Err(parse_error(format!(
                    "expected `=` after `{left}` in join condition"
                )));
            }
            let right = self.attr_ref()?;
            on.push((left, right));
            if self.at_keyword("and") {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(JoinClause { relation, on })
    }

    fn where_clause(&mut self) -> Result<Vec<Condition>, Error> {
        let mut filters = Vec::new();
        loop {
            let attr = self.attr_ref()?;
            if self.next() != Some(Token::Eq) {
                return Err(parse_error(format!(
                    "expected `=` after `{attr}` in where clause"
                )));
            }
            let value = match self.next() {
                Some(Token::Str(s)) => s,
                Some(t) => {
                    return Err(parse_error(format!(
                        "expected a quoted string literal after `{attr} =`, found {t}"
                    )))
                }
                None => {
                    return Err(parse_error(format!(
                        "expected a quoted string literal after `{attr} =`, found end of query"
                    )))
                }
            };
            filters.push(Condition { attr, value });
            if self.at_keyword("and") {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(filters)
    }
}

/// Parses one query. Errors carry the `parse` wire code (origin `query`).
pub fn parse_query(text: &str) -> Result<Query, Error> {
    let mut p = Parser {
        tokens: tokenize(text)?,
        pos: 0,
    };
    p.expect_keyword("select")?;
    let select = p.select_list()?;
    p.expect_keyword("from")?;
    let from = p.ident("a relation name after `from`")?;
    let mut joins = Vec::new();
    while p.at_keyword("join") {
        p.pos += 1;
        joins.push(p.join_clause()?);
    }
    let filters = if p.at_keyword("where") {
        p.pos += 1;
        p.where_clause()?
    } else {
        Vec::new()
    };
    if let Some(t) = p.peek() {
        return Err(parse_error(format!("unexpected trailing {t}")));
    }
    Ok(Query {
        select,
        from,
        joins,
        filters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(name: &str) -> AttrRef {
        AttrRef {
            relation: None,
            attr: name.to_string(),
        }
    }

    fn qualified(rel: &str, name: &str) -> AttrRef {
        AttrRef {
            relation: Some(rel.to_string()),
            attr: name.to_string(),
        }
    }

    #[test]
    fn parses_simple_select() {
        let q = parse_query("select isbn, title from book").unwrap();
        assert_eq!(q.select, Select::Attrs(vec![attr("isbn"), attr("title")]));
        assert_eq!(q.from, "book");
        assert!(q.joins.is_empty());
        assert!(q.filters.is_empty());
    }

    #[test]
    fn parses_star_join_and_where() {
        let q = parse_query(
            "select * from U join chapter on bookIsbn = inBook and chapNum = number \
             where bookTitle = 'XML'",
        )
        .unwrap();
        assert_eq!(q.select, Select::Star);
        assert_eq!(q.from, "U");
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].relation, "chapter");
        assert_eq!(
            q.joins[0].on,
            vec![
                (attr("bookIsbn"), attr("inBook")),
                (attr("chapNum"), attr("number")),
            ]
        );
        assert_eq!(
            q.filters,
            vec![Condition {
                attr: attr("bookTitle"),
                value: "XML".to_string(),
            }]
        );
    }

    #[test]
    fn parses_qualified_attributes() {
        let q = parse_query(
            "select chapter.name from chapter join section on inChapt = chapter.number",
        )
        .unwrap();
        assert_eq!(q.select, Select::Attrs(vec![qualified("chapter", "name")]));
        assert_eq!(
            q.joins[0].on,
            vec![(attr("inChapt"), qualified("chapter", "number"))]
        );
    }

    #[test]
    fn parses_empty_projection() {
        let q = parse_query("select from book").unwrap();
        assert_eq!(q.select, Select::Attrs(Vec::new()));
        assert_eq!(q.from, "book");
    }

    #[test]
    fn parses_escaped_quote() {
        let q = parse_query("select a from r where a = 'it''s'").unwrap();
        assert_eq!(q.filters[0].value, "it's");
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "select",
            "select a",
            "select a from",
            "select a frm r",
            "select a from r join",
            "select a from r join s",
            "select a from r join s on",
            "select a from r join s on a = ",
            "select a from r where a = b",
            "select a from r where a = 'x",
            "select a from r trailing",
            "select a, from r",
            "select a from r where from = 'x'",
            "select a from r ;",
        ] {
            let err = parse_query(bad).unwrap_err();
            assert_eq!(err.wire_code(), "parse", "query {bad:?}: {err}");
        }
    }

    #[test]
    fn keywords_are_reserved() {
        assert!(parse_query("select select from r").is_err());
        assert!(parse_query("select a from where").is_err());
    }
}
