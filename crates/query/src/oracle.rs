//! A deliberately naive cross-product/sort oracle, plus proptests pinning
//! the executor (keyed and naive plans alike) against it bit-for-bit.
//!
//! The oracle shares nothing with the executor's join machinery: it
//! materializes the full cross product of every relation in the query,
//! filters it by the join conditions and `where` conjuncts with
//! [`Value::sql_eq`], projects, then sorts and deduplicates. Comparisons
//! are order-normalized (the executor's output is sorted before the
//! comparison); on top of that, a plan that elided its dedup pass must
//! already be duplicate-free.

use crate::plan::{plan, plan_naive, Catalog};
use crate::syntax::{parse_query, Query, Select};
use crate::{execute, Plan};
use xmlprop_reldb::{Database, Fd, Relation, RelationSchema, Tuple, Value};

/// Cross product + filter + project + sort + dedup, straight off the
/// query's surface syntax.
fn evaluate(query: &Query, catalog: &Catalog, db: &Database) -> Vec<Vec<Value>> {
    // Relation order: base, then joins.
    let mut names = vec![query.from.clone()];
    names.extend(query.joins.iter().map(|j| j.relation.clone()));
    let empty = |name: &str| Relation::new(catalog.schema(name).expect("known").clone());
    let instances: Vec<Relation> = names
        .iter()
        .map(|n| db.get(n).cloned().unwrap_or_else(|| empty(n)).distinct())
        .collect();

    // Combined attribute layout, mirroring the planner's blocks.
    let mut offsets = Vec::new();
    let mut total = 0usize;
    for rel in &instances {
        offsets.push(total);
        total += rel.schema().arity();
    }
    let position = |attr: &crate::syntax::AttrRef| -> usize {
        let mut found = Vec::new();
        for (i, rel) in instances.iter().enumerate() {
            if attr.relation.as_deref().is_some_and(|r| r != names[i]) {
                continue;
            }
            if let Some(idx) = rel.schema().index_of(&attr.attr) {
                found.push(offsets[i] + idx);
            }
        }
        assert_eq!(found.len(), 1, "oracle queries must bind unambiguously");
        found[0]
    };

    // Full cross product.
    let mut rows: Vec<Vec<Value>> = vec![Vec::new()];
    for rel in &instances {
        let mut next = Vec::new();
        for row in &rows {
            for tuple in rel.rows() {
                let mut combined = row.clone();
                combined.extend(tuple.values().iter().cloned());
                next.push(combined);
            }
        }
        rows = next;
    }

    // Join conditions and filters, SQL equality throughout.
    for join in &query.joins {
        for (a, b) in &join.on {
            let (pa, pb) = (position(a), position(b));
            rows.retain(|row| row[pa].sql_eq(&row[pb]));
        }
    }
    for cond in &query.filters {
        let p = position(&cond.attr);
        let needle = Value::text(cond.value.clone());
        rows.retain(|row| row[p].sql_eq(&needle));
    }

    // Project, sort, dedup.
    let projection: Vec<usize> = match &query.select {
        Select::Star => (0..total).collect(),
        Select::Attrs(attrs) => attrs.iter().map(position).collect(),
    };
    let mut out: Vec<Vec<Value>> = rows
        .iter()
        .map(|row| projection.iter().map(|&p| row[p].clone()).collect())
        .collect();
    out.sort();
    out.dedup();
    out
}

fn rows_of(result: &Relation) -> Vec<Vec<Value>> {
    result.rows().iter().map(|t| t.values().to_vec()).collect()
}

/// Executes `plan` and checks it against the oracle, order-normalized.
fn check_against_oracle(query: &Query, the_plan: &Plan, catalog: &Catalog, db: &Database) {
    let result = execute(the_plan, db).expect("execution succeeds");
    let mut got = rows_of(&result);
    if !the_plan.dedup {
        // An elided dedup pass must not have let duplicates through.
        let mut dedup = got.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), got.len(), "elided dedup admitted duplicates");
    }
    got.sort();
    got.dedup();
    assert_eq!(
        got,
        evaluate(query, catalog, db),
        "plan: {}",
        the_plan.describe()
    );
}

/// A parent/child catalog whose instances the generator keeps FD-clean:
/// `parent.id` is unique, so `id -> payload` genuinely holds.
fn parent_child_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.add_relation(
        RelationSchema::new("parent", ["id", "payload"]),
        &[Fd::parse("id -> payload").unwrap()],
    );
    catalog.add_relation(RelationSchema::new("child", ["pid", "note", "extra"]), &[]);
    catalog
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Index 0 becomes NULL; small value alphabets force collisions.
    fn value(options: &'static [&'static str]) -> impl Strategy<Value = Value> {
        (0..options.len() + 1).prop_map(move |i| {
            if i == 0 {
                Value::Null
            } else {
                Value::text(options[i - 1])
            }
        })
    }

    /// Parent rows with structurally distinct ids (NULL allowed at most
    /// once by distinctness), so `id -> payload` holds classically and the
    /// dedup-elision preconditions are met.
    fn parent_rows() -> impl Strategy<Value = Vec<(Value, Value)>> {
        proptest::collection::vec(
            (value(&["1", "2", "3", "4", "5"]), value(&["a", "b"])),
            0..6,
        )
        .prop_map(|mut rows| {
            let mut seen = std::collections::BTreeSet::new();
            rows.retain(|(id, _)| seen.insert(id.clone()));
            rows
        })
    }

    fn child_rows() -> impl Strategy<Value = Vec<(Value, Value, Value)>> {
        proptest::collection::vec(
            (
                value(&["1", "2", "3", "9"]),
                value(&["x", "y"]),
                value(&["p", "q"]),
            ),
            0..8,
        )
    }

    fn database(parent: Vec<(Value, Value)>, child: Vec<(Value, Value, Value)>) -> Database {
        let mut parent_rel = Relation::new(RelationSchema::new("parent", ["id", "payload"]));
        for (id, payload) in parent {
            parent_rel.insert(Tuple::new(vec![id, payload]));
        }
        let mut child_rel = Relation::new(RelationSchema::new("child", ["pid", "note", "extra"]));
        for (pid, note, extra) in child {
            child_rel.insert(Tuple::new(vec![pid, note, extra]));
        }
        let mut db = Database::new();
        db.insert(parent_rel);
        db.insert(child_rel);
        db
    }

    const QUERIES: [&str; 8] = [
        "select * from parent",
        "select payload from parent",
        "select id from parent where payload = 'a'",
        "select from child",
        "select * from child join parent on pid = id",
        "select note, payload from child join parent on pid = id",
        "select pid from child join parent on pid = id where payload = 'b'",
        "select extra from child join parent on pid = id and note = payload",
    ];

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Keyed plan == naive plan == cross-product oracle, on random
        /// NULL-riddled instances whose parent key genuinely holds.
        #[test]
        fn executor_matches_oracle(parent in parent_rows(), child in child_rows()) {
            let catalog = parent_child_catalog();
            let db = database(parent, child);
            for text in QUERIES {
                let query = parse_query(text).unwrap();
                let optimized = plan(&query, &catalog).unwrap();
                let naive = plan_naive(&query, &catalog).unwrap();
                check_against_oracle(&query, &optimized, &catalog, &db);
                check_against_oracle(&query, &naive, &catalog, &db);
                // Same row *sequence*, not just the same bag: a key lookup
                // replaces a scan without perturbing order, and on
                // FD-clean instances an elided dedup changes nothing.
                let a = execute(&optimized, &db).unwrap();
                let b = execute(&naive, &db).unwrap();
                prop_assert_eq!(&rows_of(&a), &rows_of(&b), "query: {}", text);
            }
        }
    }
}
