//! A small key-aware query engine over the propagated relational design.
//!
//! The paper's pipeline shreds an XML document into a [`Database`] and
//! propagates the XML keys into relational FDs; this crate closes the loop
//! by letting users *ask questions* of the result, and by making the
//! propagated constraints earn their keep inside the optimizer:
//!
//! - [`parse_query`] — hand-rolled parser for a textual
//!   select/project/join syntax (grammar in its docs);
//! - [`Catalog`] / [`plan`] — binder plus key-aware optimizer over the
//!   interned [`FdIndex`]: a join equated on a propagated key becomes a
//!   hash lookup against a [`KeyedTable`], and a projection whose kept
//!   attributes functionally determine the whole tuple skips the dedup
//!   pass ([`plan_naive`] disables both, as the comparison baseline);
//! - [`execute`] — the executor, with SQL comparison semantics (NULL never
//!   equals anything) and set semantics on instances.
//!
//! All errors reuse the workspace [`Error`](xmlprop_pipeline::Error) table:
//! syntax and binding failures carry the `parse` wire code, a query against
//! an unregistered relation the `relation` code.
//!
//! [`Database`]: xmlprop_reldb::Database
//! [`FdIndex`]: xmlprop_reldb::FdIndex

mod exec;
mod plan;
mod syntax;

pub use exec::{execute, KeyedTable};
pub use plan::{plan, plan_naive, Catalog, JoinKind, JoinStep, Plan};
pub use syntax::{parse_query, AttrRef, Condition, JoinClause, Query, Select};

#[cfg(test)]
mod oracle;
