//! Catalog, binder and key-aware optimizer.
//!
//! Binding resolves every attribute reference of a parsed [`Query`] against
//! a [`Catalog`] of relation schemas annotated with their propagated FD
//! covers, producing a [`Plan`] over *combined positions*: the row a query
//! manipulates is the concatenation of the base relation's attributes with
//! each joined relation's attributes, in source order.
//!
//! The optimizer consumes the propagated constraints through the same
//! interned [`FdIndex`] the refinement layer uses:
//!
//! - **Key-lookup joins.** A `join r on …` whose right-hand attributes form
//!   a key of `r` under `r`'s propagated cover (their closure covers the
//!   whole schema) executes as a hash lookup against a keyed table instead
//!   of a nested-loop scan.
//! - **Dedup elision.** The engine has set semantics (inputs are
//!   deduplicated on load, outputs are duplicate-free). A projection whose
//!   kept positions functionally determine the entire combined row — under
//!   the per-relation covers plus the join equalities — cannot introduce
//!   duplicates, so the output dedup pass is skipped.
//!
//! Both rewrites trust the catalog's FDs. For databases shredded from
//! documents that satisfy the source key set this is exactly the paper's
//! propagation guarantee; feeding FD-violating data to an optimized plan
//! voids the dedup elision (the keyed join stays correct: its buckets keep
//! every matching row).

use crate::syntax::{AttrRef, Query, Select};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use xmlprop_pipeline::Error;
use xmlprop_reldb::{AttrId, AttrSet, AttrUniverse, Fd, FdIndex, IFd, RelationSchema};

/// Relation schemas plus their propagated covers, the planner's input.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: BTreeMap<String, CatalogRelation>,
}

#[derive(Debug, Clone)]
struct CatalogRelation {
    schema: RelationSchema,
    cover: Vec<Fd>,
    universe: AttrUniverse,
    index: FdIndex,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a relation with its (propagated) FD cover. The cover is
    /// interned once, so key tests during planning are bitset closures.
    pub fn add_relation(&mut self, schema: RelationSchema, cover: &[Fd]) {
        let mut universe = AttrUniverse::from_names(schema.attributes().iter().map(String::as_str));
        let interned: Vec<IFd> = cover.iter().map(|fd| universe.intern_fd(fd)).collect();
        let index = FdIndex::new(universe.len(), &interned);
        self.relations.insert(
            schema.name().to_string(),
            CatalogRelation {
                schema,
                cover: cover.to_vec(),
                universe,
                index,
            },
        );
    }

    /// The registered relation names, sorted.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// The schema of one relation, if registered.
    pub fn schema(&self, name: &str) -> Option<&RelationSchema> {
        self.relations.get(name).map(|r| &r.schema)
    }

    fn get(&self, name: &str) -> Result<&CatalogRelation, Error> {
        self.relations
            .get(name)
            .ok_or_else(|| Error::unknown_relation(name, self.relation_names()))
    }
}

impl CatalogRelation {
    /// Do `attrs` form a (super)key of this relation under its cover?
    fn is_key(&self, attrs: &[String]) -> bool {
        let seed: AttrSet = attrs
            .iter()
            .filter_map(|a| self.universe.lookup(a))
            .collect();
        let closure = self.index.closure(&seed);
        self.schema.attributes().iter().all(|a| {
            self.universe
                .lookup(a)
                .is_some_and(|id| closure.contains(id))
        })
    }
}

/// One relation's slice of the combined row.
#[derive(Debug, Clone)]
pub(crate) struct Block {
    pub(crate) relation: String,
    pub(crate) offset: usize,
    pub(crate) arity: usize,
}

/// How a join step finds its matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Hash lookup against a table keyed on the equated right-hand
    /// attributes (chosen when they form a propagated key).
    KeyLookup,
    /// Nested-loop scan of the right relation.
    Scan,
}

/// One bound join step.
#[derive(Debug, Clone)]
pub struct JoinStep {
    /// The joined relation.
    pub(crate) relation: String,
    /// Equated pairs: (combined position on the left, attribute index in
    /// the joined relation).
    pub(crate) on: Vec<(usize, usize)>,
    /// Scan or key lookup.
    pub kind: JoinKind,
    /// The condition as written, for [`Plan::describe`].
    pub(crate) on_display: Vec<(String, String)>,
}

/// One bound `where` conjunct.
#[derive(Debug, Clone)]
pub(crate) struct FilterStep {
    pub(crate) position: usize,
    pub(crate) value: String,
    pub(crate) display: String,
}

/// One output column.
#[derive(Debug, Clone)]
pub(crate) struct OutputColumn {
    pub(crate) name: String,
    pub(crate) position: usize,
}

/// A bound, optimized (or deliberately naive) execution plan.
#[derive(Debug, Clone)]
pub struct Plan {
    pub(crate) blocks: Vec<Block>,
    /// Join steps, one per `join` clause.
    pub joins: Vec<JoinStep>,
    pub(crate) filters: Vec<FilterStep>,
    pub(crate) projection: Vec<OutputColumn>,
    /// Whether the executor must deduplicate projected rows.
    pub dedup: bool,
}

impl Plan {
    /// The output column names, in order.
    pub fn output_columns(&self) -> Vec<&str> {
        self.projection.iter().map(|c| c.name.as_str()).collect()
    }

    /// A one-line structural description of the plan, stable across runs:
    ///
    /// ```text
    /// scan U; join chapter on bookIsbn = inBook and chapNum = number \
    /// [key lookup]; where bookTitle = 'XML'; project bookIsbn [distinct]
    /// ```
    ///
    /// `[unique]` on the projection marks an elided dedup pass.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        write!(out, "scan {}", self.blocks[0].relation).expect("String write");
        for join in &self.joins {
            write!(out, "; join {} on ", join.relation).expect("String write");
            for (i, (l, r)) in join.on_display.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                write!(out, "{l} = {r}").expect("String write");
            }
            let kind = match join.kind {
                JoinKind::KeyLookup => "key lookup",
                JoinKind::Scan => "scan",
            };
            write!(out, " [{kind}]").expect("String write");
        }
        if !self.filters.is_empty() {
            out.push_str("; where ");
            for (i, f) in self.filters.iter().enumerate() {
                if i > 0 {
                    out.push_str(" and ");
                }
                write!(out, "{} = '{}'", f.display, f.value.replace('\'', "''"))
                    .expect("String write");
            }
        }
        out.push_str("; project ");
        if self.projection.is_empty() {
            out.push_str("<none>");
        } else {
            for (i, c) in self.projection.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&c.name);
            }
        }
        out.push_str(if self.dedup {
            " [distinct]"
        } else {
            " [unique]"
        });
        out
    }
}

/// Binds and optimizes `query` against `catalog` (key-lookup joins, dedup
/// elision). Unknown relations map to the `relation` wire code, every other
/// binding failure to `parse`.
pub fn plan(query: &Query, catalog: &Catalog) -> Result<Plan, Error> {
    plan_with(query, catalog, true)
}

/// Binds `query` without the key-aware rewrites: every join is a
/// nested-loop scan and the output is always deduplicated. The baseline the
/// `query` benchmark (and the equivalence tests) compare against.
pub fn plan_naive(query: &Query, catalog: &Catalog) -> Result<Plan, Error> {
    plan_with(query, catalog, false)
}

fn bind_error(message: String) -> Error {
    Error::parse("query", message)
}

/// Resolves `attr` to a combined position over `blocks`.
fn resolve(attr: &AttrRef, blocks: &[Block], catalog: &Catalog) -> Result<usize, Error> {
    match &attr.relation {
        Some(rel) => {
            let block = blocks
                .iter()
                .find(|b| b.relation == *rel)
                .ok_or_else(|| bind_error(format!("relation `{rel}` is not part of this query")))?;
            let schema = catalog
                .schema(&block.relation)
                .expect("block came from catalog");
            let idx = schema.index_of(&attr.attr).ok_or_else(|| {
                bind_error(format!("relation `{rel}` has no attribute `{}`", attr.attr))
            })?;
            Ok(block.offset + idx)
        }
        None => {
            let mut hits = Vec::new();
            for block in blocks {
                let schema = catalog
                    .schema(&block.relation)
                    .expect("block came from catalog");
                if let Some(idx) = schema.index_of(&attr.attr) {
                    hits.push((block.relation.clone(), block.offset + idx));
                }
            }
            match hits.len() {
                0 => Err(bind_error(format!("unknown attribute `{}`", attr.attr))),
                1 => Ok(hits[0].1),
                _ => {
                    let rels: Vec<String> = hits.into_iter().map(|(r, _)| r).collect();
                    Err(bind_error(format!(
                        "attribute `{}` is ambiguous (in {}); qualify it as `relation.attribute`",
                        attr.attr,
                        rels.join(", ")
                    )))
                }
            }
        }
    }
}

fn plan_with(query: &Query, catalog: &Catalog, optimize: bool) -> Result<Plan, Error> {
    // Lay out the combined row: base block, then one block per join.
    let mut blocks = Vec::new();
    let mut offset = 0usize;
    let mut push_block = |blocks: &mut Vec<Block>, rel: &str| -> Result<(), Error> {
        let entry = catalog.get(rel)?;
        if blocks.iter().any(|b: &Block| b.relation == rel) {
            return Err(bind_error(format!(
                "relation `{rel}` appears twice; self-joins are not supported"
            )));
        }
        let arity = entry.schema.arity();
        blocks.push(Block {
            relation: rel.to_string(),
            offset,
            arity,
        });
        offset += arity;
        Ok(())
    };
    push_block(&mut blocks, &query.from)?;

    let mut joins = Vec::new();
    for clause in &query.joins {
        push_block(&mut blocks, &clause.relation)?;
        let new_block = blocks.last().expect("just pushed").clone();
        let entry = catalog.get(&clause.relation)?;
        let mut on = Vec::new();
        let mut on_display = Vec::new();
        let mut right_attrs = Vec::new();
        for (a, b) in &clause.on {
            let pa = resolve(a, &blocks, catalog)?;
            let pb = resolve(b, &blocks, catalog)?;
            let in_new = |p: usize| p >= new_block.offset && p < new_block.offset + new_block.arity;
            // Exactly one side must name the relation being joined in.
            let ((left, right), (ld, rd)) = match (in_new(pa), in_new(pb)) {
                (false, true) => ((pa, pb), (a, b)),
                (true, false) => ((pb, pa), (b, a)),
                (true, true) => {
                    return Err(bind_error(format!(
                        "join condition `{a} = {b}` compares `{0}` with itself; one side \
                         must come from an earlier relation",
                        clause.relation
                    )))
                }
                (false, false) => {
                    return Err(bind_error(format!(
                        "join condition `{a} = {b}` does not mention `{}`",
                        clause.relation
                    )))
                }
            };
            let right_idx = right - new_block.offset;
            right_attrs.push(entry.schema.attributes()[right_idx].clone());
            on.push((left, right_idx));
            on_display.push((ld.to_string(), rd.to_string()));
        }
        let kind = if optimize && entry.is_key(&right_attrs) {
            JoinKind::KeyLookup
        } else {
            JoinKind::Scan
        };
        joins.push(JoinStep {
            relation: clause.relation.clone(),
            on,
            kind,
            on_display,
        });
    }

    let mut filters = Vec::new();
    for cond in &query.filters {
        let position = resolve(&cond.attr, &blocks, catalog)?;
        filters.push(FilterStep {
            position,
            value: cond.value.clone(),
            display: cond.attr.to_string(),
        });
    }

    let projection = bind_projection(query, &blocks, catalog)?;

    let dedup = if optimize {
        needs_dedup(&projection, &blocks, &joins, catalog)
    } else {
        true
    };

    Ok(Plan {
        blocks,
        joins,
        filters,
        projection,
        dedup,
    })
}

fn bind_projection(
    query: &Query,
    blocks: &[Block],
    catalog: &Catalog,
) -> Result<Vec<OutputColumn>, Error> {
    let mut projection = Vec::new();
    match &query.select {
        Select::Star => {
            // Every position; bare names where unique, `rel.attr` where not.
            for block in blocks {
                let schema = catalog
                    .schema(&block.relation)
                    .expect("block came from catalog");
                for (i, attr) in schema.attributes().iter().enumerate() {
                    let unique = blocks
                        .iter()
                        .filter(|b| {
                            catalog
                                .schema(&b.relation)
                                .expect("block came from catalog")
                                .contains(attr)
                        })
                        .count()
                        == 1;
                    let name = if unique {
                        attr.clone()
                    } else {
                        format!("{}.{attr}", block.relation)
                    };
                    projection.push(OutputColumn {
                        name,
                        position: block.offset + i,
                    });
                }
            }
        }
        Select::Attrs(attrs) => {
            for attr in attrs {
                let position = resolve(attr, blocks, catalog)?;
                projection.push(OutputColumn {
                    name: attr.to_string(),
                    position,
                });
            }
        }
    }
    let mut names: Vec<&str> = projection.iter().map(|c| c.name.as_str()).collect();
    names.sort_unstable();
    if let Some(dup) = names.windows(2).find(|w| w[0] == w[1]) {
        return Err(bind_error(format!("duplicate output column `{}`", dup[0])));
    }
    Ok(projection)
}

/// Dedup elision: the projection keeps the output duplicate-free iff the
/// kept positions functionally determine every position of the combined
/// row, under the per-relation covers plus the join equalities (equated
/// positions determine each other — matched rows carry equal, non-null
/// values there).
fn needs_dedup(
    projection: &[OutputColumn],
    blocks: &[Block],
    joins: &[JoinStep],
    catalog: &Catalog,
) -> bool {
    let n: usize = blocks.iter().map(|b| b.arity).sum();
    let pos = |i: usize| AttrId(u32::try_from(i).expect("combined arity fits u32"));
    let mut fds = Vec::new();
    for block in blocks {
        let entry = catalog
            .get(&block.relation)
            .expect("block came from catalog");
        for fd in &entry.cover {
            let map_set = |attrs: &std::collections::BTreeSet<String>| -> Option<AttrSet> {
                attrs
                    .iter()
                    .map(|a| entry.schema.index_of(a).map(|i| pos(block.offset + i)))
                    .collect()
            };
            // Covers normally mention only schema attributes; skip any FD
            // that does not, rather than trusting it.
            if let (Some(lhs), Some(rhs)) = (map_set(fd.lhs()), map_set(fd.rhs())) {
                fds.push(IFd::new(lhs, rhs));
            }
        }
    }
    for (join, block) in joins.iter().zip(blocks.iter().skip(1)) {
        for &(left, right_idx) in &join.on {
            let l: AttrSet = std::iter::once(pos(left)).collect();
            let r: AttrSet = std::iter::once(pos(block.offset + right_idx)).collect();
            fds.push(IFd::new(l.clone(), r.clone()));
            fds.push(IFd::new(r, l));
        }
    }
    let index = FdIndex::new(n, &fds);
    let kept: AttrSet = projection.iter().map(|c| pos(c.position)).collect();
    let closure = index.closure(&kept);
    !(0..n).all(|i| closure.contains(pos(i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::parse_query;

    fn fig1_catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog.add_relation(
            RelationSchema::new("book", ["isbn", "title", "author", "contact"]),
            &[
                Fd::parse("isbn -> title").unwrap(),
                Fd::parse("isbn -> contact").unwrap(),
            ],
        );
        catalog.add_relation(
            RelationSchema::new("chapter", ["inBook", "number", "name"]),
            &[Fd::parse("inBook, number -> name").unwrap()],
        );
        catalog.add_relation(
            RelationSchema::new("section", ["inChapt", "number", "name"]),
            &[],
        );
        catalog
    }

    #[test]
    fn key_join_becomes_lookup() {
        let catalog = fig1_catalog();
        // Both sides of a join condition inside the joined relation is a
        // binding error.
        let q = parse_query(
            "select title, name from book join chapter on isbn = inBook and number = number",
        )
        .unwrap();
        assert!(plan(&q, &catalog).is_err());

        let q = parse_query("select name from book join chapter on isbn = inBook").unwrap();
        let p = plan(&q, &catalog).unwrap();
        // inBook alone is not a key of chapter: scan.
        assert_eq!(p.joins[0].kind, JoinKind::Scan);

        let catalog2 = {
            let mut c = Catalog::new();
            c.add_relation(
                RelationSchema::new("parent", ["id", "payload"]),
                &[Fd::parse("id -> payload").unwrap()],
            );
            c.add_relation(RelationSchema::new("child", ["pid", "note"]), &[]);
            c
        };
        let q = parse_query("select note from child join parent on pid = id").unwrap();
        let p = plan(&q, &catalog2).unwrap();
        assert_eq!(p.joins[0].kind, JoinKind::KeyLookup);
        let naive = plan_naive(&q, &catalog2).unwrap();
        assert_eq!(naive.joins[0].kind, JoinKind::Scan);
    }

    #[test]
    fn multi_attribute_key_lookup() {
        let catalog = fig1_catalog();
        let q = parse_query(
            "select title from book join chapter on isbn = inBook and \
             title = name",
        )
        .unwrap();
        // (inBook, name) is not a key of chapter.
        let p = plan(&q, &catalog).unwrap();
        assert_eq!(p.joins[0].kind, JoinKind::Scan);
    }

    #[test]
    fn dedup_elided_when_key_kept() {
        let catalog = fig1_catalog();
        // (inBook, number) determines name: full-row determination.
        let q = parse_query("select inBook, number from chapter").unwrap();
        let p = plan(&q, &catalog).unwrap();
        assert!(!p.dedup);
        assert!(p.describe().ends_with("[unique]"));
        // name alone determines nothing.
        let q = parse_query("select name from chapter").unwrap();
        let p = plan(&q, &catalog).unwrap();
        assert!(p.dedup);
        // isbn does not determine author.
        let q = parse_query("select isbn, title from book").unwrap();
        let p = plan(&q, &catalog).unwrap();
        assert!(p.dedup);
        // select * keeps everything: trivially unique.
        let q = parse_query("select * from book").unwrap();
        let p = plan(&q, &catalog).unwrap();
        assert!(!p.dedup);
        // The naive plan always dedups.
        let p = plan_naive(&q, &catalog).unwrap();
        assert!(p.dedup);
    }

    #[test]
    fn join_equalities_feed_determination() {
        let mut catalog = Catalog::new();
        catalog.add_relation(
            RelationSchema::new("parent", ["id", "payload"]),
            &[Fd::parse("id -> payload").unwrap()],
        );
        catalog.add_relation(
            RelationSchema::new("child", ["cid", "pid"]),
            &[Fd::parse("cid -> pid").unwrap()],
        );
        // cid -> pid = id -> payload: cid determines the whole combined row.
        let q = parse_query("select cid from child join parent on pid = id").unwrap();
        let p = plan(&q, &catalog).unwrap();
        assert_eq!(p.joins[0].kind, JoinKind::KeyLookup);
        assert!(!p.dedup);
    }

    #[test]
    fn unknown_relation_lists_catalog() {
        let catalog = fig1_catalog();
        let q = parse_query("select a from nosuch").unwrap();
        let err = plan(&q, &catalog).unwrap_err();
        assert_eq!(err.wire_code(), "relation");
        assert!(err.to_string().contains("book"), "{err}");
    }

    #[test]
    fn ambiguous_attribute_requires_qualification() {
        let catalog = fig1_catalog();
        let q = parse_query("select name from chapter join section on inChapt = chapter.number")
            .unwrap();
        let err = plan(&q, &catalog).unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
        let q = parse_query(
            "select chapter.name, section.name from chapter join section on \
             inChapt = chapter.number",
        )
        .unwrap();
        let p = plan(&q, &catalog).unwrap();
        assert_eq!(p.output_columns(), ["chapter.name", "section.name"]);
    }

    #[test]
    fn star_qualifies_shared_names() {
        let catalog = fig1_catalog();
        let q =
            parse_query("select * from chapter join section on inChapt = chapter.number").unwrap();
        let p = plan(&q, &catalog).unwrap();
        assert_eq!(
            p.output_columns(),
            [
                "inBook",
                "chapter.number",
                "chapter.name",
                "inChapt",
                "section.number",
                "section.name"
            ]
        );
    }

    #[test]
    fn describe_is_stable() {
        let catalog = fig1_catalog();
        let q = parse_query(
            "select title, name from book join chapter on isbn = inBook where title = 'XML'",
        )
        .unwrap();
        let p = plan(&q, &catalog).unwrap();
        assert_eq!(
            p.describe(),
            "scan book; join chapter on isbn = inBook [scan]; where title = 'XML'; \
             project title, name [distinct]"
        );
    }

    #[test]
    fn duplicate_output_column_rejected() {
        let catalog = fig1_catalog();
        let q = parse_query("select title, title from book").unwrap();
        assert!(plan(&q, &catalog)
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
    }
}
