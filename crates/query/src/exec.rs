//! Plan execution over a [`Database`].
//!
//! The engine has **set semantics with SQL comparisons**: every input
//! relation is deduplicated on load (shredding produces bags), join and
//! `where` comparisons use [`Value::sql_eq`] (a NULL never equals anything,
//! itself included), and duplicate elimination on output is structural —
//! like SQL `DISTINCT`, two NULLs collapse into one row.
//!
//! Row order is deterministic and identical for the optimized and the naive
//! plan: the base relation is scanned in (first-occurrence) row order, each
//! join emits matches in the joined relation's row order — a keyed table's
//! buckets keep right-row order, so a [`JoinKind::KeyLookup`] produces the
//! exact row sequence of the nested-loop scan it replaces.

use crate::plan::{JoinKind, Plan};
use std::collections::{BTreeSet, HashMap};
use xmlprop_pipeline::Error;
use xmlprop_reldb::{Database, Relation, RelationSchema, Tuple, Value};

/// A relation hashed on a key: `key values -> row indices`, in row order.
///
/// Rows whose key contains a NULL are **not indexed** — under SQL equality
/// they can never be matched — and a probe containing a NULL never looks
/// anything up. For non-null keys, structural equality (the `HashMap`'s)
/// and SQL equality coincide, so bucket membership is exactly SQL-equal
/// matching. Buckets hold every matching row (a `Vec`, not a single slot):
/// key-violating data degrades the lookup join to per-bucket scans instead
/// of silently dropping rows.
pub struct KeyedTable<'a> {
    rows: &'a [Vec<Value>],
    key: Vec<usize>,
    buckets: HashMap<Vec<Value>, Vec<usize>>,
}

impl<'a> KeyedTable<'a> {
    /// Builds the index over `rows`, keyed on the attribute positions in
    /// `key`.
    pub fn build(rows: &'a [Vec<Value>], key: Vec<usize>) -> Self {
        let mut buckets: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            if key.iter().any(|&k| row[k].is_null()) {
                continue;
            }
            let k: Vec<Value> = key.iter().map(|&k| row[k].clone()).collect();
            buckets.entry(k).or_default().push(i);
        }
        KeyedTable { rows, key, buckets }
    }

    /// The rows SQL-equal to `probe` on the key, in row order. A NULL in
    /// the probe matches nothing.
    pub fn lookup(&self, probe: &[Value]) -> impl Iterator<Item = &'a Vec<Value>> + '_ {
        debug_assert_eq!(probe.len(), self.key.len());
        let hits = if probe.iter().any(Value::is_null) {
            None
        } else {
            self.buckets.get(probe)
        };
        hits.into_iter().flatten().map(move |&i| &self.rows[i])
    }
}

/// Loads one relation as a deduplicated row list. A relation absent from
/// the database (no tuples were shredded for it) is the empty instance.
fn load(db: &Database, name: &str, arity: usize) -> Result<Vec<Vec<Value>>, Error> {
    let Some(relation) = db.get(name) else {
        return Ok(Vec::new());
    };
    if relation.schema().arity() != arity {
        return Err(Error::internal(format!(
            "relation `{name}` has arity {}, the plan expects {arity}",
            relation.schema().arity()
        )));
    }
    Ok(relation
        .distinct()
        .rows()
        .iter()
        .map(|t| t.values().to_vec())
        .collect())
}

/// Executes `plan` over `db`, returning the result as a `result(...)`
/// relation (columns named by the projection, rows in plan order).
pub fn execute(plan: &Plan, db: &Database) -> Result<Relation, Error> {
    let base = &plan.blocks[0];
    let mut rows = load(db, &base.relation, base.arity)?;

    for (join, block) in plan.joins.iter().zip(plan.blocks.iter().skip(1)) {
        let right = load(db, &block.relation, block.arity)?;
        let mut joined = Vec::new();
        match join.kind {
            JoinKind::KeyLookup => {
                let key: Vec<usize> = join.on.iter().map(|&(_, r)| r).collect();
                let table = KeyedTable::build(&right, key);
                let mut probe = Vec::with_capacity(join.on.len());
                for row in &rows {
                    probe.clear();
                    probe.extend(join.on.iter().map(|&(l, _)| row[l].clone()));
                    for hit in table.lookup(&probe) {
                        let mut combined = row.clone();
                        combined.extend(hit.iter().cloned());
                        joined.push(combined);
                    }
                }
            }
            JoinKind::Scan => {
                for row in &rows {
                    for r in &right {
                        if join.on.iter().all(|&(l, ri)| row[l].sql_eq(&r[ri])) {
                            let mut combined = row.clone();
                            combined.extend(r.iter().cloned());
                            joined.push(combined);
                        }
                    }
                }
            }
        }
        rows = joined;
    }

    for filter in &plan.filters {
        let needle = Value::text(filter.value.clone());
        rows.retain(|row| row[filter.position].sql_eq(&needle));
    }

    let schema = RelationSchema::new("result", plan.projection.iter().map(|c| c.name.as_str()));
    let mut result = Relation::new(schema);
    let mut seen: BTreeSet<Vec<Value>> = BTreeSet::new();
    for row in &rows {
        let projected: Vec<Value> = plan
            .projection
            .iter()
            .map(|c| row[c.position].clone())
            .collect();
        if plan.dedup && !seen.insert(projected.clone()) {
            continue;
        }
        result.insert(Tuple::new(projected));
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan, plan_naive, Catalog};
    use crate::syntax::parse_query;
    use xmlprop_reldb::Fd;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_relation(
            RelationSchema::new("parent", ["id", "payload"]),
            &[Fd::parse("id -> payload").unwrap()],
        );
        c.add_relation(RelationSchema::new("child", ["pid", "note"]), &[]);
        c
    }

    fn db(parent: &[(&str, Option<&str>)], child: &[(Option<&str>, &str)]) -> Database {
        let mut parent_rel = Relation::new(RelationSchema::new("parent", ["id", "payload"]));
        for (id, payload) in parent {
            parent_rel.insert(Tuple::new(vec![
                Value::text(*id),
                payload.map(Value::text).unwrap_or(Value::Null),
            ]));
        }
        let mut child_rel = Relation::new(RelationSchema::new("child", ["pid", "note"]));
        for (pid, note) in child {
            child_rel.insert(Tuple::new(vec![
                pid.map(Value::text).unwrap_or(Value::Null),
                Value::text(*note),
            ]));
        }
        let mut db = Database::new();
        db.insert(parent_rel);
        db.insert(child_rel);
        db
    }

    fn run(query: &str, db: &Database) -> Relation {
        let q = parse_query(query).unwrap();
        execute(&plan(&q, &catalog()).unwrap(), db).unwrap()
    }

    fn run_naive(query: &str, db: &Database) -> Relation {
        let q = parse_query(query).unwrap();
        execute(&plan_naive(&q, &catalog()).unwrap(), db).unwrap()
    }

    #[test]
    fn keyed_join_matches_naive_and_skips_nulls() {
        let db = db(
            &[("1", Some("a")), ("2", None)],
            &[
                (Some("1"), "first"),
                (Some("2"), "second"),
                (None, "orphan"),
                (Some("9"), "dangling"),
            ],
        );
        let q = "select pid, note, payload from child join parent on pid = id";
        let keyed = run(q, &db);
        let naive = run_naive(q, &db);
        assert_eq!(keyed, naive);
        assert_eq!(keyed.len(), 2);
        // The NULL pid never matched anything even though parent has no
        // NULL id to match it against structurally.
        assert!(keyed
            .rows()
            .iter()
            .all(|t| t.values()[1].as_text() != Some("orphan")));
    }

    #[test]
    fn null_key_rows_are_never_matched() {
        // A NULL parent id must not be matched by a NULL probe.
        let mut parent_rel = Relation::new(RelationSchema::new("parent", ["id", "payload"]));
        parent_rel.insert(Tuple::new(vec![Value::Null, Value::text("ghost")]));
        let mut child_rel = Relation::new(RelationSchema::new("child", ["pid", "note"]));
        child_rel.insert(Tuple::new(vec![Value::Null, Value::text("lost")]));
        let mut d = Database::new();
        d.insert(parent_rel);
        d.insert(child_rel);
        let q = "select note from child join parent on pid = id";
        assert!(run(q, &d).is_empty());
        assert!(run_naive(q, &d).is_empty());
    }

    #[test]
    fn keyed_table_keeps_every_violating_row() {
        // Key-violating data: two rows share the key. The bucket keeps
        // both, so lookup == scan.
        let rows = vec![
            vec![Value::text("k"), Value::text("a")],
            vec![Value::text("k"), Value::text("b")],
            vec![Value::Null, Value::text("c")],
        ];
        let table = KeyedTable::build(&rows, vec![0]);
        let hits: Vec<&str> = table
            .lookup(&[Value::text("k")])
            .map(|r| r[1].as_text().unwrap())
            .collect();
        assert_eq!(hits, ["a", "b"]);
        assert_eq!(table.lookup(&[Value::Null]).count(), 0);
    }

    #[test]
    fn where_filter_uses_sql_eq() {
        let db = db(&[("1", None)], &[]);
        // payload is NULL: `payload = '…'` never matches, whatever the text.
        let result = run("select id from parent where payload = 'a'", &db);
        assert!(result.is_empty());
    }

    #[test]
    fn empty_relation_and_no_match_join_are_well_formed() {
        let empty = db(&[], &[]);
        let result = run("select id, payload from parent", &empty);
        assert!(result.is_empty());
        assert_eq!(result.schema().attributes(), ["id", "payload"]);

        let no_match = db(&[("1", Some("a"))], &[(Some("2"), "x")]);
        let result = run("select note from child join parent on pid = id", &no_match);
        assert!(result.is_empty());
    }

    #[test]
    fn missing_relation_is_empty_instance() {
        let d = Database::new();
        let result = run("select id from parent", &d);
        assert!(result.is_empty());
    }

    #[test]
    fn zero_attr_projection_yields_at_most_one_row() {
        let d = db(&[("1", Some("a")), ("2", Some("b"))], &[]);
        let result = run("select from parent", &d);
        assert_eq!(result.len(), 1);
        assert_eq!(result.schema().arity(), 0);
        let empty = db(&[], &[]);
        assert!(run("select from parent", &empty).is_empty());
    }

    #[test]
    fn output_dedup_collapses_nulls_like_sql_distinct() {
        let d = db(&[("1", None), ("2", None)], &[]);
        let result = run("select payload from parent", &d);
        assert_eq!(result.len(), 1);
        assert!(result.rows()[0].values()[0].is_null());
    }

    #[test]
    fn inputs_are_deduplicated_on_load() {
        let mut parent_rel = Relation::new(RelationSchema::new("parent", ["id", "payload"]));
        for _ in 0..3 {
            parent_rel.insert(Tuple::new(vec![Value::text("1"), Value::text("a")]));
        }
        let mut d = Database::new();
        d.insert(parent_rel);
        // `select *` elides dedup; load-time dedup keeps the output clean.
        let result = run("select * from parent", &d);
        assert_eq!(result.len(), 1);
    }

    #[test]
    fn arity_mismatch_is_an_internal_error() {
        let mut d = Database::new();
        d.insert(Relation::new(RelationSchema::new("parent", ["only"])));
        // The catalog says parent has two attributes; this database one.
        let q = parse_query("select id from parent").unwrap();
        let err = execute(&plan(&q, &catalog()).unwrap(), &d).unwrap_err();
        assert_eq!(err.wire_code(), "internal");
    }
}
