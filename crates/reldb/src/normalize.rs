//! Schema normalization: candidate keys, BCNF decomposition, 3NF synthesis.
//!
//! The paper's motivation for computing a minimum cover of the propagated
//! FDs is to "decompose the universal relation into a normal form (such as
//! BCNF or 3NF)" guided by those FDs (Examples 1.2 and 3.1).  This module
//! provides the classical algorithms needed for that last step.

use crate::{closure, minimize, Fd, RelationSchema};
use std::collections::BTreeSet;

/// One relation produced by a decomposition, together with the keys that
/// hold on it (the FDs projected onto it would be redundant to store in
/// full; keys are what the paper's examples report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecomposedRelation {
    /// The schema of the fragment.
    pub schema: RelationSchema,
    /// A candidate key of the fragment (as chosen by the decomposition).
    pub key: BTreeSet<String>,
}

impl DecomposedRelation {
    /// Renders the fragment as a `CREATE TABLE` statement with a primary
    /// key, for the examples that print a refined design.
    pub fn to_sql(&self) -> String {
        let cols: Vec<String> = self
            .schema
            .attributes()
            .iter()
            .map(|a| format!("    {a} TEXT"))
            .collect();
        let key: Vec<String> = self.key.iter().cloned().collect();
        format!(
            "CREATE TABLE {} (\n{},\n    PRIMARY KEY ({})\n);",
            self.schema.name(),
            cols.join(",\n"),
            key.join(", ")
        )
    }
}

/// The result of a normalization: a list of fragments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// The fragments, in the order they were produced.
    pub relations: Vec<DecomposedRelation>,
}

impl Decomposition {
    /// Renders the whole decomposition as SQL DDL.
    pub fn to_sql(&self) -> String {
        self.relations
            .iter()
            .map(DecomposedRelation::to_sql)
            .collect::<Vec<_>>()
            .join("\n\n")
    }

    /// The set of attribute sets (useful in tests, where fragment order and
    /// names are irrelevant).
    pub fn attribute_sets(&self) -> BTreeSet<BTreeSet<String>> {
        self.relations
            .iter()
            .map(|r| r.schema.attribute_set())
            .collect()
    }
}

/// Projects a set of FDs onto a subset of attributes: all FDs `X → A` with
/// `X ∪ {A} ⊆ attrs` implied by `fds`.  Exponential in `|attrs|` in the worst
/// case (this is the classical embedded-FD problem the paper cites [16]); we
/// only call it on decomposition fragments, which are small.
pub fn project_fds(fds: &[Fd], attrs: &BTreeSet<String>) -> Vec<Fd> {
    let attr_vec: Vec<&String> = attrs.iter().collect();
    let mut out = Vec::new();
    for mask in 0u64..(1u64 << attr_vec.len().min(63)) {
        let lhs: BTreeSet<String> = attr_vec
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, a)| (*a).clone())
            .collect();
        let cl = closure(&lhs, fds);
        for a in attrs {
            if !lhs.contains(a) && cl.contains(a) {
                out.push(Fd::to_attr(lhs.iter().cloned(), a.clone()));
            }
        }
    }
    minimize(&out)
}

/// All candidate keys of a relation with attribute set `attrs` under `fds`.
///
/// Uses the standard observation that attributes never appearing on any
/// right-hand side must be part of every key, then searches supersets in
/// increasing size.  Exponential in the worst case (inherent), fine for the
/// schema sizes normalization is used on.
pub fn candidate_keys(attrs: &BTreeSet<String>, fds: &[Fd]) -> Vec<BTreeSet<String>> {
    let mut must: BTreeSet<String> = attrs.clone();
    for fd in fds {
        for a in fd.rhs() {
            if !fd.lhs().contains(a) {
                must.remove(a);
            }
        }
    }
    if closure(&must, fds).is_superset(attrs) {
        return vec![must];
    }
    let optional: Vec<&String> = attrs.iter().filter(|a| !must.contains(*a)).collect();
    let mut keys: Vec<BTreeSet<String>> = Vec::new();
    // Enumerate subsets of the optional attributes by increasing size so that
    // only minimal keys are recorded.
    for size in 1..=optional.len() {
        let mut found_at_this_size = Vec::new();
        for combo in combinations(&optional, size) {
            let mut candidate = must.clone();
            candidate.extend(combo.iter().map(|a| (*a).clone()));
            if keys.iter().any(|k| k.is_subset(&candidate)) {
                continue;
            }
            if closure(&candidate, fds).is_superset(attrs) {
                found_at_this_size.push(candidate);
            }
        }
        keys.extend(found_at_this_size);
    }
    if keys.is_empty() {
        // No proper subset works; the full attribute set is the only key.
        keys.push(attrs.clone());
    }
    keys
}

fn combinations<'a>(items: &[&'a String], size: usize) -> Vec<Vec<&'a String>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(size);
    fn rec<'a>(
        items: &[&'a String],
        size: usize,
        start: usize,
        current: &mut Vec<&'a String>,
        out: &mut Vec<Vec<&'a String>>,
    ) {
        if current.len() == size {
            out.push(current.clone());
            return;
        }
        for i in start..items.len() {
            current.push(items[i]);
            rec(items, size, i + 1, current, out);
            current.pop();
        }
    }
    rec(items, size, 0, &mut current, &mut out);
    out
}

/// True if every non-trivial FD of `fds` (projected onto `attrs`) has a
/// superkey left-hand side — i.e. the fragment is in BCNF.
pub fn is_bcnf(attrs: &BTreeSet<String>, fds: &[Fd]) -> bool {
    for fd in project_fds(fds, attrs) {
        if fd.is_trivial() {
            continue;
        }
        if !closure(fd.lhs(), fds).is_superset(attrs) {
            return false;
        }
    }
    true
}

/// True if the fragment is in 3NF: for every non-trivial projected FD
/// `X → A`, either `X` is a superkey or `A` is a prime attribute (member of
/// some candidate key of the fragment).
pub fn is_3nf(attrs: &BTreeSet<String>, fds: &[Fd]) -> bool {
    let local = project_fds(fds, attrs);
    let keys = candidate_keys(attrs, &local);
    let prime: BTreeSet<String> = keys.iter().flatten().cloned().collect();
    for fd in &local {
        if fd.is_trivial() {
            continue;
        }
        let is_superkey = closure(fd.lhs(), &local).is_superset(attrs);
        if is_superkey {
            continue;
        }
        if !fd.rhs().iter().all(|a| prime.contains(a)) {
            return false;
        }
    }
    true
}

/// Classical BCNF decomposition of the relation `name(attrs)` under `fds`.
///
/// Repeatedly picks a violating FD `X → Y` (with `X` not a superkey) and
/// splits the schema into `X ∪ X⁺-restricted` and `X ∪ rest`.  The result is
/// a lossless-join decomposition whose fragments are each in BCNF.  Fragment
/// names are derived from `name` with a numeric suffix unless a violating
/// FD's attributes suggest nothing better.
pub fn bcnf_decompose(name: &str, attrs: &BTreeSet<String>, fds: &[Fd]) -> Decomposition {
    let mut fragments: Vec<BTreeSet<String>> = vec![attrs.clone()];
    let mut finished: Vec<BTreeSet<String>> = Vec::new();

    while let Some(current) = fragments.pop() {
        let local = project_fds(fds, &current);
        let violating = local
            .iter()
            .find(|fd| !fd.is_trivial() && !closure(fd.lhs(), &local).is_superset(&current));
        match violating {
            None => finished.push(current),
            Some(fd) => {
                let cl: BTreeSet<String> = closure(fd.lhs(), &local)
                    .intersection(&current)
                    .cloned()
                    .collect();
                // Fragment 1: X⁺ ∩ current; Fragment 2: X ∪ (current \ X⁺).
                let frag1 = cl.clone();
                let mut frag2: BTreeSet<String> = fd.lhs().clone();
                frag2.extend(current.difference(&cl).cloned());
                // A violating FD guarantees both fragments are strictly
                // smaller than `current`, so this terminates.
                fragments.push(frag1);
                fragments.push(frag2);
            }
        }
    }

    // Drop fragments that are subsets of other fragments (they carry no
    // information), then name them.
    finished.sort_by_key(|f| std::cmp::Reverse(f.len()));
    let mut kept: Vec<BTreeSet<String>> = Vec::new();
    for f in finished {
        if !kept.iter().any(|k| f.is_subset(k)) {
            kept.push(f);
        }
    }

    let relations = kept
        .into_iter()
        .enumerate()
        .map(|(i, f)| {
            let local = project_fds(fds, &f);
            let mut keys = candidate_keys(&f, &local);
            keys.sort_by_key(|k| (k.len(), k.iter().cloned().collect::<Vec<_>>()));
            let key = keys.into_iter().next().unwrap_or_else(|| f.clone());
            DecomposedRelation {
                schema: RelationSchema::new(format!("{name}_{}", i + 1), f.iter().cloned()),
                key,
            }
        })
        .collect();
    Decomposition { relations }
}

/// 3NF synthesis (Bernstein): one fragment per group of minimum-cover FDs
/// with the same left-hand side, plus a key fragment if no fragment contains
/// a candidate key of the universal schema.  Dependency-preserving and
/// lossless.
pub fn synthesize_3nf(name: &str, attrs: &BTreeSet<String>, fds: &[Fd]) -> Decomposition {
    let cover = minimize(fds);
    // Group by LHS.
    let mut groups: Vec<(BTreeSet<String>, BTreeSet<String>)> = Vec::new();
    for fd in &cover {
        match groups.iter_mut().find(|(lhs, _)| lhs == fd.lhs()) {
            Some((_, rhs)) => rhs.extend(fd.rhs().iter().cloned()),
            None => groups.push((fd.lhs().clone(), fd.rhs().clone())),
        }
    }
    let mut schemas: Vec<(BTreeSet<String>, BTreeSet<String>)> = Vec::new();
    for (lhs, rhs) in groups {
        let mut all = lhs.clone();
        all.extend(rhs.iter().cloned());
        schemas.push((all, lhs));
    }
    // Attributes not mentioned in any FD must still be stored somewhere.
    let mentioned: BTreeSet<String> = cover
        .iter()
        .flat_map(|fd| fd.attributes().into_iter())
        .collect();
    let unmentioned: BTreeSet<String> = attrs.difference(&mentioned).cloned().collect();
    if !unmentioned.is_empty() {
        // They are determined by nothing, so they join a key fragment below
        // (standard treatment: they become part of the key of the relation).
        schemas.push((unmentioned.clone(), unmentioned));
    }
    // Ensure some fragment contains a candidate key of the whole schema.
    let keys = candidate_keys(attrs, &cover);
    let has_key_fragment = schemas
        .iter()
        .any(|(all, _)| keys.iter().any(|k| k.is_subset(all)));
    if !has_key_fragment {
        let mut keys_sorted = keys.clone();
        keys_sorted.sort_by_key(|k| (k.len(), k.iter().cloned().collect::<Vec<_>>()));
        let key = keys_sorted
            .into_iter()
            .next()
            .unwrap_or_else(|| attrs.clone());
        schemas.push((key.clone(), key));
    }
    // Drop fragments contained in others.
    schemas.sort_by_key(|(all, _)| std::cmp::Reverse(all.len()));
    let mut kept: Vec<(BTreeSet<String>, BTreeSet<String>)> = Vec::new();
    for (all, key) in schemas {
        if !kept.iter().any(|(k_all, _)| all.is_subset(k_all)) {
            kept.push((all, key));
        }
    }
    let relations = kept
        .into_iter()
        .enumerate()
        .map(|(i, (all, key))| DecomposedRelation {
            schema: RelationSchema::new(format!("{name}_{}", i + 1), all.iter().cloned()),
            key,
        })
        .collect();
    Decomposition { relations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;

    fn fd(s: &str) -> Fd {
        Fd::parse(s).unwrap()
    }

    #[test]
    fn candidate_keys_simple() {
        let a = attrs(["a", "b", "c"]);
        let fds = vec![fd("a -> b"), fd("b -> c")];
        assert_eq!(candidate_keys(&a, &fds), vec![attrs(["a"])]);

        let fds2 = vec![fd("a -> b"), fd("b -> a")];
        let keys = candidate_keys(&attrs(["a", "b", "c"]), &fds2);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&attrs(["a", "c"])));
        assert!(keys.contains(&attrs(["b", "c"])));
    }

    #[test]
    fn candidate_keys_no_fds() {
        let a = attrs(["a", "b"]);
        assert_eq!(candidate_keys(&a, &[]), vec![a.clone()]);
    }

    #[test]
    fn bcnf_detection() {
        let a = attrs(["isbn", "title", "chapNum", "chapName"]);
        let fds = vec![fd("isbn -> title"), fd("isbn, chapNum -> chapName")];
        assert!(!is_bcnf(&a, &fds)); // isbn -> title with isbn not a superkey
        assert!(is_bcnf(&attrs(["isbn", "title"]), &fds));
        assert!(is_bcnf(&attrs(["isbn", "chapNum", "chapName"]), &fds));
    }

    #[test]
    fn third_normal_form_detection() {
        // Classic non-3NF example: a -> b, b -> c with key a.
        let a = attrs(["a", "b", "c"]);
        let fds = vec![fd("a -> b"), fd("b -> c")];
        assert!(!is_3nf(&a, &fds));
        // b -> c where c is prime is allowed in 3NF.
        let fds2 = vec![fd("a, b -> c"), fd("c -> b")];
        assert!(is_3nf(&attrs(["a", "b", "c"]), &fds2));
        assert!(!is_bcnf(&attrs(["a", "b", "c"]), &fds2));
    }

    #[test]
    fn bcnf_decomposition_of_example_1_2() {
        // Example 1.2: Chapter(isbn, bookTitle, author, chapterNum, chapterName)
        // with isbn -> bookTitle and (isbn, chapterNum) -> chapterName.
        let a = attrs(["isbn", "bookTitle", "author", "chapterNum", "chapterName"]);
        let fds = vec![
            fd("isbn -> bookTitle"),
            fd("isbn, chapterNum -> chapterName"),
        ];
        let dec = bcnf_decompose("Chapter", &a, &fds);
        let sets = dec.attribute_sets();
        // The paper's result: Book(isbn, bookTitle), Chapter(isbn, chapterNum,
        // chapterName), Author(isbn, author).
        assert!(sets.contains(&attrs(["isbn", "bookTitle"])));
        assert!(sets.contains(&attrs(["isbn", "chapterNum", "chapterName"])));
        assert!(
            sets.contains(&attrs(["isbn", "author", "chapterNum"]))
                || sets.contains(&attrs(["isbn", "author"])),
            "author must end up keyed by isbn (possibly with chapterNum), got {sets:?}"
        );
        // Every fragment must be in BCNF.
        for r in &dec.relations {
            assert!(
                is_bcnf(&r.schema.attribute_set(), &fds),
                "fragment {} not BCNF",
                r.schema
            );
        }
    }

    #[test]
    fn bcnf_decomposition_example_3_1() {
        let a = attrs([
            "bookIsbn",
            "bookTitle",
            "bookAuthor",
            "authContact",
            "chapNum",
            "chapName",
            "secNum",
            "secName",
        ]);
        let fds = vec![
            fd("bookIsbn -> bookTitle"),
            fd("bookIsbn -> authContact"),
            fd("bookIsbn, chapNum -> chapName"),
            fd("bookIsbn, chapNum, secNum -> secName"),
        ];
        let dec = bcnf_decompose("U", &a, &fds);
        for r in &dec.relations {
            assert!(
                is_bcnf(&r.schema.attribute_set(), &fds),
                "fragment {} not BCNF",
                r.schema
            );
        }
        // The decomposition keeps all attributes.
        let union: BTreeSet<String> = dec
            .relations
            .iter()
            .flat_map(|r| r.schema.attribute_set())
            .collect();
        assert_eq!(union, a);
    }

    #[test]
    fn synthesis_is_dependency_preserving_and_has_key_fragment() {
        let a = attrs(["a", "b", "c", "d"]);
        let fds = vec![fd("a -> b"), fd("b -> c")];
        let dec = synthesize_3nf("r", &a, &fds);
        let sets = dec.attribute_sets();
        assert!(sets.iter().any(|s| s.is_superset(&attrs(["a", "b"]))));
        assert!(sets.iter().any(|s| s.is_superset(&attrs(["b", "c"]))));
        // d is in no FD, so it must appear, and some fragment must contain a
        // candidate key (a, d).
        assert!(sets.iter().any(|s| s.contains("d")));
        assert!(sets.iter().any(|s| s.is_superset(&attrs(["a", "d"]))));
        for r in &dec.relations {
            assert!(
                is_3nf(&r.schema.attribute_set(), &fds),
                "fragment {} not 3NF",
                r.schema
            );
        }
    }

    #[test]
    fn sql_rendering_mentions_keys() {
        let a = attrs(["isbn", "title"]);
        let fds = vec![fd("isbn -> title")];
        let dec = bcnf_decompose("book", &a, &fds);
        let sql = dec.to_sql();
        assert!(sql.contains("CREATE TABLE"));
        assert!(sql.contains("PRIMARY KEY (isbn)"));
    }

    #[test]
    fn project_fds_onto_fragment() {
        let fds = vec![fd("a -> b"), fd("b -> c")];
        let projected = project_fds(&fds, &attrs(["a", "c"]));
        // a -> c is implied and survives projection; b is gone.
        assert!(crate::implies(&projected, &fd("a -> c")));
        assert!(projected
            .iter()
            .all(|f| f.attributes().is_subset(&attrs(["a", "c"]))));
    }
}
