//! Schema normalization: candidate keys, BCNF decomposition, 3NF synthesis.
//!
//! The paper's motivation for computing a minimum cover of the propagated
//! FDs is to "decompose the universal relation into a normal form (such as
//! BCNF or 3NF)" guided by those FDs (Examples 1.2 and 3.1).  This module
//! provides the classical algorithms needed for that last step.
//!
//! Internally everything runs on the interned representation of
//! [`crate::intern`]: each entry point interns the attribute universe once
//! (in sorted name order, for deterministic output), keeps fragments as
//! [`AttrSet`] bitsets, and drives all reasoning through a linear-time
//! [`FdIndex`] — the subset enumerations of `project_fds` and
//! `candidate_keys` reuse one prepared index instead of re-scanning string
//! sets per closure.

use crate::intern::{minimize_interned, AttrId, AttrSet, AttrUniverse, FdIndex, IFd};
use crate::{Fd, RelationSchema};
use std::collections::BTreeSet;

/// One relation produced by a decomposition, together with the keys that
/// hold on it (the FDs projected onto it would be redundant to store in
/// full; keys are what the paper's examples report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecomposedRelation {
    /// The schema of the fragment.
    pub schema: RelationSchema,
    /// A candidate key of the fragment (as chosen by the decomposition).
    pub key: BTreeSet<String>,
}

impl DecomposedRelation {
    /// Renders the fragment as a `CREATE TABLE` statement with a primary
    /// key, for the examples that print a refined design.
    pub fn to_sql(&self) -> String {
        let cols: Vec<String> = self
            .schema
            .attributes()
            .iter()
            .map(|a| format!("    {a} TEXT"))
            .collect();
        let key: Vec<String> = self.key.iter().cloned().collect();
        format!(
            "CREATE TABLE {} (\n{},\n    PRIMARY KEY ({})\n);",
            self.schema.name(),
            cols.join(",\n"),
            key.join(", ")
        )
    }
}

/// The result of a normalization: a list of fragments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decomposition {
    /// The fragments, in the order they were produced.
    pub relations: Vec<DecomposedRelation>,
}

impl Decomposition {
    /// Renders the whole decomposition as SQL DDL.
    pub fn to_sql(&self) -> String {
        self.relations
            .iter()
            .map(DecomposedRelation::to_sql)
            .collect::<Vec<_>>()
            .join("\n\n")
    }

    /// The set of attribute sets (useful in tests, where fragment order and
    /// names are irrelevant).
    pub fn attribute_sets(&self) -> BTreeSet<BTreeSet<String>> {
        self.relations
            .iter()
            .map(|r| r.schema.attribute_set())
            .collect()
    }
}

/// The interned context every entry point works in: a sorted universe over
/// the FDs and the relation's attributes, the interned FDs, and a prepared
/// closure index over them.
struct Ctx {
    u: AttrUniverse,
    fds: Vec<IFd>,
    index: FdIndex,
}

impl Ctx {
    fn new(fds: &[Fd], attrs: &BTreeSet<String>) -> Self {
        let mut u = AttrUniverse::from_fds_and_attrs(fds, attrs);
        let ifds: Vec<IFd> = fds.iter().map(|fd| u.intern_fd(fd)).collect();
        let index = FdIndex::new(u.len(), &ifds);
        Ctx {
            u,
            fds: ifds,
            index,
        }
    }

    fn intern(&self, attrs: &BTreeSet<String>) -> AttrSet {
        self.u.lookup_set(attrs)
    }
}

/// All FDs `X → A` with `X ∪ {A}` inside the fragment `attr_ids` implied by
/// the indexed FD set, minimized.  The exponential subset enumeration over
/// the fragment is inherent (the embedded-FD problem the paper cites \[16\]);
/// every closure inside is one linear pass over the prepared index.
fn project_fds_core(ctx: &Ctx, attr_ids: &[AttrId]) -> Vec<IFd> {
    let mut out: Vec<IFd> = Vec::new();
    for mask in 0u64..(1u64 << attr_ids.len().min(63)) {
        let lhs: AttrSet = attr_ids
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &id)| id)
            .collect();
        let cl = ctx.index.closure(&lhs);
        for &a in attr_ids {
            if !lhs.contains(a) && cl.contains(a) {
                out.push(IFd::new(lhs.clone(), std::iter::once(a).collect()));
            }
        }
    }
    minimize_interned(ctx.u.len(), &out)
}

/// Projects a set of FDs onto a subset of attributes: all FDs `X → A` with
/// `X ∪ {A} ⊆ attrs` implied by `fds`.  Exponential in `|attrs|` in the worst
/// case (this is the classical embedded-FD problem the paper cites \[16\]); we
/// only call it on decomposition fragments, which are small.
pub fn project_fds(fds: &[Fd], attrs: &BTreeSet<String>) -> Vec<Fd> {
    let ctx = Ctx::new(fds, attrs);
    let attr_ids: Vec<AttrId> = ctx.intern(attrs).iter().collect();
    project_fds_core(&ctx, &attr_ids)
        .iter()
        .map(|fd| ctx.u.extern_fd(fd))
        .collect()
}

/// Candidate keys over the interned context: attributes never on a
/// right-hand side seed every key; supersets are searched in increasing
/// size so only minimal keys are recorded.
fn candidate_keys_core(index: &FdIndex, fds: &[IFd], attrs: &AttrSet) -> Vec<AttrSet> {
    let mut must = attrs.clone();
    for fd in fds {
        for a in fd.rhs.iter() {
            if !fd.lhs.contains(a) {
                must.remove(a);
            }
        }
    }
    if index.closure(&must).is_superset(attrs) {
        return vec![must];
    }
    let optional: Vec<AttrId> = attrs.iter().filter(|a| !must.contains(*a)).collect();
    let mut keys: Vec<AttrSet> = Vec::new();
    // Enumerate subsets of the optional attributes by increasing size so that
    // only minimal keys are recorded.
    for size in 1..=optional.len() {
        let mut found_at_this_size = Vec::new();
        for combo in combinations(&optional, size) {
            let mut candidate = must.clone();
            for id in combo {
                candidate.insert(id);
            }
            if keys.iter().any(|k| k.is_subset(&candidate)) {
                continue;
            }
            if index.closure(&candidate).is_superset(attrs) {
                found_at_this_size.push(candidate);
            }
        }
        keys.extend(found_at_this_size);
    }
    if keys.is_empty() {
        // No proper subset works; the full attribute set is the only key.
        keys.push(attrs.clone());
    }
    keys
}

/// All candidate keys of a relation with attribute set `attrs` under `fds`.
///
/// Uses the standard observation that attributes never appearing on any
/// right-hand side must be part of every key, then searches supersets in
/// increasing size.  Exponential in the worst case (inherent), fine for the
/// schema sizes normalization is used on.
pub fn candidate_keys(attrs: &BTreeSet<String>, fds: &[Fd]) -> Vec<BTreeSet<String>> {
    let ctx = Ctx::new(fds, attrs);
    let attr_set = ctx.intern(attrs);
    candidate_keys_core(&ctx.index, &ctx.fds, &attr_set)
        .iter()
        .map(|k| ctx.u.extern_set(k))
        .collect()
}

fn combinations(items: &[AttrId], size: usize) -> Vec<Vec<AttrId>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(size);
    fn rec(
        items: &[AttrId],
        size: usize,
        start: usize,
        current: &mut Vec<AttrId>,
        out: &mut Vec<Vec<AttrId>>,
    ) {
        if current.len() == size {
            out.push(current.clone());
            return;
        }
        for i in start..items.len() {
            current.push(items[i]);
            rec(items, size, i + 1, current, out);
            current.pop();
        }
    }
    rec(items, size, 0, &mut current, &mut out);
    out
}

/// True if every non-trivial FD of `fds` (projected onto `attrs`) has a
/// superkey left-hand side — i.e. the fragment is in BCNF.
pub fn is_bcnf(attrs: &BTreeSet<String>, fds: &[Fd]) -> bool {
    let ctx = Ctx::new(fds, attrs);
    let attr_set = ctx.intern(attrs);
    let attr_ids: Vec<AttrId> = attr_set.iter().collect();
    for fd in project_fds_core(&ctx, &attr_ids) {
        if fd.is_trivial() {
            continue;
        }
        if !ctx.index.closure(&fd.lhs).is_superset(&attr_set) {
            return false;
        }
    }
    true
}

/// True if the fragment is in 3NF: for every non-trivial projected FD
/// `X → A`, either `X` is a superkey or `A` is a prime attribute (member of
/// some candidate key of the fragment).
pub fn is_3nf(attrs: &BTreeSet<String>, fds: &[Fd]) -> bool {
    let ctx = Ctx::new(fds, attrs);
    let attr_set = ctx.intern(attrs);
    let attr_ids: Vec<AttrId> = attr_set.iter().collect();
    let local = project_fds_core(&ctx, &attr_ids);
    let local_index = FdIndex::new(ctx.u.len(), &local);
    let keys = candidate_keys_core(&local_index, &local, &attr_set);
    let mut prime = AttrSet::new();
    for key in &keys {
        prime.union_with(key);
    }
    for fd in &local {
        if fd.is_trivial() {
            continue;
        }
        if local_index.closure(&fd.lhs).is_superset(&attr_set) {
            continue;
        }
        if !fd.rhs.is_subset(&prime) {
            return false;
        }
    }
    true
}

/// Classical BCNF decomposition of the relation `name(attrs)` under `fds`.
///
/// Repeatedly picks a violating FD `X → Y` (with `X` not a superkey) and
/// splits the schema into `X ∪ X⁺-restricted` and `X ∪ rest`.  The result is
/// a lossless-join decomposition whose fragments are each in BCNF.  Fragment
/// names are derived from `name` with a numeric suffix unless a violating
/// FD's attributes suggest nothing better.
pub fn bcnf_decompose(name: &str, attrs: &BTreeSet<String>, fds: &[Fd]) -> Decomposition {
    let ctx = Ctx::new(fds, attrs);
    let mut fragments: Vec<AttrSet> = vec![ctx.intern(attrs)];
    let mut finished: Vec<AttrSet> = Vec::new();

    while let Some(current) = fragments.pop() {
        let attr_ids: Vec<AttrId> = current.iter().collect();
        let local = project_fds_core(&ctx, &attr_ids);
        let local_index = FdIndex::new(ctx.u.len(), &local);
        let violating = local
            .iter()
            .find(|fd| !fd.is_trivial() && !local_index.closure(&fd.lhs).is_superset(&current));
        match violating {
            None => finished.push(current),
            Some(fd) => {
                let cl = local_index.closure(&fd.lhs).intersection(&current);
                // Fragment 1: X⁺ ∩ current; Fragment 2: X ∪ (current \ X⁺).
                let frag1 = cl.clone();
                let frag2 = fd.lhs.union(&current.difference(&cl));
                // A violating FD guarantees both fragments are strictly
                // smaller than `current`, so this terminates.
                fragments.push(frag1);
                fragments.push(frag2);
            }
        }
    }

    // Drop fragments that are subsets of other fragments (they carry no
    // information), then name them.
    finished.sort_by_key(|f| std::cmp::Reverse(f.len()));
    let mut kept: Vec<AttrSet> = Vec::new();
    for f in finished {
        if !kept.iter().any(|k| f.is_subset(k)) {
            kept.push(f);
        }
    }

    let relations = kept
        .into_iter()
        .enumerate()
        .map(|(i, f)| {
            let attr_ids: Vec<AttrId> = f.iter().collect();
            let local = project_fds_core(&ctx, &attr_ids);
            let local_index = FdIndex::new(ctx.u.len(), &local);
            let mut keys = candidate_keys_core(&local_index, &local, &f);
            keys.sort_by_cached_key(|k| ctx.u.names_key(k));
            let key = keys.into_iter().next().unwrap_or_else(|| f.clone());
            DecomposedRelation {
                schema: RelationSchema::new(format!("{name}_{}", i + 1), ctx.u.extern_set(&f)),
                key: ctx.u.extern_set(&key),
            }
        })
        .collect();
    Decomposition { relations }
}

/// 3NF synthesis (Bernstein): one fragment per group of minimum-cover FDs
/// with the same left-hand side, plus a key fragment if no fragment contains
/// a candidate key of the universal schema.  Dependency-preserving and
/// lossless.
pub fn synthesize_3nf(name: &str, attrs: &BTreeSet<String>, fds: &[Fd]) -> Decomposition {
    let ctx = Ctx::new(fds, attrs);
    let attr_set = ctx.intern(attrs);
    let cover = minimize_interned(ctx.u.len(), &ctx.fds);
    let cover_index = FdIndex::new(ctx.u.len(), &cover);
    // Group by LHS.
    let mut groups: Vec<(AttrSet, AttrSet)> = Vec::new();
    for fd in &cover {
        match groups.iter_mut().find(|(lhs, _)| lhs == &fd.lhs) {
            Some((_, rhs)) => rhs.union_with(&fd.rhs),
            None => groups.push((fd.lhs.clone(), fd.rhs.clone())),
        }
    }
    let mut schemas: Vec<(AttrSet, AttrSet)> = Vec::new();
    for (lhs, rhs) in groups {
        let all = lhs.union(&rhs);
        schemas.push((all, lhs));
    }
    // Attributes not mentioned in any FD must still be stored somewhere.
    let mut mentioned = AttrSet::new();
    for fd in &cover {
        mentioned.union_with(&fd.lhs);
        mentioned.union_with(&fd.rhs);
    }
    let unmentioned = attr_set.difference(&mentioned);
    if !unmentioned.is_empty() {
        // They are determined by nothing, so they join a key fragment below
        // (standard treatment: they become part of the key of the relation).
        schemas.push((unmentioned.clone(), unmentioned));
    }
    // Ensure some fragment contains a candidate key of the whole schema.
    let keys = candidate_keys_core(&cover_index, &cover, &attr_set);
    let has_key_fragment = schemas
        .iter()
        .any(|(all, _)| keys.iter().any(|k| k.is_subset(all)));
    if !has_key_fragment {
        let mut keys_sorted = keys.clone();
        keys_sorted.sort_by_cached_key(|k| ctx.u.names_key(k));
        let key = keys_sorted
            .into_iter()
            .next()
            .unwrap_or_else(|| attr_set.clone());
        schemas.push((key.clone(), key));
    }
    // Drop fragments contained in others.
    schemas.sort_by_key(|(all, _)| std::cmp::Reverse(all.len()));
    let mut kept: Vec<(AttrSet, AttrSet)> = Vec::new();
    for (all, key) in schemas {
        if !kept.iter().any(|(k_all, _)| all.is_subset(k_all)) {
            kept.push((all, key));
        }
    }
    let relations = kept
        .into_iter()
        .enumerate()
        .map(|(i, (all, key))| DecomposedRelation {
            schema: RelationSchema::new(format!("{name}_{}", i + 1), ctx.u.extern_set(&all)),
            key: ctx.u.extern_set(&key),
        })
        .collect();
    Decomposition { relations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;

    fn fd(s: &str) -> Fd {
        Fd::parse(s).unwrap()
    }

    #[test]
    fn candidate_keys_simple() {
        let a = attrs(["a", "b", "c"]);
        let fds = vec![fd("a -> b"), fd("b -> c")];
        assert_eq!(candidate_keys(&a, &fds), vec![attrs(["a"])]);

        let fds2 = vec![fd("a -> b"), fd("b -> a")];
        let keys = candidate_keys(&attrs(["a", "b", "c"]), &fds2);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains(&attrs(["a", "c"])));
        assert!(keys.contains(&attrs(["b", "c"])));
    }

    #[test]
    fn candidate_keys_no_fds() {
        let a = attrs(["a", "b"]);
        assert_eq!(candidate_keys(&a, &[]), vec![a.clone()]);
    }

    #[test]
    fn bcnf_detection() {
        let a = attrs(["isbn", "title", "chapNum", "chapName"]);
        let fds = vec![fd("isbn -> title"), fd("isbn, chapNum -> chapName")];
        assert!(!is_bcnf(&a, &fds)); // isbn -> title with isbn not a superkey
        assert!(is_bcnf(&attrs(["isbn", "title"]), &fds));
        assert!(is_bcnf(&attrs(["isbn", "chapNum", "chapName"]), &fds));
    }

    #[test]
    fn third_normal_form_detection() {
        // Classic non-3NF example: a -> b, b -> c with key a.
        let a = attrs(["a", "b", "c"]);
        let fds = vec![fd("a -> b"), fd("b -> c")];
        assert!(!is_3nf(&a, &fds));
        // b -> c where c is prime is allowed in 3NF.
        let fds2 = vec![fd("a, b -> c"), fd("c -> b")];
        assert!(is_3nf(&attrs(["a", "b", "c"]), &fds2));
        assert!(!is_bcnf(&attrs(["a", "b", "c"]), &fds2));
    }

    #[test]
    fn bcnf_decomposition_of_example_1_2() {
        // Example 1.2: Chapter(isbn, bookTitle, author, chapterNum, chapterName)
        // with isbn -> bookTitle and (isbn, chapterNum) -> chapterName.
        let a = attrs(["isbn", "bookTitle", "author", "chapterNum", "chapterName"]);
        let fds = vec![
            fd("isbn -> bookTitle"),
            fd("isbn, chapterNum -> chapterName"),
        ];
        let dec = bcnf_decompose("Chapter", &a, &fds);
        let sets = dec.attribute_sets();
        // The paper's result: Book(isbn, bookTitle), Chapter(isbn, chapterNum,
        // chapterName), Author(isbn, author).
        assert!(sets.contains(&attrs(["isbn", "bookTitle"])));
        assert!(sets.contains(&attrs(["isbn", "chapterNum", "chapterName"])));
        assert!(
            sets.contains(&attrs(["isbn", "author", "chapterNum"]))
                || sets.contains(&attrs(["isbn", "author"])),
            "author must end up keyed by isbn (possibly with chapterNum), got {sets:?}"
        );
        // Every fragment must be in BCNF.
        for r in &dec.relations {
            assert!(
                is_bcnf(&r.schema.attribute_set(), &fds),
                "fragment {} not BCNF",
                r.schema
            );
        }
    }

    #[test]
    fn bcnf_decomposition_example_3_1() {
        let a = attrs([
            "bookIsbn",
            "bookTitle",
            "bookAuthor",
            "authContact",
            "chapNum",
            "chapName",
            "secNum",
            "secName",
        ]);
        let fds = vec![
            fd("bookIsbn -> bookTitle"),
            fd("bookIsbn -> authContact"),
            fd("bookIsbn, chapNum -> chapName"),
            fd("bookIsbn, chapNum, secNum -> secName"),
        ];
        let dec = bcnf_decompose("U", &a, &fds);
        for r in &dec.relations {
            assert!(
                is_bcnf(&r.schema.attribute_set(), &fds),
                "fragment {} not BCNF",
                r.schema
            );
        }
        // The decomposition keeps all attributes.
        let union: BTreeSet<String> = dec
            .relations
            .iter()
            .flat_map(|r| r.schema.attribute_set())
            .collect();
        assert_eq!(union, a);
    }

    #[test]
    fn synthesis_is_dependency_preserving_and_has_key_fragment() {
        let a = attrs(["a", "b", "c", "d"]);
        let fds = vec![fd("a -> b"), fd("b -> c")];
        let dec = synthesize_3nf("r", &a, &fds);
        let sets = dec.attribute_sets();
        assert!(sets.iter().any(|s| s.is_superset(&attrs(["a", "b"]))));
        assert!(sets.iter().any(|s| s.is_superset(&attrs(["b", "c"]))));
        // d is in no FD, so it must appear, and some fragment must contain a
        // candidate key (a, d).
        assert!(sets.iter().any(|s| s.contains("d")));
        assert!(sets.iter().any(|s| s.is_superset(&attrs(["a", "d"]))));
        for r in &dec.relations {
            assert!(
                is_3nf(&r.schema.attribute_set(), &fds),
                "fragment {} not 3NF",
                r.schema
            );
        }
    }

    #[test]
    fn sql_rendering_mentions_keys() {
        let a = attrs(["isbn", "title"]);
        let fds = vec![fd("isbn -> title")];
        let dec = bcnf_decompose("book", &a, &fds);
        let sql = dec.to_sql();
        assert!(sql.contains("CREATE TABLE"));
        assert!(sql.contains("PRIMARY KEY (isbn)"));
    }

    #[test]
    fn project_fds_onto_fragment() {
        let fds = vec![fd("a -> b"), fd("b -> c")];
        let projected = project_fds(&fds, &attrs(["a", "c"]));
        // a -> c is implied and survives projection; b is gone.
        assert!(crate::implies(&projected, &fd("a -> c")));
        assert!(projected
            .iter()
            .all(|f| f.attributes().is_subset(&attrs(["a", "c"]))));
    }
}
