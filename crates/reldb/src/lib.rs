//! Relational substrate for the `xmlprop` workspace.
//!
//! The paper propagates XML keys into relational **functional dependencies**
//! and uses them to refine the relational design (Examples 1.2 and 3.1), so
//! it needs the full classical FD toolbox plus a notion of relational
//! instances with nulls:
//!
//! * [`Value`], [`Tuple`], [`RelationSchema`], [`Relation`], [`Database`] —
//!   relation instances produced by shredding XML data, with `null` values
//!   for missing branches (Section 2, "semantics");
//! * [`Fd`] — functional dependencies, with two satisfaction notions:
//!   classical, and the paper's null-aware semantics of Section 3
//!   ([`Relation::satisfies_fd_paper`]);
//! * Armstrong reasoning: attribute [`closure`], [`implies`],
//!   [`covers_equivalent`] — thin facades over the [`intern`] module's
//!   linear-time counter-based engine ([`AttrUniverse`], [`AttrSet`],
//!   [`IFd`], [`FdIndex`]), which hot paths use directly;
//! * cover computation: [`minimize`] (the paper's `minimize` function of
//!   Section 5 — removes extraneous attributes and redundant FDs) and
//!   [`minimum_cover`];
//! * normalization: [`candidate_keys`], [`bcnf_decompose`],
//!   [`synthesize_3nf`], [`is_bcnf`], [`is_3nf`], and SQL DDL rendering for
//!   examples.
//!
//! # Example
//!
//! ```
//! use xmlprop_reldb::{closure, Fd, minimize};
//! use std::collections::BTreeSet;
//!
//! let fds = vec![
//!     Fd::parse("isbn -> title").unwrap(),
//!     Fd::parse("isbn, chapNum -> chapName").unwrap(),
//!     Fd::parse("isbn, chapNum -> title").unwrap(), // redundant
//! ];
//! let cover = minimize(&fds);
//! assert_eq!(cover.len(), 2);
//! let attrs: BTreeSet<String> = ["isbn", "chapNum"].iter().map(|s| s.to_string()).collect();
//! let cl = closure(&attrs, &cover);
//! assert!(cl.contains("chapName") && cl.contains("title"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chase;
mod closure;
mod cover;
mod fd;
pub mod intern;
mod normalize;
mod relation;
mod schema;
mod value;

pub use chase::{decomposition_is_lossless, is_dependency_preserving, is_lossless_join};
pub use closure::{closure, covers_equivalent, implies};
pub use cover::{is_nonredundant, minimize, minimum_cover, remove_trivial};
pub use fd::{Fd, ParseFdError};
pub use intern::{AttrId, AttrSet, AttrUniverse, FdIndex, IFd};
pub use normalize::{
    bcnf_decompose, candidate_keys, is_3nf, is_bcnf, project_fds, synthesize_3nf,
    DecomposedRelation, Decomposition,
};
pub use relation::{Database, Relation, Tuple};
pub use schema::RelationSchema;
pub use value::Value;

/// Convenience: builds the attribute set `{a1, …, an}` from string-likes.
pub fn attrs<I, S>(names: I) -> std::collections::BTreeSet<String>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    names.into_iter().map(Into::into).collect()
}
