//! The chase test for lossless-join decompositions.
//!
//! The design-refinement pipeline of the paper decomposes a universal
//! relation guided by the propagated FDs (Examples 1.2 and 3.1).  A
//! decomposition is only acceptable if it is **lossless**: joining the
//! fragments must reconstruct exactly the original relation for every
//! instance satisfying the FDs.  The classical way to verify this is the
//! chase over a tableau with one row per fragment; this module implements it
//! so that the normalization algorithms can be checked (and property-tested)
//! rather than trusted.

use crate::intern::{AttrId, AttrSet, AttrUniverse};
use crate::Fd;
use std::collections::BTreeSet;

/// A tableau cell: either the distinguished symbol `a_j` for column `j`, or
/// a non-distinguished symbol `b_{i,j}` for row `i`, column `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Symbol {
    Distinguished(usize),
    NonDistinguished(usize, usize),
}

/// True if decomposing the attribute set `universe` into `fragments` is a
/// lossless-join decomposition under the FDs `fds`, decided by the chase.
///
/// The tableau starts with one row per fragment: distinguished symbols in the
/// fragment's own columns, fresh symbols elsewhere.  FDs are applied until a
/// fixpoint — whenever two rows agree on `X` of some `X → Y`, their `Y`
/// symbols are equated (preferring distinguished symbols).  The decomposition
/// is lossless iff some row becomes all-distinguished.
pub fn is_lossless_join(
    universe: &BTreeSet<String>,
    fragments: &[BTreeSet<String>],
    fds: &[Fd],
) -> bool {
    if fragments.iter().any(|f| !f.is_subset(universe)) {
        return false;
    }
    // Columns are interned attributes: the column of an attribute is its
    // `AttrId`, assigned in sorted order so the tableau layout matches the
    // historical `BTreeSet` column order.
    let mut attrs = AttrUniverse::new();
    let columns = universe.len();
    let fragment_sets: Vec<AttrSet> = {
        let mut sets = vec![AttrSet::new(); fragments.len()];
        for a in universe {
            let id = attrs.intern(a);
            for (row, fragment) in fragments.iter().enumerate() {
                if fragment.contains(a) {
                    sets[row].insert(id);
                }
            }
        }
        sets
    };

    // Initial tableau.
    let mut tableau: Vec<Vec<Symbol>> = fragment_sets
        .iter()
        .enumerate()
        .map(|(row, fragment)| {
            (0..columns)
                .map(|col| {
                    if fragment.contains(AttrId(col as u32)) {
                        Symbol::Distinguished(col)
                    } else {
                        Symbol::NonDistinguished(row, col)
                    }
                })
                .collect()
        })
        .collect();

    // FDs with every attribute inside the universe, as column lists (an FD
    // mentioning an attribute outside the universe never applies).
    let applicable: Vec<(Vec<usize>, Vec<usize>)> = fds
        .iter()
        .filter_map(|fd| {
            let lhs_cols: Vec<usize> = fd
                .lhs()
                .iter()
                .map(|a| attrs.lookup(a).map(AttrId::index))
                .collect::<Option<_>>()?;
            let rhs_cols: Vec<usize> = fd
                .rhs()
                .iter()
                .filter_map(|a| attrs.lookup(a).map(AttrId::index))
                .collect();
            Some((lhs_cols, rhs_cols))
        })
        .collect();

    // Chase to fixpoint.  Each application only ever replaces symbols by
    // "smaller" ones (distinguished preferred), so this terminates.
    let mut changed = true;
    while changed {
        changed = false;
        for (lhs_cols, rhs_cols) in &applicable {
            for i in 0..tableau.len() {
                for j in (i + 1)..tableau.len() {
                    if lhs_cols.iter().all(|&c| tableau[i][c] == tableau[j][c]) {
                        for &c in rhs_cols {
                            let (si, sj) = (tableau[i][c], tableau[j][c]);
                            if si == sj {
                                continue;
                            }
                            // Equate: prefer the distinguished symbol, else
                            // the lexicographically smaller one.
                            let keep = match (si, sj) {
                                (Symbol::Distinguished(_), _) => si,
                                (_, Symbol::Distinguished(_)) => sj,
                                _ => si.min(sj),
                            };
                            let drop = if keep == si { sj } else { si };
                            for row in tableau.iter_mut() {
                                for cell in row.iter_mut() {
                                    if *cell == drop {
                                        *cell = keep;
                                        changed = true;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    tableau.iter().any(|row| {
        row.iter()
            .enumerate()
            .all(|(c, s)| *s == Symbol::Distinguished(c))
    })
}

/// Convenience overload for [`crate::Decomposition`] results.
pub fn decomposition_is_lossless(
    universe: &BTreeSet<String>,
    decomposition: &crate::Decomposition,
    fds: &[Fd],
) -> bool {
    let fragments: Vec<BTreeSet<String>> = decomposition
        .relations
        .iter()
        .map(|r| r.schema.attribute_set())
        .collect();
    is_lossless_join(universe, &fragments, fds)
}

/// True if the decomposition is dependency preserving: the union of the FDs
/// projected onto the fragments is equivalent to the original set.
pub fn is_dependency_preserving(fragments: &[BTreeSet<String>], fds: &[Fd]) -> bool {
    let mut projected: Vec<Fd> = Vec::new();
    for fragment in fragments {
        projected.extend(crate::project_fds(fds, fragment));
    }
    fds.iter().all(|fd| crate::implies(&projected, fd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{attrs, bcnf_decompose, synthesize_3nf};

    fn fd(s: &str) -> Fd {
        Fd::parse(s).unwrap()
    }

    #[test]
    fn textbook_lossless_and_lossy_cases() {
        let universe = attrs(["a", "b", "c"]);
        let fds = vec![fd("a -> b")];
        // {a,b}, {a,c} is lossless (a -> b); {a,b}, {b,c} is lossy.
        assert!(is_lossless_join(
            &universe,
            &[attrs(["a", "b"]), attrs(["a", "c"])],
            &fds
        ));
        assert!(!is_lossless_join(
            &universe,
            &[attrs(["a", "b"]), attrs(["b", "c"])],
            &fds
        ));
        // Without any FDs only a fragment equal to the universe is lossless.
        assert!(!is_lossless_join(
            &universe,
            &[attrs(["a", "b"]), attrs(["a", "c"])],
            &[]
        ));
        assert!(is_lossless_join(
            &universe,
            std::slice::from_ref(&universe),
            &[]
        ));
    }

    #[test]
    fn fragments_outside_the_universe_are_rejected() {
        let universe = attrs(["a", "b"]);
        assert!(!is_lossless_join(&universe, &[attrs(["a", "z"])], &[]));
    }

    #[test]
    fn bcnf_decomposition_of_the_paper_examples_is_lossless() {
        // Example 1.2.
        let universe = attrs(["isbn", "bookTitle", "author", "chapterNum", "chapterName"]);
        let fds = vec![
            fd("isbn -> bookTitle"),
            fd("isbn, chapterNum -> chapterName"),
        ];
        let dec = bcnf_decompose("Chapter", &universe, &fds);
        assert!(decomposition_is_lossless(&universe, &dec, &fds));

        // Example 3.1.
        let universe = attrs([
            "bookIsbn",
            "bookTitle",
            "bookAuthor",
            "authContact",
            "chapNum",
            "chapName",
            "secNum",
            "secName",
        ]);
        let fds = vec![
            fd("bookIsbn -> bookTitle"),
            fd("bookIsbn -> authContact"),
            fd("bookIsbn, chapNum -> chapName"),
            fd("bookIsbn, chapNum, secNum -> secName"),
        ];
        let dec = bcnf_decompose("U", &universe, &fds);
        assert!(decomposition_is_lossless(&universe, &dec, &fds));
    }

    #[test]
    fn third_normal_form_synthesis_is_lossless_and_dependency_preserving() {
        let universe = attrs(["a", "b", "c", "d", "e"]);
        let fds = vec![fd("a -> b"), fd("b -> c"), fd("a, d -> e")];
        let dec = synthesize_3nf("r", &universe, &fds);
        assert!(decomposition_is_lossless(&universe, &dec, &fds));
        let fragments: Vec<BTreeSet<String>> = dec
            .relations
            .iter()
            .map(|r| r.schema.attribute_set())
            .collect();
        assert!(is_dependency_preserving(&fragments, &fds));
    }

    #[test]
    fn classic_dependency_loss_is_detected() {
        // BCNF of {street, city, zip} with (street, city) -> zip, zip -> city
        // famously loses the first dependency.
        let fds = vec![fd("street, city -> zip"), fd("zip -> city")];
        let fragments = vec![attrs(["zip", "city"]), attrs(["street", "zip"])];
        assert!(!is_dependency_preserving(&fragments, &fds));
        // ...but it is still lossless.
        assert!(is_lossless_join(
            &attrs(["street", "city", "zip"]),
            &fragments,
            &fds
        ));
    }
}
