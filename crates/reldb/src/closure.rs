//! Armstrong reasoning: attribute closure, implication, cover equivalence.
//!
//! These functions are the `String`-facing facade over the interned engine
//! of [`crate::intern`]: they intern their arguments into a throwaway
//! [`AttrUniverse`], run the counter-based linear-time Beeri–Bernstein
//! closure ([`FdIndex`]), and convert the answer back.  Callers that reason
//! over the same FD set repeatedly should intern once and query the
//! [`FdIndex`] directly instead.

use crate::intern::{AttrUniverse, FdIndex};
use crate::Fd;
use std::collections::BTreeSet;

/// The closure `X⁺` of an attribute set under a set of FDs: all attributes
/// functionally determined by `X`.
///
/// Runs in time linear in the total size of `fds` (plus the interning of the
/// arguments) — the Beeri–Bernstein counter algorithm behind the paper's
/// claim that FD implication is "checked in linear time using the
/// Armstrong's Axioms".
pub fn closure(attrs: &BTreeSet<String>, fds: &[Fd]) -> BTreeSet<String> {
    let mut u = AttrUniverse::from_fds(fds);
    let seed = u.intern_set(attrs);
    let ifds: Vec<_> = fds.iter().map(|fd| u.intern_fd(fd)).collect();
    let index = FdIndex::new(u.len(), &ifds);
    u.extern_set(&index.closure(&seed))
}

/// True if `fds ⊨ fd` (the FD is derivable by Armstrong's axioms).
pub fn implies(fds: &[Fd], fd: &Fd) -> bool {
    let mut u = AttrUniverse::from_fds(fds);
    let probe_lhs = u.intern_set(fd.lhs());
    let probe_rhs = u.intern_set(fd.rhs());
    let ifds: Vec<_> = fds.iter().map(|f| u.intern_fd(f)).collect();
    let index = FdIndex::new(u.len(), &ifds);
    probe_rhs.is_subset(&index.closure(&probe_lhs))
}

/// True if two FD sets are equivalent (each implies every FD of the other).
pub fn covers_equivalent(a: &[Fd], b: &[Fd]) -> bool {
    let mut u = AttrUniverse::from_fds(a.iter().chain(b));
    let ia: Vec<_> = a.iter().map(|fd| u.intern_fd(fd)).collect();
    let ib: Vec<_> = b.iter().map(|fd| u.intern_fd(fd)).collect();
    let index_a = FdIndex::new(u.len(), &ia);
    let index_b = FdIndex::new(u.len(), &ib);
    ia.iter().all(|fd| index_b.implies(fd)) && ib.iter().all(|fd| index_a.implies(fd))
}

/// The original fixpoint implementations, kept as reference oracles for the
/// property tests that pin the linear-time engine to them.
#[cfg(test)]
pub(crate) mod oracle {
    use super::*;

    /// `closure` as the classical fixpoint loop over string sets (the
    /// pre-interning implementation, O(n·|F|)).
    pub fn closure_fixpoint(attrs: &BTreeSet<String>, fds: &[Fd]) -> BTreeSet<String> {
        let mut result = attrs.clone();
        let mut changed = true;
        let mut applied = vec![false; fds.len()];
        while changed {
            changed = false;
            for (i, fd) in fds.iter().enumerate() {
                if applied[i] {
                    continue;
                }
                if fd.lhs().is_subset(&result) {
                    applied[i] = true;
                    for a in fd.rhs() {
                        if result.insert(a.clone()) {
                            changed = true;
                        }
                    }
                }
            }
        }
        result
    }

    /// `implies` through the fixpoint closure.
    pub fn implies_fixpoint(fds: &[Fd], fd: &Fd) -> bool {
        fd.rhs().is_subset(&closure_fixpoint(fd.lhs(), fds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;

    fn fd(s: &str) -> Fd {
        Fd::parse(s).unwrap()
    }

    #[test]
    fn closure_basic() {
        let fds = vec![fd("a -> b"), fd("b -> c"), fd("c, d -> e")];
        assert_eq!(closure(&attrs(["a"]), &fds), attrs(["a", "b", "c"]));
        assert_eq!(
            closure(&attrs(["a", "d"]), &fds),
            attrs(["a", "b", "c", "d", "e"])
        );
        assert_eq!(closure(&attrs(["d"]), &fds), attrs(["d"]));
        assert_eq!(closure(&BTreeSet::new(), &fds), BTreeSet::new());
    }

    #[test]
    fn closure_with_empty_lhs_fd() {
        let fds = vec![fd("-> k"), fd("k -> v")];
        assert_eq!(closure(&BTreeSet::new(), &fds), attrs(["k", "v"]));
    }

    #[test]
    fn closure_keeps_attributes_no_fd_mentions() {
        let fds = vec![fd("a -> b")];
        assert_eq!(
            closure(&attrs(["a", "zzz"]), &fds),
            attrs(["a", "b", "zzz"])
        );
    }

    #[test]
    fn implication() {
        let fds = vec![fd("a -> b"), fd("b -> c")];
        assert!(implies(&fds, &fd("a -> c")));
        assert!(implies(&fds, &fd("a -> a, b, c")));
        assert!(implies(&fds, &fd("a, x -> c")));
        assert!(!implies(&fds, &fd("b -> a")));
        assert!(!implies(&fds, &fd("c -> a")));
        // Reflexivity without any FDs.
        assert!(implies(&[], &fd("a, b -> a")));
    }

    #[test]
    fn equivalence_of_covers() {
        let f1 = vec![fd("a -> b"), fd("b -> c")];
        let f2 = vec![fd("a -> b, c"), fd("b -> c")];
        let f3 = vec![fd("a -> b")];
        assert!(covers_equivalent(&f1, &f2));
        assert!(!covers_equivalent(&f1, &f3));
        assert!(covers_equivalent(&[], &[]));
    }

    #[test]
    fn paper_example_1_2_cover_derivations() {
        // Example 1.2: from the minimum cover {isbn -> bookTitle,
        // (isbn, chapterNum) -> chapterName}, isbn alone does not determine
        // chapterName but (isbn, chapterNum) does.
        let cover = vec![
            fd("isbn -> bookTitle"),
            fd("isbn, chapterNum -> chapterName"),
        ];
        assert!(implies(
            &cover,
            &fd("isbn, chapterNum -> bookTitle, chapterName")
        ));
        assert!(!implies(&cover, &fd("isbn -> chapterName")));
        assert!(!implies(&cover, &fd("isbn -> author")));
    }

    mod properties {
        use super::super::oracle::{closure_fixpoint, implies_fixpoint};
        use super::*;
        use proptest::prelude::*;

        /// Random FDs over a tiny attribute universe (small enough that
        /// random sets frequently interact).
        fn fd_strategy() -> impl Strategy<Value = Fd> {
            let attr = prop_oneof![Just("p"), Just("q"), Just("r"), Just("s"), Just("t")];
            (
                prop::collection::btree_set(attr.clone(), 0..4),
                prop::collection::btree_set(attr, 1..3),
            )
                .prop_map(|(lhs, rhs)| {
                    Fd::new(
                        lhs.into_iter().map(str::to_string).collect(),
                        rhs.into_iter().map(str::to_string).collect(),
                    )
                })
        }

        fn seed_strategy() -> impl Strategy<Value = BTreeSet<String>> {
            prop::collection::btree_set(
                prop_oneof![Just("p"), Just("q"), Just("r"), Just("s"), Just("t")],
                0..4,
            )
            .prop_map(|s| s.into_iter().map(str::to_string).collect())
        }

        proptest! {
            /// The linear-time closure agrees with the fixpoint oracle on
            /// random FD sets and seeds.
            #[test]
            fn linear_closure_matches_fixpoint(
                fds in prop::collection::vec(fd_strategy(), 0..10),
                seed in seed_strategy(),
            ) {
                prop_assert_eq!(closure(&seed, &fds), closure_fixpoint(&seed, &fds));
            }

            /// The linear-time implication agrees with the fixpoint oracle.
            #[test]
            fn linear_implies_matches_fixpoint(
                fds in prop::collection::vec(fd_strategy(), 0..10),
                probe in fd_strategy(),
            ) {
                prop_assert_eq!(implies(&fds, &probe), implies_fixpoint(&fds, &probe));
            }
        }
    }
}
