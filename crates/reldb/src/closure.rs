//! Armstrong reasoning: attribute closure, implication, cover equivalence.

use crate::Fd;
use std::collections::BTreeSet;

/// The closure `X⁺` of an attribute set under a set of FDs: all attributes
/// functionally determined by `X`.
///
/// Standard fixpoint computation; linear in the total size of `fds` per
/// round, with at most `|fds|` rounds (the classical O(n·|F|) bound, which is
/// all the paper needs — FD implication is described there as "checked in
/// linear time using the Armstrong's Axioms").
pub fn closure(attrs: &BTreeSet<String>, fds: &[Fd]) -> BTreeSet<String> {
    let mut result = attrs.clone();
    let mut changed = true;
    let mut applied = vec![false; fds.len()];
    while changed {
        changed = false;
        for (i, fd) in fds.iter().enumerate() {
            if applied[i] {
                continue;
            }
            if fd.lhs().is_subset(&result) {
                applied[i] = true;
                for a in fd.rhs() {
                    if result.insert(a.clone()) {
                        changed = true;
                    }
                }
            }
        }
    }
    result
}

/// True if `fds ⊨ fd` (the FD is derivable by Armstrong's axioms).
pub fn implies(fds: &[Fd], fd: &Fd) -> bool {
    let cl = closure(fd.lhs(), fds);
    fd.rhs().is_subset(&cl)
}

/// True if two FD sets are equivalent (each implies every FD of the other).
pub fn covers_equivalent(a: &[Fd], b: &[Fd]) -> bool {
    a.iter().all(|fd| implies(b, fd)) && b.iter().all(|fd| implies(a, fd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;

    fn fd(s: &str) -> Fd {
        Fd::parse(s).unwrap()
    }

    #[test]
    fn closure_basic() {
        let fds = vec![fd("a -> b"), fd("b -> c"), fd("c, d -> e")];
        assert_eq!(closure(&attrs(["a"]), &fds), attrs(["a", "b", "c"]));
        assert_eq!(
            closure(&attrs(["a", "d"]), &fds),
            attrs(["a", "b", "c", "d", "e"])
        );
        assert_eq!(closure(&attrs(["d"]), &fds), attrs(["d"]));
        assert_eq!(closure(&BTreeSet::new(), &fds), BTreeSet::new());
    }

    #[test]
    fn closure_with_empty_lhs_fd() {
        let fds = vec![fd("-> k"), fd("k -> v")];
        assert_eq!(closure(&BTreeSet::new(), &fds), attrs(["k", "v"]));
    }

    #[test]
    fn implication() {
        let fds = vec![fd("a -> b"), fd("b -> c")];
        assert!(implies(&fds, &fd("a -> c")));
        assert!(implies(&fds, &fd("a -> a, b, c")));
        assert!(implies(&fds, &fd("a, x -> c")));
        assert!(!implies(&fds, &fd("b -> a")));
        assert!(!implies(&fds, &fd("c -> a")));
        // Reflexivity without any FDs.
        assert!(implies(&[], &fd("a, b -> a")));
    }

    #[test]
    fn equivalence_of_covers() {
        let f1 = vec![fd("a -> b"), fd("b -> c")];
        let f2 = vec![fd("a -> b, c"), fd("b -> c")];
        let f3 = vec![fd("a -> b")];
        assert!(covers_equivalent(&f1, &f2));
        assert!(!covers_equivalent(&f1, &f3));
        assert!(covers_equivalent(&[], &[]));
    }

    #[test]
    fn paper_example_1_2_cover_derivations() {
        // Example 1.2: from the minimum cover {isbn -> bookTitle,
        // (isbn, chapterNum) -> chapterName}, isbn alone does not determine
        // chapterName but (isbn, chapterNum) does.
        let cover = vec![
            fd("isbn -> bookTitle"),
            fd("isbn, chapterNum -> chapterName"),
        ];
        assert!(implies(
            &cover,
            &fd("isbn, chapterNum -> bookTitle, chapterName")
        ));
        assert!(!implies(&cover, &fd("isbn -> chapterName")));
        assert!(!implies(&cover, &fd("isbn -> author")));
    }
}
