//! Cover computation: the paper's `minimize` function and minimum covers.
//!
//! Facade over the interned engine: each function interns its input into an
//! [`AttrUniverse`] (sorted, so results are deterministic and identical to
//! the historical string-based implementation), runs the [`crate::intern`]
//! cover algorithms, and converts back.

use crate::intern::{
    is_nonredundant_interned, minimize_interned, remove_trivial_interned, AttrUniverse,
};
use crate::Fd;

/// Removes trivial FDs (`Y ⊆ X`) and normalizes right-hand sides to single
/// attributes.  Both `naive` and `minimumCover` in the paper work on this
/// canonical form.
pub fn remove_trivial(fds: &[Fd]) -> Vec<Fd> {
    let mut u = AttrUniverse::from_fds(fds);
    let ifds: Vec<_> = fds.iter().map(|fd| u.intern_fd(fd)).collect();
    remove_trivial_interned(&ifds)
        .iter()
        .map(|fd| u.extern_fd(fd))
        .collect()
}

/// The `minimize` function of Section 5 of the paper:
///
/// 1. for each FD, repeatedly drop *extraneous* left-hand-side attributes
///    (an attribute `B ∈ X` is extraneous in `X → Y` if
///    `(X \ {B}) → Y` is still implied by the whole set);
/// 2. drop *redundant* FDs (those implied by the remaining ones).
///
/// The result is a non-redundant cover of the input, i.e. a minimum cover in
/// the sense of Maier/Beeri–Bernstein used by the paper.  The function is
/// quadratic in the size of its input, as stated in Section 5, but every
/// implication test inside is one linear-time counter-based closure.
pub fn minimize(fds: &[Fd]) -> Vec<Fd> {
    let mut u = AttrUniverse::from_fds(fds);
    let ifds: Vec<_> = fds.iter().map(|fd| u.intern_fd(fd)).collect();
    minimize_interned(u.len(), &ifds)
        .iter()
        .map(|fd| u.extern_fd(fd))
        .collect()
}

/// True if no FD in the set is implied by the others and no left-hand-side
/// attribute is extraneous — i.e. the set is already a minimum cover of
/// itself.
pub fn is_nonredundant(fds: &[Fd]) -> bool {
    let mut u = AttrUniverse::from_fds(fds);
    let ifds: Vec<_> = fds.iter().map(|fd| u.intern_fd(fd)).collect();
    is_nonredundant_interned(u.len(), &ifds)
}

/// Computes a minimum cover of an arbitrary FD set.  This is just
/// [`minimize`] — exposed under the textbook name for callers that start
/// from a raw FD set rather than from the propagation algorithms.
pub fn minimum_cover(fds: &[Fd]) -> Vec<Fd> {
    minimize(fds)
}

/// The original string-set `minimize`, kept as the reference oracle for the
/// property tests pinning the interned implementation to it.
#[cfg(test)]
pub(crate) mod oracle {
    use super::*;
    use crate::closure::oracle::implies_fixpoint;
    use std::collections::BTreeSet;

    /// `remove_trivial` over string sets (pre-interning implementation).
    pub fn remove_trivial_fixpoint(fds: &[Fd]) -> Vec<Fd> {
        let mut out = Vec::new();
        for fd in fds {
            for single in fd.split_rhs() {
                if !single.is_trivial() && !out.contains(&single) {
                    out.push(single);
                }
            }
        }
        out
    }

    /// `minimize` over string sets (pre-interning implementation).
    pub fn minimize_fixpoint(fds: &[Fd]) -> Vec<Fd> {
        let mut work = remove_trivial_fixpoint(fds);
        for i in 0..work.len() {
            loop {
                let current = work[i].clone();
                let mut reduced = None;
                for b in current.lhs() {
                    let mut smaller: BTreeSet<String> = current.lhs().clone();
                    smaller.remove(b);
                    let candidate = current.with_lhs(smaller);
                    if implies_fixpoint(&work, &candidate) {
                        reduced = Some(candidate);
                        break;
                    }
                }
                match reduced {
                    Some(candidate) => work[i] = candidate,
                    None => break,
                }
            }
        }
        let mut deduped: Vec<Fd> = Vec::with_capacity(work.len());
        for fd in work {
            if !deduped.contains(&fd) {
                deduped.push(fd);
            }
        }
        let mut result = deduped;
        let mut i = 0;
        while i < result.len() {
            let fd = result[i].clone();
            let mut rest: Vec<Fd> = Vec::with_capacity(result.len() - 1);
            rest.extend_from_slice(&result[..i]);
            rest.extend_from_slice(&result[i + 1..]);
            if implies_fixpoint(&rest, &fd) {
                result.remove(i);
            } else {
                i += 1;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::covers_equivalent;

    fn fd(s: &str) -> Fd {
        Fd::parse(s).unwrap()
    }

    #[test]
    fn remove_trivial_splits_and_drops() {
        let fds = vec![fd("a -> a, b"), fd("a, b -> b")];
        let out = remove_trivial(&fds);
        assert_eq!(out, vec![fd("a -> b")]);
    }

    #[test]
    fn minimize_drops_redundant_fd() {
        let fds = vec![fd("a -> b"), fd("b -> c"), fd("a -> c")];
        let cover = minimize(&fds);
        assert_eq!(cover.len(), 2);
        assert!(covers_equivalent(&cover, &fds));
        assert!(is_nonredundant(&cover));
    }

    #[test]
    fn minimize_removes_extraneous_attributes() {
        let fds = vec![fd("a -> b"), fd("a, b -> c")];
        let cover = minimize(&fds);
        assert!(cover.contains(&fd("a -> c")) || covers_equivalent(&cover, &fds));
        // b is extraneous in (a, b) -> c because a -> b.
        assert!(cover.iter().all(|f| f.lhs().len() <= 1));
        assert!(is_nonredundant(&cover));
    }

    #[test]
    fn minimize_is_idempotent() {
        let fds = vec![fd("a -> b"), fd("b -> c"), fd("a -> c"), fd("a, b -> c, a")];
        let once = minimize(&fds);
        let twice = minimize(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn minimize_keeps_equivalence_on_cycles() {
        // a <-> b cycles should keep both directions.
        let fds = vec![fd("a -> b"), fd("b -> a"), fd("a -> c"), fd("b -> c")];
        let cover = minimize(&fds);
        assert!(covers_equivalent(&cover, &fds));
        assert!(is_nonredundant(&cover));
        // Exactly one of a -> c / b -> c survives alongside the cycle.
        assert_eq!(cover.len(), 3);
    }

    #[test]
    fn paper_example_3_1_cover_is_already_minimal() {
        let cover = vec![
            fd("bookIsbn -> bookTitle"),
            fd("bookIsbn -> authContact"),
            fd("bookIsbn, chapNum -> chapName"),
            fd("bookIsbn, chapNum, secNum -> secName"),
        ];
        assert!(is_nonredundant(&cover));
        assert!(covers_equivalent(&minimize(&cover), &cover));
        assert_eq!(minimize(&cover).len(), cover.len());
    }

    #[test]
    fn empty_input() {
        assert!(minimize(&[]).is_empty());
        assert!(is_nonredundant(&[]));
        assert!(minimum_cover(&[]).is_empty());
    }

    mod properties {
        use super::super::oracle::{minimize_fixpoint, remove_trivial_fixpoint};
        use super::*;
        use proptest::prelude::*;
        use std::collections::BTreeSet;

        fn fd_strategy() -> impl Strategy<Value = Fd> {
            let attr = prop_oneof![Just("p"), Just("q"), Just("r"), Just("s"), Just("t")];
            (
                prop::collection::btree_set(attr.clone(), 0..4),
                prop::collection::btree_set(attr, 1..3),
            )
                .prop_map(|(lhs, rhs)| {
                    let lhs: BTreeSet<String> = lhs.into_iter().map(str::to_string).collect();
                    let rhs: BTreeSet<String> = rhs.into_iter().map(str::to_string).collect();
                    Fd::new(lhs, rhs)
                })
        }

        proptest! {
            /// The interned `minimize` produces exactly the same cover as
            /// the historical fixpoint implementation — same FDs, same
            /// order — on random FD sets.
            #[test]
            fn minimize_matches_fixpoint(
                fds in prop::collection::vec(fd_strategy(), 0..10),
            ) {
                prop_assert_eq!(minimize(&fds), minimize_fixpoint(&fds));
            }

            /// Canonicalization agrees with the string-based original.
            #[test]
            fn remove_trivial_matches_fixpoint(
                fds in prop::collection::vec(fd_strategy(), 0..10),
            ) {
                prop_assert_eq!(remove_trivial(&fds), remove_trivial_fixpoint(&fds));
            }

            /// The minimized cover is equivalent to and non-redundant for
            /// its input (the semantic contract, independent of the oracle).
            #[test]
            fn minimize_is_sound(
                fds in prop::collection::vec(fd_strategy(), 0..10),
            ) {
                let cover = minimize(&fds);
                prop_assert!(covers_equivalent(&cover, &fds));
                prop_assert!(is_nonredundant(&cover));
            }
        }
    }
}
