//! Relation instances, tuples and databases.

use crate::{Fd, RelationSchema, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A tuple: one value per attribute of the owning relation's schema, in
/// schema order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from values (must match the schema arity of the
    /// relation it is inserted into; [`Relation::insert`] checks this).
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The values of the tuple.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The number of fields.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at position `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// True if any field is null.
    pub fn has_null(&self) -> bool {
        self.values.iter().any(Value::is_null)
    }

    /// SQL-style tuple equality: every field pair compares equal under
    /// [`Value::sql_eq`]. A tuple containing a null therefore never
    /// matches anything — itself included — which is the comparison keys
    /// and joins must use. Structural `==` (nulls equal) remains the right
    /// notion for *duplicate elimination* ([`Relation::distinct`], SQL
    /// `DISTINCT`); see the [`Value`] docs for the split.
    pub fn sql_eq(&self, other: &Tuple) -> bool {
        self.arity() == other.arity()
            && self
                .values
                .iter()
                .zip(other.values.iter())
                .all(|(a, b)| a.sql_eq(b))
    }
}

impl<V: Into<Value>> FromIterator<V> for Tuple {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        Tuple::new(iter.into_iter().map(Into::into).collect())
    }
}

/// A relation instance: a schema plus a bag of tuples.
///
/// Shredding XML into relations can produce duplicate rows (the paper's
/// semantics builds a set of field-to-value bindings, but two distinct node
/// bindings may produce equal field values); the instance is therefore kept
/// as a bag, with [`Relation::distinct`] available when set semantics is
/// wanted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: RelationSchema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty instance of the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema of the relation.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The rows of the relation.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a tuple.
    ///
    /// # Panics
    ///
    /// Panics if the tuple arity does not match the schema.
    pub fn insert(&mut self, tuple: Tuple) {
        assert_eq!(
            tuple.arity(),
            self.schema.arity(),
            "tuple arity does not match schema {}",
            self.schema
        );
        self.rows.push(tuple);
    }

    /// Inserts a tuple given as `(attribute, value)` pairs; attributes not
    /// mentioned become null.
    pub fn insert_named<'a, I>(&mut self, fields: I)
    where
        I: IntoIterator<Item = (&'a str, Value)>,
    {
        let mut values = vec![Value::Null; self.schema.arity()];
        for (name, value) in fields {
            let idx = self
                .schema
                .index_of(name)
                .unwrap_or_else(|| panic!("unknown attribute `{name}` in {}", self.schema));
            values[idx] = value;
        }
        self.rows.push(Tuple::new(values));
    }

    /// Returns a copy with duplicate rows removed (order preserved).
    ///
    /// Duplicate detection is *structural*, like SQL `DISTINCT`: two rows
    /// that agree field-by-field collapse even where those fields are
    /// null. This is deliberately not [`Tuple::sql_eq`] — under SQL
    /// comparison semantics a null-bearing row equals nothing and
    /// `DISTINCT` could never remove it, yet SQL (and this engine) still
    /// collapse repeated `NULL` rows when deduplicating.
    pub fn distinct(&self) -> Relation {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Relation::new(self.schema.clone());
        for row in &self.rows {
            if seen.insert(row.clone()) {
                out.rows.push(row.clone());
            }
        }
        out
    }

    /// The value of `attribute` in `row`.
    pub fn value<'t>(&self, row: &'t Tuple, attribute: &str) -> &'t Value {
        let idx = self
            .schema
            .index_of(attribute)
            .unwrap_or_else(|| panic!("unknown attribute `{attribute}` in {}", self.schema));
        row.get(idx)
    }

    /// Projection of a row onto a set of attributes (in iteration order of
    /// the given names).
    pub fn project<'a>(
        &self,
        row: &Tuple,
        attributes: impl IntoIterator<Item = &'a String>,
    ) -> Vec<Value> {
        attributes
            .into_iter()
            .map(|a| self.value(row, a).clone())
            .collect()
    }

    /// Classical FD satisfaction, ignoring the null subtleties: any two rows
    /// that agree on `fd.lhs()` (using strict value equality, where nulls
    /// equal nulls) agree on `fd.rhs()`.
    pub fn satisfies_fd_classical(&self, fd: &Fd) -> bool {
        let lhs: Vec<&String> = fd.lhs().iter().collect();
        let rhs: Vec<&String> = fd.rhs().iter().collect();
        let mut seen: BTreeMap<Vec<Value>, Vec<Value>> = BTreeMap::new();
        for row in &self.rows {
            let key = self.project(row, lhs.iter().copied());
            let val = self.project(row, rhs.iter().copied());
            match seen.get(&key) {
                Some(prev) if prev != &val => return false,
                Some(_) => {}
                None => {
                    seen.insert(key, val);
                }
            }
        }
        true
    }

    /// FD satisfaction under the paper's null semantics (Section 3):
    ///
    /// 1. for any tuple, if the `X` projection contains a null then so does
    ///    the `Y` projection (an incomplete key cannot determine complete
    ///    fields); and
    /// 2. any two tuples that are entirely null-free and agree on `X` agree
    ///    on `Y`.
    pub fn satisfies_fd_paper(&self, fd: &Fd) -> bool {
        let lhs: Vec<&String> = fd.lhs().iter().collect();
        let rhs: Vec<&String> = fd.rhs().iter().collect();
        // Condition 1.
        for row in &self.rows {
            let x = self.project(row, lhs.iter().copied());
            let y = self.project(row, rhs.iter().copied());
            if x.iter().any(Value::is_null) && !y.iter().any(Value::is_null) {
                return false;
            }
        }
        // Condition 2 — over completely null-free tuples only.
        let mut seen: BTreeMap<Vec<Value>, Vec<Value>> = BTreeMap::new();
        for row in &self.rows {
            if row.has_null() {
                continue;
            }
            let key = self.project(row, lhs.iter().copied());
            let val = self.project(row, rhs.iter().copied());
            match seen.get(&key) {
                Some(prev) if prev != &val => return false,
                Some(_) => {}
                None => {
                    seen.insert(key, val);
                }
            }
        }
        true
    }

    /// Renders the instance as an aligned text table (Fig. 2 style).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.schema.attributes().iter().map(|a| a.len()).collect();
        for row in &self.rows {
            for (i, v) in row.values().iter().enumerate() {
                widths[i] = widths[i].max(v.to_string().len());
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self
            .schema
            .attributes()
            .iter()
            .enumerate()
            .map(|(i, a)| format!("{:width$}", a, width = widths[i]))
            .collect();
        out.push_str(&format!("{}\n", header.join("  ")));
        out.push_str(&format!("{}\n", "-".repeat(header.join("  ").len())));
        for row in &self.rows {
            let cells: Vec<String> = row
                .values()
                .iter()
                .enumerate()
                .map(|(i, v)| format!("{:width$}", v.to_string(), width = widths[i]))
                .collect();
            out.push_str(&format!("{}\n", cells.join("  ")));
        }
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        write!(f, "{}", self.to_table_string())
    }
}

/// A database: a collection of relation instances, addressed by name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds (or replaces) a relation instance.
    pub fn insert(&mut self, relation: Relation) {
        self.relations
            .insert(relation.schema().name().to_string(), relation);
    }

    /// Looks up a relation by name.
    pub fn get(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Iterates over the relations in name order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// The number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True if the database holds no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;

    fn chapter_relation() -> Relation {
        // Fig. 2(a) of the paper.
        let schema = RelationSchema::new("Chapter", ["bookTitle", "chapterNum", "chapterName"]);
        let mut r = Relation::new(schema);
        r.insert(["XML", "1", "Introduction"].into_iter().collect());
        r.insert(["XML", "10", "Conclusion"].into_iter().collect());
        r.insert(["XML", "1", "Getting Acquainted"].into_iter().collect());
        r
    }

    #[test]
    fn fig2a_violates_its_key() {
        // Example 1.1: (bookTitle, chapterNum) -> chapterName fails on the
        // initial design.
        let r = chapter_relation();
        let fd = Fd::new(attrs(["bookTitle", "chapterNum"]), attrs(["chapterName"]));
        assert!(!r.satisfies_fd_classical(&fd));
        assert!(!r.satisfies_fd_paper(&fd));
    }

    #[test]
    fn fig2b_satisfies_the_refined_key() {
        // Fig. 2(b): isbn replaces bookTitle and the key holds.
        let schema = RelationSchema::new("Chapter", ["isbn", "chapterNum", "chapterName"]);
        let mut r = Relation::new(schema);
        r.insert(["123", "1", "Introduction"].into_iter().collect());
        r.insert(["123", "10", "Conclusion"].into_iter().collect());
        r.insert(["234", "1", "Getting Acquainted"].into_iter().collect());
        let fd = Fd::new(attrs(["isbn", "chapterNum"]), attrs(["chapterName"]));
        assert!(r.satisfies_fd_classical(&fd));
        assert!(r.satisfies_fd_paper(&fd));
    }

    #[test]
    fn paper_null_semantics_condition_one() {
        // X null but Y non-null violates condition (1).
        let schema = RelationSchema::new("r", ["a", "b"]);
        let mut r = Relation::new(schema);
        r.insert(Tuple::new(vec![Value::Null, Value::text("y")]));
        let fd = Fd::new(attrs(["a"]), attrs(["b"]));
        assert!(!r.satisfies_fd_paper(&fd));
        // Classical satisfaction does not look at nulls specially: a single
        // tuple can never violate it.
        assert!(r.satisfies_fd_classical(&fd));
    }

    #[test]
    fn paper_null_semantics_ignores_null_tuples_in_condition_two() {
        let schema = RelationSchema::new("r", ["a", "b", "c"]);
        let mut r = Relation::new(schema);
        // Two tuples agree on a but disagree on b; one of them has a null c,
        // so it is exempt from condition (2).
        r.insert(Tuple::new(vec![
            Value::text("1"),
            Value::text("x"),
            Value::Null,
        ]));
        r.insert(Tuple::new(vec![
            Value::text("1"),
            Value::text("y"),
            Value::text("z"),
        ]));
        let fd = Fd::new(attrs(["a"]), attrs(["b"]));
        assert!(r.satisfies_fd_paper(&fd));
        assert!(!r.satisfies_fd_classical(&fd));
    }

    #[test]
    fn insert_named_defaults_to_null() {
        let schema = RelationSchema::new("r", ["a", "b"]);
        let mut r = Relation::new(schema);
        r.insert_named([("b", Value::text("v"))]);
        assert_eq!(r.rows()[0].get(0), &Value::Null);
        assert_eq!(r.rows()[0].get(1), &Value::text("v"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn insert_checks_arity() {
        let schema = RelationSchema::new("r", ["a", "b"]);
        let mut r = Relation::new(schema);
        r.insert(["only one"].into_iter().collect());
    }

    #[test]
    fn tuple_sql_eq_never_matches_nulls() {
        let plain: Tuple = ["1", "x"].into_iter().collect();
        let same: Tuple = ["1", "x"].into_iter().collect();
        let with_null = Tuple::new(vec![Value::text("1"), Value::Null]);
        assert!(plain.sql_eq(&same));
        assert!(!plain.sql_eq(&with_null));
        // A null-bearing tuple does not even match itself…
        assert!(!with_null.sql_eq(&with_null));
        // …although structural equality (duplicate detection) says it does.
        assert_eq!(with_null, with_null.clone());
        // Arity mismatch is simply unequal, not a panic.
        let short: Tuple = ["1"].into_iter().collect();
        assert!(!plain.sql_eq(&short));
    }

    #[test]
    fn distinct_collapses_null_rows_like_sql_distinct() {
        let schema = RelationSchema::new("r", ["a"]);
        let mut r = Relation::new(schema);
        r.insert(Tuple::new(vec![Value::Null]));
        r.insert(Tuple::new(vec![Value::Null]));
        // DISTINCT is structural: repeated NULL rows collapse even though
        // sql_eq would call them unequal.
        assert_eq!(r.distinct().len(), 1);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let r = chapter_relation();
        let mut dup = r.clone();
        dup.insert(["XML", "1", "Introduction"].into_iter().collect());
        assert_eq!(dup.len(), 4);
        assert_eq!(dup.distinct().len(), 3);
        assert_eq!(r.distinct().len(), 3);
    }

    #[test]
    fn table_rendering_contains_all_cells() {
        let r = chapter_relation();
        let s = r.to_table_string();
        assert!(s.contains("bookTitle"));
        assert!(s.contains("Getting Acquainted"));
        assert_eq!(s.lines().count(), 2 + r.len());
    }

    #[test]
    fn database_lookup() {
        let mut db = Database::new();
        assert!(db.is_empty());
        db.insert(chapter_relation());
        assert_eq!(db.len(), 1);
        assert!(db.get("Chapter").is_some());
        assert!(db.get("Missing").is_none());
        assert_eq!(db.relations().count(), 1);
    }
}
