//! Relation schemas.

use std::fmt;

/// The schema of one relation: a name and an ordered list of attribute
/// (field) names, written `R(a1, …, an)` in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RelationSchema {
    name: String,
    attributes: Vec<String>,
}

impl RelationSchema {
    /// Creates a schema from a name and attribute list.
    ///
    /// # Panics
    ///
    /// Panics if an attribute name is repeated — relational schemas are sets
    /// of attributes and a duplicate would make field lookups ambiguous.
    pub fn new<I, S>(name: impl Into<String>, attributes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let attributes: Vec<String> = attributes.into_iter().map(Into::into).collect();
        let mut seen = std::collections::BTreeSet::new();
        for a in &attributes {
            assert!(
                seen.insert(a.clone()),
                "duplicate attribute `{a}` in relation schema"
            );
        }
        RelationSchema {
            name: name.into(),
            attributes,
        }
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute names, in declaration order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// The number of attributes (the "fields" count of the experiments in
    /// Section 6).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// The position of an attribute, if it exists.
    pub fn index_of(&self, attribute: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a == attribute)
    }

    /// True if the schema has the named attribute.
    pub fn contains(&self, attribute: &str) -> bool {
        self.index_of(attribute).is_some()
    }

    /// The attributes as a set (useful for FD reasoning).
    pub fn attribute_set(&self) -> std::collections::BTreeSet<String> {
        self.attributes.iter().cloned().collect()
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attributes.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = RelationSchema::new("chapter", ["inBook", "number", "name"]);
        assert_eq!(s.name(), "chapter");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("number"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.contains("name"));
        assert_eq!(s.to_string(), "chapter(inBook, number, name)");
        assert_eq!(s.attribute_set().len(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn rejects_duplicate_attributes() {
        let _ = RelationSchema::new("r", ["a", "a"]);
    }
}
