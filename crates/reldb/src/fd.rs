//! Functional dependencies.

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

/// A functional dependency `X → Y` over a set of attribute names.
///
/// Both sides are attribute sets; an empty right-hand side is allowed (it is
/// trivially satisfied) but an empty left-hand side is meaningful too (it
/// says `Y` is constant).  The paper works mostly with single-attribute
/// right-hand sides ([`Fd::is_singleton_rhs`]); [`Fd::split_rhs`] converts to
/// that canonical form.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd {
    lhs: BTreeSet<String>,
    rhs: BTreeSet<String>,
}

impl Fd {
    /// Creates the FD `lhs → rhs`.
    pub fn new(lhs: BTreeSet<String>, rhs: BTreeSet<String>) -> Self {
        Fd { lhs, rhs }
    }

    /// Creates `X → A` with a single right-hand attribute.
    pub fn to_attr<I, S>(lhs: I, rhs: impl Into<String>) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Fd {
            lhs: lhs.into_iter().map(Into::into).collect(),
            rhs: std::iter::once(rhs.into()).collect(),
        }
    }

    /// Parses `"a, b -> c"` (also accepts `→`).
    pub fn parse(s: &str) -> Result<Self, ParseFdError> {
        s.parse()
    }

    /// The left-hand side `X`.
    pub fn lhs(&self) -> &BTreeSet<String> {
        &self.lhs
    }

    /// The right-hand side `Y`.
    pub fn rhs(&self) -> &BTreeSet<String> {
        &self.rhs
    }

    /// All attributes mentioned by the FD.
    pub fn attributes(&self) -> BTreeSet<String> {
        self.lhs.union(&self.rhs).cloned().collect()
    }

    /// True if the FD is trivial (`Y ⊆ X`).
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(&self.lhs)
    }

    /// True if the right-hand side has exactly one attribute.
    pub fn is_singleton_rhs(&self) -> bool {
        self.rhs.len() == 1
    }

    /// Splits `X → {A1, …, An}` into `n` FDs with singleton right-hand sides.
    pub fn split_rhs(&self) -> Vec<Fd> {
        self.rhs
            .iter()
            .map(|a| Fd {
                lhs: self.lhs.clone(),
                rhs: std::iter::once(a.clone()).collect(),
            })
            .collect()
    }

    /// A copy of the FD with a different left-hand side (used when removing
    /// extraneous attributes).
    pub fn with_lhs(&self, lhs: BTreeSet<String>) -> Fd {
        Fd {
            lhs,
            rhs: self.rhs.clone(),
        }
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lhs: Vec<&str> = self.lhs.iter().map(String::as_str).collect();
        let rhs: Vec<&str> = self.rhs.iter().map(String::as_str).collect();
        write!(f, "{} -> {}", lhs.join(", "), rhs.join(", "))
    }
}

/// Error from parsing an FD.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFdError {
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseFdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid functional dependency: {}", self.message)
    }
}

impl std::error::Error for ParseFdError {}

impl FromStr for Fd {
    type Err = ParseFdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let normalized = s.replace('→', "->");
        let mut parts = normalized.split("->");
        let lhs = parts.next().ok_or_else(|| ParseFdError {
            message: "missing `->`".into(),
        })?;
        let rhs = parts.next().ok_or_else(|| ParseFdError {
            message: "missing `->`".into(),
        })?;
        if parts.next().is_some() {
            return Err(ParseFdError {
                message: "more than one `->`".into(),
            });
        }
        let split = |side: &str| -> BTreeSet<String> {
            side.split(',')
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .map(str::to_string)
                .collect()
        };
        let rhs_set = split(rhs);
        if rhs_set.is_empty() {
            return Err(ParseFdError {
                message: "empty right-hand side".into(),
            });
        }
        Ok(Fd {
            lhs: split(lhs),
            rhs: rhs_set,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;

    #[test]
    fn parse_and_display() {
        let fd = Fd::parse("isbn, chapNum -> chapName").unwrap();
        assert_eq!(fd.lhs(), &attrs(["isbn", "chapNum"]));
        assert_eq!(fd.rhs(), &attrs(["chapName"]));
        assert_eq!(fd.to_string(), "chapNum, isbn -> chapName");
        assert_eq!(Fd::parse("a → b").unwrap(), Fd::parse("a -> b").unwrap());
    }

    #[test]
    fn parse_errors() {
        assert!(Fd::parse("no arrow").is_err());
        assert!(Fd::parse("a -> b -> c").is_err());
        assert!(Fd::parse("a -> ").is_err());
    }

    #[test]
    fn empty_lhs_is_allowed() {
        let fd = Fd::parse(" -> a").unwrap();
        assert!(fd.lhs().is_empty());
        assert!(!fd.is_trivial());
    }

    #[test]
    fn triviality_and_split() {
        assert!(Fd::parse("a, b -> a").unwrap().is_trivial());
        assert!(!Fd::parse("a -> b").unwrap().is_trivial());
        let fd = Fd::parse("a -> b, c").unwrap();
        assert!(!fd.is_singleton_rhs());
        let split = fd.split_rhs();
        assert_eq!(split.len(), 2);
        assert!(split.iter().all(Fd::is_singleton_rhs));
        assert_eq!(fd.attributes(), attrs(["a", "b", "c"]));
    }

    #[test]
    fn to_attr_and_with_lhs() {
        let fd = Fd::to_attr(["a", "b"], "c");
        assert_eq!(fd, Fd::parse("a, b -> c").unwrap());
        let reduced = fd.with_lhs(attrs(["a"]));
        assert_eq!(reduced, Fd::parse("a -> c").unwrap());
    }

    #[test]
    fn parse_collapses_duplicate_attributes() {
        // Sides are sets: repeating an attribute changes nothing.
        let fd = Fd::parse("a, a, b -> c, c").unwrap();
        assert_eq!(fd.lhs(), &attrs(["a", "b"]));
        assert_eq!(fd.rhs(), &attrs(["c"]));
        assert_eq!(fd, Fd::parse("a, b -> c").unwrap());
    }

    #[test]
    fn parse_unicode_arrow_matches_ascii() {
        for (unicode, ascii) in [
            ("a → b", "a -> b"),
            ("a, b → c", "a, b -> c"),
            (" → k", " -> k"),
        ] {
            assert_eq!(Fd::parse(unicode).unwrap(), Fd::parse(ascii).unwrap());
        }
        // A mixed arrow soup still has more than one separator.
        assert!(Fd::parse("a → b -> c").is_err());
    }

    #[test]
    fn parse_trims_surrounding_whitespace() {
        let fd = Fd::parse("  a ,\tb  ->\t c  ").unwrap();
        assert_eq!(fd.lhs(), &attrs(["a", "b"]));
        assert_eq!(fd.rhs(), &attrs(["c"]));
        // Stray empty items between commas are dropped, not kept as "".
        let fd = Fd::parse("a, , b -> c").unwrap();
        assert_eq!(fd.lhs(), &attrs(["a", "b"]));
    }

    #[test]
    fn parse_empty_sides() {
        // Empty LHS is meaningful (a constant field)…
        let constant = Fd::parse("-> a").unwrap();
        assert!(constant.lhs().is_empty());
        assert_eq!(constant.rhs(), &attrs(["a"]));
        // …but an empty RHS (or one that trims to empty) is rejected.
        assert!(Fd::parse("a ->").is_err());
        assert!(Fd::parse("a -> ,").is_err());
        assert!(Fd::parse("a -> , ,").is_err());
        let err = Fd::parse("a ->").unwrap_err();
        assert!(err.to_string().contains("empty right-hand side"));
    }

    #[test]
    fn display_round_trips_through_parse() {
        for text in [
            "a -> b",
            "a, b -> c",
            "chapNum, isbn -> chapName",
            "-> constant",
            "x -> x, y",
        ] {
            let fd = Fd::parse(text).unwrap();
            let reparsed = Fd::parse(&fd.to_string()).unwrap();
            assert_eq!(fd, reparsed, "round-trip failed for {text}");
        }
    }
}
