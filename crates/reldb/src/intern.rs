//! Interned attribute universe and the linear-time FD engine.
//!
//! The public FD toolbox of this crate ([`crate::closure`],
//! [`crate::implies`], [`crate::minimize`], …) speaks `BTreeSet<String>` —
//! convenient for the paper's examples, but every Armstrong derivation over
//! it allocates and compares strings.  This module is the engine underneath:
//!
//! * [`AttrUniverse`] — a string ↔ [`AttrId`] interning table, one per
//!   schema or universal relation;
//! * [`AttrSet`] — an attribute set as a bitset over `AttrId`s, with O(w)
//!   subset/union/difference for `w` machine words;
//! * [`IFd`] — a functional dependency over interned attribute sets;
//! * [`FdIndex`] — a prepared FD set answering attribute-closure and
//!   implication queries with the counter-based Beeri–Bernstein algorithm,
//!   **linear** in the total size of the FD set (the complexity the paper
//!   quotes for FD implication);
//! * [`minimize_interned`] / [`remove_trivial_interned`] /
//!   [`is_nonredundant_interned`] — the cover computations behind
//!   [`crate::minimize`] / [`crate::remove_trivial`] /
//!   [`crate::is_nonredundant`], running entirely on interned sets.
//!
//! The `String`-based functions of this crate are thin facades that intern
//! at the boundary and delegate here; callers with a hot loop (the
//! `xmlprop-core` algorithms, the benchmarks) intern once and stay interned.

use crate::Fd;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

/// An interned attribute: an index into an [`AttrUniverse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A string ↔ [`AttrId`] interning table.
///
/// Ids are dense (`0..len`), assigned in first-intern order, so they can
/// index plain vectors and back the [`AttrSet`] bitsets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttrUniverse {
    names: Vec<String>,
    ids: BTreeMap<String, AttrId>,
}

impl AttrUniverse {
    /// An empty universe.
    pub fn new() -> Self {
        AttrUniverse::default()
    }

    /// A universe pre-populated with the given names (duplicates welcome),
    /// interned in sorted order — so that id order equals `BTreeSet<String>`
    /// iteration order, keeping interned algorithms deterministic and
    /// bit-compatible with their string-based ancestors.
    pub fn from_names<'a>(names: impl IntoIterator<Item = &'a str>) -> Self {
        let sorted: BTreeSet<&str> = names.into_iter().collect();
        let mut u = AttrUniverse::new();
        for name in sorted {
            u.intern(name);
        }
        u
    }

    /// A sorted universe ([`AttrUniverse::from_names`]) over every attribute
    /// mentioned by `fds`.
    pub fn from_fds<'a>(fds: impl IntoIterator<Item = &'a Fd>) -> Self {
        Self::from_names(
            fds.into_iter()
                .flat_map(|fd| fd.lhs().iter().chain(fd.rhs().iter()).map(String::as_str)),
        )
    }

    /// A sorted universe over every attribute mentioned by `fds` plus the
    /// `extra` names (a relation's attribute set, typically).
    pub fn from_fds_and_attrs<'a>(
        fds: impl IntoIterator<Item = &'a Fd>,
        extra: impl IntoIterator<Item = &'a String>,
    ) -> Self {
        Self::from_names(
            fds.into_iter()
                .flat_map(|fd| fd.lhs().iter().chain(fd.rhs().iter()))
                .chain(extra)
                .map(String::as_str),
        )
    }

    /// The number of interned attributes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = AttrId(u32::try_from(self.names.len()).expect("attribute universe overflow"));
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), id);
        id
    }

    /// The id of `name`, if it has been interned.
    pub fn lookup(&self, name: &str) -> Option<AttrId> {
        self.ids.get(name).copied()
    }

    /// The name behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this universe.
    pub fn name(&self, id: AttrId) -> &str {
        &self.names[id.index()]
    }

    /// All interned names, in id order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Interns every attribute of a string set.
    pub fn intern_set<'a>(&mut self, attrs: impl IntoIterator<Item = &'a String>) -> AttrSet {
        let mut set = AttrSet::new();
        for a in attrs {
            set.insert(self.intern(a));
        }
        set
    }

    /// The [`AttrSet`] of an already-interned string set; attributes never
    /// interned are silently dropped (they can take part in no FD of this
    /// universe).
    pub fn lookup_set<'a>(&self, attrs: impl IntoIterator<Item = &'a String>) -> AttrSet {
        let mut set = AttrSet::new();
        for a in attrs {
            if let Some(id) = self.lookup(a) {
                set.insert(id);
            }
        }
        set
    }

    /// Interns a [`Fd`] into an [`IFd`].
    pub fn intern_fd(&mut self, fd: &Fd) -> IFd {
        IFd {
            lhs: self.intern_set(fd.lhs()),
            rhs: self.intern_set(fd.rhs()),
        }
    }

    /// Converts an [`AttrSet`] back to attribute names.
    pub fn extern_set(&self, set: &AttrSet) -> BTreeSet<String> {
        set.iter().map(|id| self.name(id).to_string()).collect()
    }

    /// A deterministic `(size, names)` ordering key for a set — the order
    /// the string-based algorithms historically used for tie-breaking
    /// (smallest set first, then lexicographic by attribute names).
    pub fn names_key(&self, set: &AttrSet) -> (usize, Vec<String>) {
        (
            set.len(),
            set.iter().map(|id| self.name(id).to_string()).collect(),
        )
    }

    /// Converts an [`IFd`] back to a string-based [`Fd`].
    pub fn extern_fd(&self, fd: &IFd) -> Fd {
        Fd::new(self.extern_set(&fd.lhs), self.extern_set(&fd.rhs))
    }
}

const BLOCK_BITS: usize = 64;

/// A set of [`AttrId`]s as a bitset.
///
/// Blocks are `u64` words; the invariant that the last block is non-zero
/// (enforced by every mutating operation) makes the derived equality, order
/// and hash agree with set equality.  All binary operations treat missing
/// high blocks as zeros, so sets over the same universe compose regardless
/// of which attributes each happens to contain.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrSet {
    blocks: Vec<u64>,
}

impl AttrSet {
    /// The empty set.
    pub fn new() -> Self {
        AttrSet::default()
    }

    /// The set `{0, …, n-1}` — every attribute of a universe of size `n`.
    pub fn all(n: usize) -> Self {
        let mut set = AttrSet::new();
        for i in 0..n {
            set.insert(AttrId(i as u32));
        }
        set
    }

    fn trim(&mut self) {
        while self.blocks.last() == Some(&0) {
            self.blocks.pop();
        }
    }

    /// Inserts an id; returns true if it was not already present.
    pub fn insert(&mut self, id: AttrId) -> bool {
        let (block, bit) = (id.index() / BLOCK_BITS, id.index() % BLOCK_BITS);
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << bit;
        let fresh = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        fresh
    }

    /// Removes an id; returns true if it was present.
    pub fn remove(&mut self, id: AttrId) -> bool {
        let (block, bit) = (id.index() / BLOCK_BITS, id.index() % BLOCK_BITS);
        if block >= self.blocks.len() {
            return false;
        }
        let mask = 1u64 << bit;
        let present = self.blocks[block] & mask != 0;
        self.blocks[block] &= !mask;
        self.trim();
        present
    }

    /// True if the id is in the set.
    pub fn contains(&self, id: AttrId) -> bool {
        let (block, bit) = (id.index() / BLOCK_BITS, id.index() % BLOCK_BITS);
        self.blocks.get(block).is_some_and(|b| b & (1 << bit) != 0)
    }

    /// The number of attributes in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// True if `self ⊆ other`.
    pub fn is_subset(&self, other: &AttrSet) -> bool {
        self.blocks
            .iter()
            .enumerate()
            .all(|(i, b)| b & !other.blocks.get(i).copied().unwrap_or(0) == 0)
    }

    /// True if `self ⊇ other`.
    pub fn is_superset(&self, other: &AttrSet) -> bool {
        other.is_subset(self)
    }

    /// Adds every attribute of `other` to `self`.
    pub fn union_with(&mut self, other: &AttrSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (i, b) in other.blocks.iter().enumerate() {
            self.blocks[i] |= b;
        }
    }

    /// Removes every attribute of `other` from `self`.
    pub fn difference_with(&mut self, other: &AttrSet) {
        for (i, b) in self.blocks.iter_mut().enumerate() {
            *b &= !other.blocks.get(i).copied().unwrap_or(0);
        }
        self.trim();
    }

    /// Keeps only the attributes also in `other`.
    pub fn intersect_with(&mut self, other: &AttrSet) {
        for (i, b) in self.blocks.iter_mut().enumerate() {
            *b &= other.blocks.get(i).copied().unwrap_or(0);
        }
        self.trim();
    }

    /// `self ∪ other` as a new set.
    pub fn union(&self, other: &AttrSet) -> AttrSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// `self \ other` as a new set.
    pub fn difference(&self, other: &AttrSet) -> AttrSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// `self ∩ other` as a new set.
    pub fn intersection(&self, other: &AttrSet) -> AttrSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Iterates the ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = AttrId> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let base = (i * BLOCK_BITS) as u32;
            BitIter { block }.map(move |bit| AttrId(base + bit))
        })
    }
}

impl FromIterator<AttrId> for AttrSet {
    fn from_iter<I: IntoIterator<Item = AttrId>>(iter: I) -> Self {
        let mut set = AttrSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

struct BitIter {
    block: u64,
}

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.block == 0 {
            return None;
        }
        let bit = self.block.trailing_zeros();
        self.block &= self.block - 1;
        Some(bit)
    }
}

/// A functional dependency over interned attribute sets.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IFd {
    /// The left-hand side `X`.
    pub lhs: AttrSet,
    /// The right-hand side `Y`.
    pub rhs: AttrSet,
}

impl IFd {
    /// Creates the FD `lhs → rhs`.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Self {
        IFd { lhs, rhs }
    }

    /// True if `Y ⊆ X`.
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(&self.lhs)
    }
}

impl fmt::Display for IFd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = |set: &AttrSet| {
            set.iter()
                .map(|id| format!("#{}", id.0))
                .collect::<Vec<_>>()
                .join(", ")
        };
        write!(f, "{} -> {}", side(&self.lhs), side(&self.rhs))
    }
}

/// A prepared FD set answering closure and implication queries in linear
/// time (Beeri–Bernstein).
///
/// Construction is linear in the total size of the FD set; each
/// [`FdIndex::closure`] / [`FdIndex::implies`] call is again linear — every
/// FD fires at most once, driven by per-FD counters of left-hand-side
/// attributes not yet known to be in the closure.
#[derive(Debug, Clone)]
pub struct FdIndex {
    fds: Vec<IFd>,
    /// `|lhs|` of each FD — the counter start values.
    lhs_sizes: Vec<u32>,
    /// For each attribute id: the FDs whose left-hand side contains it.
    by_attr: Vec<Vec<u32>>,
    /// FDs with an empty left-hand side (they fire unconditionally).
    empty_lhs: Vec<u32>,
}

impl FdIndex {
    /// Indexes `fds` over a universe of `n_attrs` attributes.
    ///
    /// Ids appearing in the FDs must be `< n_attrs`; seed attributes passed
    /// to [`FdIndex::closure`] later may exceed it (they then trigger no FD,
    /// which is the correct semantics for attributes no FD mentions).
    pub fn new(n_attrs: usize, fds: &[IFd]) -> Self {
        let mut by_attr = vec![Vec::new(); n_attrs];
        let mut lhs_sizes = Vec::with_capacity(fds.len());
        let mut empty_lhs = Vec::new();
        for (i, fd) in fds.iter().enumerate() {
            let size = fd.lhs.len();
            lhs_sizes.push(size as u32);
            if size == 0 {
                empty_lhs.push(i as u32);
            }
            for a in fd.lhs.iter() {
                by_attr[a.index()].push(i as u32);
            }
        }
        FdIndex {
            fds: fds.to_vec(),
            lhs_sizes,
            by_attr,
            empty_lhs,
        }
    }

    /// The indexed FDs.
    pub fn fds(&self) -> &[IFd] {
        &self.fds
    }

    /// The closure `X⁺` of `seed` under the indexed FDs.
    pub fn closure(&self, seed: &AttrSet) -> AttrSet {
        self.closure_filtered(seed, |_| true)
    }

    /// True if the indexed FDs imply `fd`.
    pub fn implies(&self, fd: &IFd) -> bool {
        fd.rhs.is_subset(&self.closure(&fd.lhs))
    }

    /// The closure of `seed` under the indexed FDs for which `alive` holds —
    /// the redundancy tests of cover minimization need closures that ignore
    /// one (or a shrinking subset of) the FDs without re-indexing.
    pub fn closure_filtered(&self, seed: &AttrSet, alive: impl Fn(usize) -> bool) -> AttrSet {
        let mut counters = self.lhs_sizes.clone();
        let mut result = seed.clone();
        let mut queue: Vec<AttrId> = seed.iter().collect();
        for &i in &self.empty_lhs {
            if alive(i as usize) {
                for b in self.fds[i as usize].rhs.iter() {
                    if result.insert(b) {
                        queue.push(b);
                    }
                }
            }
        }
        while let Some(a) = queue.pop() {
            let Some(fd_ids) = self.by_attr.get(a.index()) else {
                continue; // seed attribute outside the indexed universe
            };
            for &fi in fd_ids {
                let fi = fi as usize;
                counters[fi] -= 1;
                if counters[fi] == 0 && alive(fi) {
                    for b in self.fds[fi].rhs.iter() {
                        if result.insert(b) {
                            queue.push(b);
                        }
                    }
                }
            }
        }
        result
    }
}

/// Splits right-hand sides to single attributes and drops trivial FDs —
/// the interned counterpart of [`crate::remove_trivial`], preserving first
/// occurrence order.
pub fn remove_trivial_interned(fds: &[IFd]) -> Vec<IFd> {
    let mut out: Vec<IFd> = Vec::new();
    for fd in fds {
        for a in fd.rhs.iter() {
            if fd.lhs.contains(a) {
                continue;
            }
            let single = IFd {
                lhs: fd.lhs.clone(),
                rhs: std::iter::once(a).collect(),
            };
            if !out.contains(&single) {
                out.push(single);
            }
        }
    }
    out
}

/// The paper's `minimize` on interned FDs: removes extraneous left-hand-side
/// attributes, then redundant FDs.  `n_attrs` is the universe size.
///
/// Equivalent to the input under Armstrong's axioms and non-redundant; the
/// outer structure is quadratic (as Section 5 states) but every implication
/// test inside is a single linear-time closure.
pub fn minimize_interned(n_attrs: usize, fds: &[IFd]) -> Vec<IFd> {
    let mut work = remove_trivial_interned(fds);

    // Step 1: drop extraneous attributes.  The implication test runs against
    // the full current set (including the FD under reduction, whose original
    // left-hand side cannot help derive its own reduction).
    let mut index = FdIndex::new(n_attrs, &work);
    for i in 0..work.len() {
        loop {
            let mut reduced = None;
            for b in work[i].lhs.iter() {
                let mut smaller = work[i].lhs.clone();
                smaller.remove(b);
                if work[i].rhs.is_subset(&index.closure(&smaller)) {
                    reduced = Some(smaller);
                    break;
                }
            }
            match reduced {
                Some(smaller) => {
                    work[i].lhs = smaller;
                    index = FdIndex::new(n_attrs, &work);
                }
                None => break,
            }
        }
    }

    // Deduplicate (reductions may have collapsed FDs together).
    let mut deduped: Vec<IFd> = Vec::with_capacity(work.len());
    for fd in work {
        if !deduped.contains(&fd) {
            deduped.push(fd);
        }
    }

    // Step 2: drop redundant FDs.  One index over the deduplicated set and a
    // liveness mask replace the per-removal set rebuilds of the string-based
    // ancestor.
    let index = FdIndex::new(n_attrs, &deduped);
    let mut alive = vec![true; deduped.len()];
    for i in 0..deduped.len() {
        alive[i] = false;
        let closure = index.closure_filtered(&deduped[i].lhs, |j| alive[j]);
        if !deduped[i].rhs.is_subset(&closure) {
            alive[i] = true;
        }
    }
    deduped
        .into_iter()
        .zip(alive)
        .filter_map(|(fd, keep)| keep.then_some(fd))
        .collect()
}

/// True if no FD is implied by the others and no left-hand-side attribute is
/// extraneous — the interned counterpart of [`crate::is_nonredundant`].
pub fn is_nonredundant_interned(n_attrs: usize, fds: &[IFd]) -> bool {
    let index = FdIndex::new(n_attrs, fds);
    for (i, fd) in fds.iter().enumerate() {
        if fd
            .rhs
            .is_subset(&index.closure_filtered(&fd.lhs, |j| j != i))
        {
            return false;
        }
        for b in fd.lhs.iter() {
            let mut smaller = fd.lhs.clone();
            smaller.remove(b);
            if fd.rhs.is_subset(&index.closure(&smaller)) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> AttrSet {
        raw.iter().map(|&i| AttrId(i)).collect()
    }

    #[test]
    fn universe_interning_round_trips() {
        let mut u = AttrUniverse::new();
        let a = u.intern("a");
        let b = u.intern("b");
        assert_eq!(u.intern("a"), a);
        assert_eq!(u.len(), 2);
        assert_eq!(u.name(a), "a");
        assert_eq!(u.lookup("b"), Some(b));
        assert_eq!(u.lookup("zzz"), None);
        let fd = Fd::parse("a, b -> c").unwrap();
        let ifd = u.intern_fd(&fd);
        assert_eq!(u.len(), 3);
        assert_eq!(u.extern_fd(&ifd), fd);
    }

    #[test]
    fn universe_from_fds_is_sorted() {
        let fds = vec![Fd::parse("z -> m").unwrap(), Fd::parse("a -> z").unwrap()];
        let u = AttrUniverse::from_fds(&fds);
        assert_eq!(u.names(), &["a", "m", "z"]);

        let extra = ["q".to_string(), "a".to_string()];
        let u = AttrUniverse::from_fds_and_attrs(&fds, extra.iter());
        assert_eq!(u.names(), &["a", "m", "q", "z"]);

        let u = AttrUniverse::from_names(["b", "a", "b"]);
        assert_eq!(u.names(), &["a", "b"]);
    }

    #[test]
    fn names_key_orders_by_size_then_lexicographically() {
        let u = AttrUniverse::from_names(["a", "b", "c"]);
        let set =
            |names: &[&str]| -> AttrSet { names.iter().map(|n| u.lookup(n).unwrap()).collect() };
        let mut sets = vec![set(&["b"]), set(&["a", "c"]), set(&["a", "b"]), set(&["a"])];
        sets.sort_by_cached_key(|s| u.names_key(s));
        assert_eq!(
            sets,
            vec![set(&["a"]), set(&["b"]), set(&["a", "b"]), set(&["a", "c"])]
        );
    }

    #[test]
    fn attr_set_operations() {
        let mut s = AttrSet::new();
        assert!(s.insert(AttrId(3)));
        assert!(s.insert(AttrId(70)));
        assert!(!s.insert(AttrId(3)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(AttrId(70)));
        assert!(!s.contains(AttrId(0)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![AttrId(3), AttrId(70)]);

        // Removing the high bit trims blocks so equality stays structural.
        assert!(s.remove(AttrId(70)));
        assert!(!s.remove(AttrId(70)));
        assert_eq!(s, ids(&[3]));

        let a = ids(&[1, 2, 65]);
        let b = ids(&[2, 65, 100]);
        assert_eq!(a.union(&b), ids(&[1, 2, 65, 100]));
        assert_eq!(a.intersection(&b), ids(&[2, 65]));
        assert_eq!(a.difference(&b), ids(&[1]));
        assert!(ids(&[2, 65]).is_subset(&a));
        assert!(a.is_superset(&ids(&[2, 65])));
        assert!(!a.is_subset(&b));
        assert!(AttrSet::new().is_subset(&a));
        assert!(AttrSet::new().is_empty());
        assert_eq!(AttrSet::all(3), ids(&[0, 1, 2]));
    }

    #[test]
    fn linear_closure_matches_hand_computation() {
        // a -> b, b -> c, (c, d) -> e over ids 0..5.
        let fds = vec![
            IFd::new(ids(&[0]), ids(&[1])),
            IFd::new(ids(&[1]), ids(&[2])),
            IFd::new(ids(&[2, 3]), ids(&[4])),
        ];
        let index = FdIndex::new(5, &fds);
        assert_eq!(index.closure(&ids(&[0])), ids(&[0, 1, 2]));
        assert_eq!(index.closure(&ids(&[0, 3])), ids(&[0, 1, 2, 3, 4]));
        assert_eq!(index.closure(&ids(&[3])), ids(&[3]));
        assert_eq!(index.closure(&AttrSet::new()), AttrSet::new());
        assert!(index.implies(&IFd::new(ids(&[0]), ids(&[2]))));
        assert!(!index.implies(&IFd::new(ids(&[1]), ids(&[0]))));
    }

    #[test]
    fn empty_lhs_fds_fire_unconditionally() {
        let fds = vec![
            IFd::new(AttrSet::new(), ids(&[0])),
            IFd::new(ids(&[0]), ids(&[1])),
        ];
        let index = FdIndex::new(2, &fds);
        assert_eq!(index.closure(&AttrSet::new()), ids(&[0, 1]));
    }

    #[test]
    fn closure_accepts_seed_attributes_outside_the_index() {
        let fds = vec![IFd::new(ids(&[0]), ids(&[1]))];
        let index = FdIndex::new(2, &fds);
        // Id 9 was never indexed; it stays in the closure and breaks nothing.
        assert_eq!(index.closure(&ids(&[0, 9])), ids(&[0, 1, 9]));
    }

    #[test]
    fn minimize_interned_basic() {
        // a -> b, b -> c, a -> c (redundant), (a, b) -> c (extraneous + dup).
        let fds = vec![
            IFd::new(ids(&[0]), ids(&[1])),
            IFd::new(ids(&[1]), ids(&[2])),
            IFd::new(ids(&[0]), ids(&[2])),
            IFd::new(ids(&[0, 1]), ids(&[2])),
        ];
        let cover = minimize_interned(3, &fds);
        assert_eq!(cover.len(), 2);
        assert!(is_nonredundant_interned(3, &cover));
        let index = FdIndex::new(3, &cover);
        assert!(index.implies(&IFd::new(ids(&[0]), ids(&[2]))));
    }

    #[test]
    fn remove_trivial_interned_splits_and_drops() {
        let fds = vec![
            IFd::new(ids(&[0]), ids(&[0, 1])),
            IFd::new(ids(&[0, 1]), ids(&[1])),
        ];
        let out = remove_trivial_interned(&fds);
        assert_eq!(out, vec![IFd::new(ids(&[0]), ids(&[1]))]);
    }

    #[test]
    fn ifd_display_is_readable() {
        let fd = IFd::new(ids(&[0, 2]), ids(&[1]));
        assert_eq!(fd.to_string(), "#0, #2 -> #1");
        assert!(!fd.is_trivial());
        assert!(IFd::new(ids(&[1]), ids(&[1])).is_trivial());
    }
}
