//! Field values, including SQL-style nulls.

use std::fmt;
use std::sync::Arc;

/// A relational field value.
///
/// The paper's transformation produces string values (the `value()`
/// serialization of XML nodes) and `null` for missing branches; numbers are
/// kept as their textual form.  Comparisons involving [`Value::Null`] follow
/// SQL intuition: `null` never equals anything, including another `null`
/// (use [`Value::is_null`] to test for nulls explicitly).  `Eq`/`Ord` are
/// still implemented — treating nulls as a distinct smallest value — so that
/// tuples can live in ordered collections; use [`Value::sql_eq`] where the
/// paper's semantics of comparisons is required.
///
/// The split of duties is deliberate: *duplicate elimination* (SQL
/// `DISTINCT`, [`Relation::distinct`](crate::Relation::distinct)) is
/// structural and collapses nulls, exactly as SQL's `DISTINCT` does, while
/// *key and join comparisons* must go through [`Value::sql_eq`] (or
/// [`Tuple::sql_eq`](crate::Tuple::sql_eq)) so that a null-bearing tuple
/// never matches another tuple and never counts as a key violation.
///
/// Text is stored as a shared `Arc<str>`: the shredding semantics populates
/// the same node's `value()` into every tuple of a Cartesian product, so
/// value clones are refcount bumps rather than string copies (at 10⁵-row
/// instances the copies dominated shredding time).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Value {
    /// The null value (missing data).
    #[default]
    Null,
    /// A text value (cheaply clonable; see the type docs).
    Text(Arc<str>),
}

impl Value {
    /// Builds a text value.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into().into())
    }

    /// True if the value is null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The text content, if the value is not null.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Null => None,
            Value::Text(s) => Some(s.as_ref()),
        }
    }

    /// SQL-style equality: comparisons with null are not true.
    pub fn sql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s.into())
    }
}

impl From<Option<String>> for Value {
    fn from(s: Option<String>) -> Self {
        match s {
            Some(s) => Value::Text(s.into()),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handling() {
        assert!(Value::Null.is_null());
        assert!(!Value::text("x").is_null());
        assert_eq!(Value::Null.as_text(), None);
        assert_eq!(Value::text("x").as_text(), Some("x"));
    }

    #[test]
    fn sql_equality_ignores_nulls() {
        assert!(Value::text("a").sql_eq(&Value::text("a")));
        assert!(!Value::text("a").sql_eq(&Value::text("b")));
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Null.sql_eq(&Value::text("a")));
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Value::from("a"), Value::text("a"));
        assert_eq!(Value::from(Some("a".to_string())), Value::text("a"));
        assert_eq!(Value::from(None::<String>), Value::Null);
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::text("xyz").to_string(), "xyz");
    }
}
