//! Key implication `Σ ⊨ φ` and the attribute-existence analysis `exist()`.
//!
//! See the crate-level documentation for the rule system and its relation to
//! the paper's (unpublished) `implication` algorithm.  The procedure
//! examines each key of `Σ` independently, which matches the `O(|Σ|·|φ|)`
//! shape stated in Section 4 (with an extra polynomial factor for path
//! containment).
//!
//! The functions here are thin facades over the prepared [`KeyIndex`]: they
//! build the index for `Σ`, compile the probe, and query.  Callers that ask
//! many questions against the same key set (the propagation algorithms, the
//! benchmarks) should build one [`KeyIndex`] — or an
//! `xmlprop_core::PropagationEngine` — and query it directly; the original
//! string-walking implementations are retained below as `#[cfg(test)]`
//! oracles pinned by property tests.

use crate::{KeyIndex, KeySet, XmlKey};
use std::collections::BTreeMap;
use xmlprop_xmlpath::{PathCompiler, PathExpr};

/// True if every node reachable at position `position` (a path from the
/// document root) is guaranteed, by some key of `Σ`, to carry exactly one
/// `@attr` attribute.
///
/// This is the `exist()` sub-procedure of Algorithm `propagation` (Fig. 5),
/// generalized to a single attribute: a key `(Q, (Q', S))` with `@attr ∈ S`
/// forces, by condition (1) of Definition 2.1, every node of `[[Q/Q']]` to
/// have a unique `@attr`; if `position ⊑ Q/Q'` the guarantee transfers.
///
/// `attr` may be given with or without the leading `@` (keys store their
/// attributes `@`-prefixed — see [`XmlKey::key_attrs`]).
pub fn attribute_assured(sigma: &KeySet, position: &PathExpr, attr: &str) -> bool {
    let index = KeyIndex::new(sigma);
    let Some(attr) = index.attr_id(attr) else {
        return false; // no key of Σ mentions the attribute
    };
    let mut scratch = BTreeMap::new();
    let position = index.universe().compile_scratch(position, &mut scratch);
    index.attribute_assured(&position, attr)
}

/// The paper's `exist(P, β)` (Fig. 5): true iff for every attribute in
/// `attrs` and every node `n ∈ [[P]]`, `n/@attr` exists (uniquely).
pub fn attributes_assured<'a>(
    sigma: &KeySet,
    position: &PathExpr,
    attrs: impl IntoIterator<Item = &'a str>,
) -> bool {
    let index = KeyIndex::new(sigma);
    let mut scratch = BTreeMap::new();
    let position = index.universe().compile_scratch(position, &mut scratch);
    attrs.into_iter().all(|a| match index.attr_id(a) {
        Some(id) => index.attribute_assured(&position, id),
        None => false,
    })
}

/// Key implication `Σ ⊨ φ`.
///
/// Sound rule system (see crate docs):
///
/// 1. **epsilon** — `(Q, (ε, S))` holds when every attribute of `S` is
///    assured at position `Q` (in particular always when `S = ∅`: a subtree
///    has a unique root);
/// 2. **single-key derivation** — `(Q, (Q', S))` follows from a key
///    `(Qk, (A/B, Sk)) ∈ Σ` with `Sk ⊆ S`, `Q ⊑ Qk/A`, `Q' ⊑ B`
///    (target-to-context plus context/target containment), provided every
///    extra attribute of `S \ Sk` is assured at position `Q/Q'`.
pub fn implies(sigma: &KeySet, phi: &XmlKey) -> bool {
    let index = KeyIndex::new(sigma);
    let phi = index.prepare_ref(phi);
    index.implies(&phi)
}

/// Convenience used by the propagation algorithms: true if, relative to
/// every node reached by `context_position` (a path from the root), there is
/// at most one node reached by `target_path` — i.e.
/// `Σ ⊨ (context_position, (target_path, {}))`.
pub fn node_unique_under(
    sigma: &KeySet,
    context_position: &PathExpr,
    target_path: &PathExpr,
) -> bool {
    let index = KeyIndex::new(sigma);
    let mut scratch = BTreeMap::new();
    let context = index
        .universe()
        .compile_scratch(context_position, &mut scratch);
    let target = index.universe().compile_scratch(target_path, &mut scratch);
    let absolute = context.concat(&target);
    index.node_unique_under(&context, &target, &absolute)
}

/// The pre-index implementations, kept verbatim as reference oracles for
/// the property tests that pin the prepared [`KeyIndex`] to them.
#[cfg(test)]
pub(crate) mod oracle {
    use super::*;

    /// `attribute_assured` as originally written: rescan `Σ`, allocating the
    /// `@`-prefixed probe name.
    pub fn attribute_assured(sigma: &KeySet, position: &PathExpr, attr: &str) -> bool {
        let attr = if attr.starts_with('@') {
            attr.to_string()
        } else {
            format!("@{attr}")
        };
        sigma.iter().any(|k| {
            k.key_attrs().iter().any(|a| a == &attr) && position.contained_in(&k.absolute_target())
        })
    }

    /// `implies` as originally written: per-call target splits and string
    /// containment.
    pub fn implies(sigma: &KeySet, phi: &XmlKey) -> bool {
        if phi.target().is_epsilon() {
            return phi
                .key_attrs()
                .iter()
                .all(|a| attribute_assured(sigma, phi.context(), a));
        }

        let phi_position = phi.absolute_target();

        if let [xmlprop_xmlpath::Atom::Label(label)] = phi.target().atoms() {
            if label.starts_with('@')
                && attribute_assured(sigma, phi.context(), label)
                && phi
                    .key_attrs()
                    .iter()
                    .all(|a| attribute_assured(sigma, &phi_position, a))
            {
                return true;
            }
        }
        for k in sigma.iter() {
            if !k.key_attrs().iter().all(|a| phi.key_attrs().contains(a)) {
                continue;
            }
            let extras_ok = phi
                .key_attrs()
                .iter()
                .filter(|a| !k.key_attrs().contains(a))
                .all(|a| attribute_assured(sigma, &phi_position, a));
            if !extras_ok {
                continue;
            }
            for (a, b) in k.target().splits() {
                let derived_context = k.context().concat(&a);
                if phi.context().contained_in(&derived_context) && phi.target().contained_in(&b) {
                    return true;
                }
            }
        }
        false
    }

    /// `node_unique_under` as originally written.
    pub fn node_unique_under(
        sigma: &KeySet,
        context_position: &PathExpr,
        target_path: &PathExpr,
    ) -> bool {
        implies(
            sigma,
            &XmlKey::new(
                context_position.clone(),
                target_path.clone(),
                Vec::<String>::new(),
            ),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example_2_1_keys;
    use crate::satisfy::satisfies;
    use xmlprop_xmltree::sample::fig1;

    fn p(s: &str) -> PathExpr {
        s.parse().unwrap()
    }

    fn key(s: &str) -> XmlKey {
        XmlKey::parse(s).unwrap()
    }

    #[test]
    fn epsilon_rule() {
        let sigma = example_2_1_keys();
        assert!(implies(&sigma, &key("(ε, (ε, {}))")));
        assert!(implies(&sigma, &key("(//anything/at/all, (ε, {}))")));
        // With attributes the context position must be covered by a key that
        // asserts the attribute: //book has @isbn by K1, but the root has no
        // assured @isbn.
        assert!(implies(&sigma, &key("(//book, (ε, {@isbn}))")));
        assert!(!implies(&sigma, &key("(ε, (ε, {@isbn}))")));
    }

    #[test]
    fn keys_imply_themselves() {
        let sigma = example_2_1_keys();
        for k in sigma.iter() {
            assert!(implies(&sigma, k), "{k} should imply itself");
        }
    }

    #[test]
    fn target_to_context_example_4_2() {
        let sigma = example_2_1_keys();
        // From K7 = (//book, (author/contact, {})) derive
        // (//book/author, (contact, {})).
        assert!(implies(&sigma, &key("(//book/author, (contact, {}))")));
        // From K1 = (ε, (//book, {@isbn})) derive (//, (book, {@isbn}))? No:
        // //book splits as (//)(book), giving context ε/(//) = // — check it.
        assert!(implies(&sigma, &key("(//, (book, {@isbn}))")));
    }

    #[test]
    fn context_containment() {
        let sigma = example_2_1_keys();
        // K2 holds within any book context; a more specific context is fine.
        assert!(implies(&sigma, &key("(//book, (chapter, {@number}))")));
        // Uniqueness checks used by Algorithm propagation (empty key sets).
        assert!(implies(&sigma, &key("(//book, (title, {}))")));
        assert!(implies(&sigma, &key("(//book, (author/contact, {}))")));
        // Each chapter has at most one name (K4), even if we start from the
        // more specific //book/chapter context written differently.
        assert!(implies(&sigma, &key("(//book/chapter, (name, {}))")));
    }

    #[test]
    fn negative_cases_from_example_4_2() {
        let sigma = example_2_1_keys();
        // A chapter is NOT globally identified by its number.
        assert!(!implies(&sigma, &key("(ε, (//book/chapter, {@number}))")));
        // A section is NOT globally identified by its number either.
        assert!(!implies(
            &sigma,
            &key("(ε, (//book/chapter/section, {@number}))")
        ));
        // A book does not have a unique chapter name at the book level.
        assert!(!implies(&sigma, &key("(//book, (chapter/name, {}))")));
        // Books are not keyed by title.
        assert!(!implies(&sigma, &key("(ε, (//book, {@title}))")));
    }

    #[test]
    fn superkey_requires_assured_extras() {
        let sigma = example_2_1_keys();
        // (ε, (//book, {@isbn, @number})) is NOT implied: although @isbn is a
        // key, nothing assures that every book has a @number attribute, so
        // condition (1) of the larger key can fail.
        assert!(!implies(&sigma, &key("(ε, (//book, {@isbn, @number}))")));
        // Within a book, chapters keyed by number stay keyed if we add an
        // attribute that *is* assured on chapters... @number is the only
        // assured chapter attribute, so extend Σ with an extra key to check
        // the positive case.
        let mut sigma2 = sigma.clone();
        sigma2.add(key("(//book/chapter, (ε, {@pages}))"));
        assert!(implies(
            &sigma2,
            &key("(//book, (chapter, {@number, @pages}))")
        ));
        assert!(!implies(
            &sigma,
            &key("(//book, (chapter, {@number, @pages}))")
        ));
    }

    #[test]
    fn exist_checks_from_the_paper() {
        let sigma = example_2_1_keys();
        // Example 4.2: every //book node must have an @isbn (from K1).
        assert!(attribute_assured(&sigma, &p("//book"), "@isbn"));
        assert!(attributes_assured(&sigma, &p("//book"), ["isbn"]));
        // Chapter numbers are assured on //book/chapter (from K2).
        assert!(attribute_assured(&sigma, &p("//book/chapter"), "@number"));
        // Section numbers on //book/chapter/section (from K6).
        assert!(attribute_assured(
            &sigma,
            &p("//book/chapter/section"),
            "@number"
        ));
        // Nothing assures @isbn on arbitrary nodes or @number on books.
        assert!(!attribute_assured(&sigma, &p("//"), "@isbn"));
        assert!(!attribute_assured(&sigma, &p("//book"), "@number"));
    }

    #[test]
    fn node_unique_under_helper() {
        let sigma = example_2_1_keys();
        assert!(node_unique_under(&sigma, &p("//book"), &p("title")));
        assert!(node_unique_under(
            &sigma,
            &p("//book"),
            &p("author/contact")
        ));
        assert!(!node_unique_under(&sigma, &p("//book"), &p("chapter")));
        assert!(!node_unique_under(&sigma, &p("ε"), &p("//book")));
        assert!(node_unique_under(&sigma, &p("//book/chapter"), &p("name")));
    }

    #[test]
    fn attribute_uniqueness_rule() {
        let sigma = example_2_1_keys();
        // K1 forces every //book node to carry exactly one @isbn, so a book
        // has at most one @isbn child node.
        assert!(implies(&sigma, &key("(//book, (@isbn, {}))")));
        assert!(implies(&sigma, &key("(//book/chapter, (@number, {}))")));
        // No key talks about @lang, and @number is not asserted on books.
        assert!(!implies(&sigma, &key("(//book, (@lang, {}))")));
        assert!(!implies(&sigma, &key("(//book, (@number, {}))")));
        // Longer targets ending in an attribute are not uniqueness claims:
        // a document may contain many book/@isbn nodes.
        assert!(!implies(&sigma, &key("(ε, (//book/@isbn, {}))")));
    }

    #[test]
    fn empty_sigma_only_yields_epsilon_consequences() {
        let sigma = KeySet::new();
        assert!(implies(&sigma, &key("(a/b, (ε, {}))")));
        assert!(!implies(&sigma, &key("(a, (b, {}))")));
        assert!(!implies(&sigma, &key("(ε, (//x, {@id}))")));
    }

    #[test]
    fn soundness_spot_check_on_fig1() {
        // Every key our procedure derives from Σ (over a small probe
        // universe) must actually hold on the Fig. 1 document, which
        // satisfies Σ.
        let sigma = example_2_1_keys();
        let doc = fig1();
        let contexts = [
            "ε",
            "//book",
            "//book/chapter",
            "//book/chapter/section",
            "//",
        ];
        let targets = [
            "ε",
            "title",
            "name",
            "chapter",
            "section",
            "author/contact",
            "//book",
        ];
        let attr_sets: [&[&str]; 4] = [&[], &["@isbn"], &["@number"], &["@isbn", "@number"]];
        for c in contexts {
            for t in targets {
                for attrs in attr_sets {
                    let phi = XmlKey::new(p(c), p(t), attrs.iter().copied());
                    if implies(&sigma, &phi) {
                        assert!(
                            satisfies(&doc, &phi),
                            "implication claims {phi} but Fig. 1 violates it"
                        );
                    }
                }
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use xmlprop_xmlpath::Atom;

        /// Random path expressions over a small label alphabet.
        fn expr_strategy() -> impl Strategy<Value = PathExpr> {
            prop::collection::vec(
                prop_oneof![
                    Just(Atom::Label("a".to_string())),
                    Just(Atom::Label("b".to_string())),
                    Just(Atom::Label("c".to_string())),
                    Just(Atom::AnyPath),
                ],
                0..4,
            )
            .prop_map(PathExpr::from_atoms)
        }

        /// Random attribute sets over `{@u, @v, @w}`.
        fn attrs_strategy() -> impl Strategy<Value = Vec<String>> {
            prop::collection::btree_set(
                prop_oneof![
                    Just("@u".to_string()),
                    Just("@v".to_string()),
                    Just("@w".to_string())
                ],
                0..3,
            )
            .prop_map(|s| s.into_iter().collect())
        }

        /// Random XML keys built from the strategies above.
        fn key_strategy() -> impl Strategy<Value = XmlKey> {
            (expr_strategy(), expr_strategy(), attrs_strategy())
                .prop_map(|(c, t, a)| XmlKey::new(c, t, a))
        }

        proptest! {
            /// The prepared index agrees with the string-walking oracle on
            /// random key sets and probe keys — including probes whose
            /// labels and attributes never occur in Σ.
            #[test]
            fn implies_matches_oracle(
                keys in prop::collection::vec(key_strategy(), 0..6),
                phi in key_strategy(),
            ) {
                let sigma = KeySet::from_keys(keys);
                prop_assert_eq!(
                    implies(&sigma, &phi),
                    oracle::implies(&sigma, &phi),
                    "disagreement on {}", phi
                );
            }

            /// Prepared `exist()` agrees with the oracle, with and without
            /// the `@` prefix on the probe attribute.
            #[test]
            fn attribute_assured_matches_oracle(
                keys in prop::collection::vec(key_strategy(), 0..6),
                position in expr_strategy(),
                attr in prop_oneof![
                    Just("@u"), Just("@v"), Just("@w"), Just("u"), Just("v"), Just("@zz")
                ],
            ) {
                let sigma = KeySet::from_keys(keys);
                prop_assert_eq!(
                    attribute_assured(&sigma, &position, attr),
                    oracle::attribute_assured(&sigma, &position, attr),
                    "disagreement on {} at {}", attr, position
                );
            }

            /// Prepared uniqueness agrees with the oracle.
            #[test]
            fn node_unique_under_matches_oracle(
                keys in prop::collection::vec(key_strategy(), 0..6),
                context in expr_strategy(),
                target in expr_strategy(),
            ) {
                let sigma = KeySet::from_keys(keys);
                prop_assert_eq!(
                    node_unique_under(&sigma, &context, &target),
                    oracle::node_unique_under(&sigma, &context, &target),
                    "disagreement on ({}, ({}, {{}}))", context, target
                );
            }
        }
    }
}
