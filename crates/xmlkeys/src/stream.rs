//! Streaming key validation: Definition 2.1 checked as elements close.
//!
//! The prepared validator ([`KeyIndex::violations`]) evaluates each key's
//! context and target paths over a fully built
//! [`DocIndex`](xmlprop_xmltree::DocIndex).  [`StreamKeyChecker`] answers
//! the same question from a flat event stream without materializing the
//! document: per key it simulates the compiled context expression down the
//! open path ([`xmlprop_xmlpath::StreamMatcher`]), keeps one record per
//! *open* context node — the paper's observation that a key constraint is
//! decidable at context close — and inside every open context simulates the
//! target expression and maintains the hashed key-tuple set of condition
//! (2).  Retained state is `O(depth + open contexts + reported
//! violations)` plus the tuple sets, never `O(nodes)` of tree structure.
//!
//! The checker reproduces the prepared validator **bit for bit**,
//! including node identities and report order:
//!
//! * streamed nodes are numbered in document pre-order, which equals the
//!   arena [`NodeId`] order for any parser-built document;
//! * element targets are finalized when their attribute section ends, so
//!   complete targets enter the tuple set in document order (first/second
//!   attribution of [`Violation::DuplicateKeyValue`] matches);
//! * per-context violations are stably sorted by target before a context
//!   report is emitted, and contexts report in document order.

use crate::index::KeyIndex;
use crate::satisfy::Violation;
use std::collections::HashMap;
use xmlprop_xmlpath::{LabelId, MatchState, StreamMatcher};
use xmlprop_xmltree::NodeId;

/// Per-key compiled machinery plus live matching state.
#[derive(Debug)]
struct KeyState {
    context_matcher: StreamMatcher,
    target_matcher: StreamMatcher,
    /// Context-expression NFA state per open element (root-path).
    context_states: Vec<MatchState>,
    /// Open context records, innermost last (they nest along the path).
    open: Vec<OpenContext>,
    /// Next context sequence number (contexts are created in pre-order).
    next_seq: u32,
    /// Closed contexts that produced violations, keyed by creation order.
    done: Vec<(u32, Vec<Violation>)>,
}

/// One open context node of one key.
#[derive(Debug)]
struct OpenContext {
    node: NodeId,
    seq: u32,
    /// Element-stack depth at which this context was opened (attribute and
    /// text contexts close within their event and never carry a depth).
    depth: usize,
    /// Target-expression NFA state per open element at or below the
    /// context; `target_states[0]` is the start state at the context node.
    target_states: Vec<MatchState>,
    /// Condition (2): complete key tuple → first target carrying it.
    seen: HashMap<Vec<String>, NodeId>,
    /// Violations under this context, tagged with the target node for the
    /// final stable sort into document order.
    violations: Vec<(NodeId, Violation)>,
}

/// Attribute tallies of one element that is a target of ≥ 1 open contexts
/// of one key: per key attribute (in key order) the number of matching
/// attribute children seen and the first value.
#[derive(Debug)]
struct PendingTarget {
    key: usize,
    node: NodeId,
    /// Stack indices into the key's `open` contexts this node is a target
    /// of (stable until the element closes — no context below it can pop
    /// while its attribute section is still open).
    contexts: Vec<usize>,
    counts: Vec<u32>,
    values: Vec<String>,
}

/// Streaming validator for a prepared [`KeyIndex`] over one document's
/// event stream.
///
/// Feed events in document order ([`start_element`](Self::start_element),
/// [`attribute`](Self::attribute), [`text`](Self::text),
/// [`end_element`](Self::end_element) — attribute events must directly
/// follow their element's start, as the XML grammar guarantees), then call
/// [`finish`](Self::finish) for the per-key violation lists.  Labels are
/// the read-only resolutions a
/// [`StreamParser`](xmlprop_xmltree::StreamParser) over
/// [`KeyIndex::universe`] produces; `None` (a label no key mentions) can
/// only traverse `//`.
#[derive(Debug)]
pub struct StreamKeyChecker<'a> {
    index: &'a KeyIndex,
    keys: Vec<KeyState>,
    /// The interned id of the text-node label `"S"`, if any key mentions it.
    text_label: Option<LabelId>,
    /// Per open element: the pending targets awaiting their attribute
    /// section end (at most one per key).
    element_stack: Vec<Vec<PendingTarget>>,
    /// Document pre-order counter: the next node's id.
    next_node: u32,
    /// High-water mark of simultaneously open context records.
    peak_open_contexts: usize,
}

/// The result of streaming one document through a [`StreamKeyChecker`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamCheckReport {
    /// Violations per key, in Σ order — each entry matches
    /// [`KeyIndex::violations_of`] for that key.
    pub per_key: Vec<Vec<Violation>>,
    /// Total number of nodes streamed (elements, attributes, text).
    pub nodes: usize,
    /// High-water mark of simultaneously open context records across all
    /// keys — the validator's contribution to `stream_peak_open_bindings`.
    pub peak_open_contexts: usize,
}

impl StreamCheckReport {
    /// All violations concatenated in Σ order, like
    /// [`KeyIndex::violations`].
    pub fn all_violations(&self) -> Vec<Violation> {
        self.per_key.iter().flatten().cloned().collect()
    }
}

impl<'a> StreamKeyChecker<'a> {
    /// Prepares a checker for one document against `index`.
    pub fn new(index: &'a KeyIndex) -> Self {
        let keys = index
            .keys()
            .iter()
            .map(|k| KeyState {
                context_matcher: StreamMatcher::new(k.context()),
                target_matcher: StreamMatcher::new(k.target()),
                context_states: Vec::new(),
                open: Vec::new(),
                next_seq: 0,
                done: Vec::new(),
            })
            .collect();
        StreamKeyChecker {
            index,
            keys,
            text_label: index.universe().lookup("S"),
            element_stack: Vec::new(),
            next_node: 0,
            peak_open_contexts: 0,
        }
    }

    /// An element opened.
    pub fn start_element(&mut self, label: Option<LabelId>) {
        self.finalize_pending();
        let node = self.take_node();
        let depth = self.element_stack.len();
        self.element_stack.push(Vec::new());
        let mut open_total = 0;
        for ki in 0..self.keys.len() {
            let key = &mut self.keys[ki];
            // Step target matching of every context already open; collect
            // hits for the pending-target record (outer contexts first).
            let mut hit_contexts: Vec<usize> = Vec::new();
            for (ci, ctx) in key.open.iter_mut().enumerate() {
                let top = *ctx.target_states.last().expect("context has a state");
                let stepped = key.target_matcher.step(top, label);
                ctx.target_states.push(stepped);
                if key.target_matcher.accepts(stepped) {
                    hit_contexts.push(ci);
                }
            }
            // Step the context expression: the root is reached by the empty
            // word, children extend their parent's word by one label.
            let state = match key.context_states.last() {
                None => key.context_matcher.start(),
                Some(&parent) => key.context_matcher.step(parent, label),
            };
            key.context_states.push(state);
            if key.context_matcher.accepts(state) {
                let start = key.target_matcher.start();
                let self_target = key.target_matcher.accepts(start);
                let ci = key.open.len();
                key.open.push(OpenContext {
                    node,
                    seq: key.next_seq,
                    depth,
                    target_states: vec![start],
                    seen: HashMap::new(),
                    violations: Vec::new(),
                });
                key.next_seq += 1;
                if self_target {
                    hit_contexts.push(ci);
                }
            }
            if !hit_contexts.is_empty() {
                let attrs = self.index.keys()[ki].val_attrs().len();
                if attrs == 0 {
                    // No attributes to await: the tuple is complete now, and
                    // finalizing immediately keeps condition (2) insertion
                    // in document order.
                    Self::finalize_target(
                        &[],
                        &mut self.keys[ki],
                        node,
                        &hit_contexts,
                        &[],
                        &[],
                        self.index,
                    );
                } else {
                    self.element_stack
                        .last_mut()
                        .expect("just pushed")
                        .push(PendingTarget {
                            key: ki,
                            node,
                            contexts: hit_contexts,
                            counts: vec![0; attrs],
                            values: vec![String::new(); attrs],
                        });
                }
            }
            open_total += self.keys[ki].open.len();
        }
        self.peak_open_contexts = self.peak_open_contexts.max(open_total);
    }

    /// An attribute of the innermost open element.
    pub fn attribute(&mut self, label: Option<LabelId>, value: &str) {
        // Feed the tallies of the owner element's pending targets.
        if let Some(frame) = self.element_stack.last_mut() {
            for pending in frame.iter_mut() {
                let val_attrs = self.index.keys()[pending.key].val_attrs();
                for (i, &attr) in val_attrs.iter().enumerate() {
                    if label == Some(attr) {
                        pending.counts[i] += 1;
                        if pending.counts[i] == 1 {
                            pending.values[i] = value.to_string();
                        }
                    }
                }
            }
        }
        // The attribute node is itself addressable by paths.
        self.leaf_node(label);
    }

    /// A text child of the innermost open element.
    pub fn text(&mut self) {
        self.finalize_pending();
        let label = self.text_label;
        self.leaf_node(label);
    }

    /// The innermost open element closed.
    pub fn end_element(&mut self) {
        self.finalize_pending();
        self.element_stack.pop().expect("balanced events");
        let depth = self.element_stack.len();
        for key in &mut self.keys {
            // A context opened at this element closes now (at most one per
            // key: contexts lie on the root-path, one node per depth).
            if key.open.last().is_some_and(|c| c.depth == depth) {
                let ctx = key.open.pop().expect("checked above");
                Self::close_context(key, ctx);
            }
            for ctx in &mut key.open {
                ctx.target_states.pop();
            }
            key.context_states.pop();
        }
    }

    /// Consumes the checker, returning the per-key violation lists in the
    /// exact order of the prepared DOM validator.
    pub fn finish(mut self) -> StreamCheckReport {
        let nodes = self.next_node as usize;
        let per_key = self
            .keys
            .iter_mut()
            .map(|key| {
                debug_assert!(key.open.is_empty() && key.context_states.is_empty());
                key.done.sort_by_key(|(seq, _)| *seq);
                key.done
                    .drain(..)
                    .flat_map(|(_, violations)| violations)
                    .collect()
            })
            .collect();
        StreamCheckReport {
            per_key,
            nodes,
            peak_open_contexts: self.peak_open_contexts,
        }
    }

    /// Allocates the next document-pre-order node id.
    fn take_node(&mut self) -> NodeId {
        let node = NodeId::from_index(self.next_node as usize);
        self.next_node += 1;
        node
    }

    /// Handles an attribute or text node: step matching through it, report
    /// it as a (necessarily attribute-less) target or context, and unwind —
    /// leaves never stay on any stack.
    fn leaf_node(&mut self, label: Option<LabelId>) {
        let node = self.take_node();
        for ki in 0..self.keys.len() {
            let key = &mut self.keys[ki];
            let mut hit_contexts: Vec<usize> = Vec::new();
            for (ci, ctx) in key.open.iter().enumerate() {
                let top = *ctx.target_states.last().expect("context has a state");
                if key
                    .target_matcher
                    .accepts(key.target_matcher.step(top, label))
                {
                    hit_contexts.push(ci);
                }
            }
            // The leaf may itself be a context; its only possible target is
            // itself (ε), and it closes immediately.
            let leaf_context = match key.context_states.last() {
                None => None,
                Some(&parent) => {
                    let state = key.context_matcher.step(parent, label);
                    key.context_matcher.accepts(state).then(|| {
                        let seq = key.next_seq;
                        key.next_seq += 1;
                        let start = key.target_matcher.start();
                        let self_target = key.target_matcher.accepts(start);
                        let ci = key.open.len();
                        key.open.push(OpenContext {
                            node,
                            seq,
                            depth: usize::MAX,
                            target_states: vec![start],
                            seen: HashMap::new(),
                            violations: Vec::new(),
                        });
                        if self_target {
                            hit_contexts.push(ci);
                        }
                    })
                }
            };
            if !hit_contexts.is_empty() {
                let val_attrs = self.index.keys()[ki].val_attrs().to_vec();
                Self::finalize_target(
                    &val_attrs,
                    &mut self.keys[ki],
                    node,
                    &hit_contexts,
                    &[],
                    &[],
                    self.index,
                );
            }
            let key = &mut self.keys[ki];
            if leaf_context.is_some() {
                let ctx = key.open.pop().expect("pushed above");
                Self::close_context(key, ctx);
            }
        }
    }

    /// Finalizes the innermost element's pending targets (its attribute
    /// section just ended).
    fn finalize_pending(&mut self) {
        let Some(frame) = self.element_stack.last_mut() else {
            return;
        };
        if frame.is_empty() {
            return;
        }
        let pendings = std::mem::take(frame);
        for pending in pendings {
            let val_attrs = self.index.keys()[pending.key].val_attrs().to_vec();
            Self::finalize_target(
                &val_attrs,
                &mut self.keys[pending.key],
                pending.node,
                &pending.contexts,
                &pending.counts,
                &pending.values,
                self.index,
            );
        }
    }

    /// Checks conditions (1) and (2) of Definition 2.1 for one target node
    /// against every open context it matched, mirroring the DOM loop of
    /// [`KeyIndex::violations`] attribute for attribute.  `counts` and
    /// `values` are empty for attribute-less finalization (leaves, or keys
    /// with no attributes).
    #[allow(clippy::too_many_arguments)]
    fn finalize_target(
        val_attrs: &[LabelId],
        key: &mut KeyState,
        node: NodeId,
        contexts: &[usize],
        counts: &[u32],
        values: &[String],
        index: &KeyIndex,
    ) {
        for &ci in contexts {
            let ctx = &mut key.open[ci];
            let mut complete = true;
            for (i, &attr) in val_attrs.iter().enumerate() {
                match counts.get(i).copied().unwrap_or(0) {
                    1 => {}
                    0 => {
                        complete = false;
                        ctx.violations.push((
                            node,
                            Violation::MissingAttribute {
                                context: ctx.node,
                                target: node,
                                attribute: index.universe().name(attr).to_string(),
                            },
                        ));
                    }
                    _ => {
                        complete = false;
                        ctx.violations.push((
                            node,
                            Violation::DuplicateAttribute {
                                context: ctx.node,
                                target: node,
                                attribute: index.universe().name(attr).to_string(),
                            },
                        ));
                    }
                }
            }
            if !complete {
                continue;
            }
            let tuple: Vec<String> = values.to_vec();
            match ctx.seen.get(&tuple) {
                Some(&first) => {
                    ctx.violations.push((
                        node,
                        Violation::DuplicateKeyValue {
                            context: ctx.node,
                            first,
                            second: node,
                            values: tuple,
                        },
                    ));
                }
                None => {
                    ctx.seen.insert(tuple, node);
                }
            }
        }
    }

    /// Closes one context: orders its violations by target (the DOM
    /// validator reports a context's targets in document order) and records
    /// them under the context's creation order.
    fn close_context(key: &mut KeyState, mut ctx: OpenContext) {
        if ctx.violations.is_empty() {
            return;
        }
        ctx.violations.sort_by_key(|(target, _)| *target);
        key.done.push((
            ctx.seq,
            ctx.violations.into_iter().map(|(_, v)| v).collect(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KeySet, XmlKey};
    use xmlprop_xmltree::{Document, StreamEvent, StreamParser};

    /// Streams `text` through a checker against `index`.
    fn stream_check(index: &KeyIndex, text: &str) -> StreamCheckReport {
        let mut checker = StreamKeyChecker::new(index);
        let mut parser = StreamParser::with_universe(text, index.universe());
        while let Some(event) = parser.next_event().unwrap() {
            match event {
                StreamEvent::StartElement { label, .. } => checker.start_element(label),
                StreamEvent::Attribute { label, value, .. } => checker.attribute(label, &value),
                StreamEvent::Text { .. } => checker.text(),
                StreamEvent::EndElement => checker.end_element(),
            }
        }
        checker.finish()
    }

    /// Asserts the streamed report matches the prepared DOM validator
    /// per key and in aggregate.
    fn assert_matches_dom(sigma: &KeySet, text: &str) {
        let doc = Document::parse_str(text).unwrap();
        assert!(doc.ids_in_document_order());
        let mut index = KeyIndex::new(sigma);
        let dix = index.index_document(&doc);
        let report = stream_check(&index, text);
        assert_eq!(report.nodes, doc.len(), "node count for {text}");
        for k in 0..index.len() {
            assert_eq!(
                report.per_key[k],
                index.violations_of(k, &doc, &dix),
                "key {k} on {text}"
            );
        }
        assert_eq!(report.all_violations(), index.violations(&doc, &dix));
    }

    fn sigma(keys: &[&str]) -> KeySet {
        keys.iter().map(|k| XmlKey::parse(k).unwrap()).collect()
    }

    #[test]
    fn clean_document_reports_nothing() {
        let sigma = sigma(&["(ε, (//book, {@isbn}))"]);
        let index = KeyIndex::new(&sigma);
        let report = stream_check(&index, r#"<db><book isbn="1"/><book isbn="2"/></db>"#);
        assert!(report.per_key.iter().all(|v| v.is_empty()));
        assert_eq!(report.nodes, 5);
        assert!(report.peak_open_contexts >= 1);
    }

    #[test]
    fn every_violation_kind_matches_the_dom_validator() {
        let s = sigma(&["(ε, (//book, {@isbn}))"]);
        // Missing, duplicate attribute, duplicate key value.
        assert_matches_dom(
            &s,
            r#"<db><book/><book isbn="1" isbn="2"/><book isbn="3"/><book isbn="3"/></db>"#,
        );
    }

    #[test]
    fn nested_contexts_report_in_document_order() {
        // Contexts nest (every `part` is a context); inner contexts close
        // before outer ones but must report after them.
        let s = sigma(&["(//part, (item, {@id}))"]);
        assert_matches_dom(
            &s,
            r#"<r><part><item id="1"/><part><item/><item id="2"/><item id="2"/></part><item id="1"/><item id="1"/></part></r>"#,
        );
    }

    #[test]
    fn multi_attribute_keys_and_attribute_targets() {
        let s = sigma(&[
            "(ε, (//book, {@isbn, @lang}))",
            "(//book, (@isbn, {}))",
            "(ε, (//book/author, {}))",
        ]);
        assert_matches_dom(
            &s,
            r#"<db><book isbn="1"><author/><author/></book><book lang="en" isbn="1" lang="en"/><book isbn="1" lang="fr"/><book isbn="1" lang="fr"/></db>"#,
        );
    }

    #[test]
    fn descendant_paths_and_unknown_labels() {
        let s = sigma(&["(//a, (//b, {@k}))"]);
        assert_matches_dom(
            &s,
            r#"<r><a><zzz><b k="1"/><b k="1"/></zzz><b/></a><a><b k="2"/></a></r>"#,
        );
    }

    #[test]
    fn text_and_epsilon_targets() {
        // Text nodes are addressable as `S`; ε targets make every context
        // its own target.
        let s = sigma(&["(//p, (S, {}))", "(//p, (ε, {@id}))"]);
        assert_matches_dom(&s, r#"<r><p id="1">one</p><p>two<b/>three</p></r>"#);
    }

    #[test]
    fn empty_attribute_sets_use_node_identity_tuples() {
        // {} keys: every complete tuple is the empty tuple, so two targets
        // under one context always clash.
        let s = sigma(&["(ε, (//chapter, {}))"]);
        assert_matches_dom(&s, r#"<db><book><chapter/><chapter/></book></db>"#);
    }

    #[test]
    fn peak_open_contexts_stays_bounded_by_nesting() {
        let s = sigma(&["(//a, (b, {@k}))"]);
        let index = KeyIndex::new(&s);
        // 40 sibling `a` subtrees: one context open at a time.
        let mut text = String::from("<r>");
        for i in 0..40 {
            text.push_str(&format!(r#"<a><b k="{i}"/></a>"#));
        }
        text.push_str("</r>");
        let report = stream_check(&index, &text);
        assert_eq!(report.peak_open_contexts, 1);
    }
}
