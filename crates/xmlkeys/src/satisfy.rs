//! Key satisfaction (Definition 2.1) and violation reporting.
//!
//! These are the **string baselines**: per-key walks through the string
//! path evaluator with `BTreeMap<Vec<String>, _>` key-tuple maps.  They
//! remain right for one-shot questions and serve as the oracles the
//! prepared validator ([`crate::KeyIndex::violations`] /
//! [`crate::KeyIndex::satisfies`] over a `DocIndex`) is property-tested
//! against; anything validating repeatedly or at scale should prepare.

use crate::XmlKey;
use std::collections::BTreeMap;
use xmlprop_xmltree::{Document, NodeId};

/// A reason why a document fails to satisfy a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A target node lacks one of the key attributes (condition 1).
    MissingAttribute {
        /// The context node under which the target was found.
        context: NodeId,
        /// The offending target node.
        target: NodeId,
        /// The missing attribute name (with `@`).
        attribute: String,
    },
    /// A target node carries more than one copy of a key attribute
    /// (condition 1 requires uniqueness of the attribute itself).
    DuplicateAttribute {
        /// The context node under which the target was found.
        context: NodeId,
        /// The offending target node.
        target: NodeId,
        /// The duplicated attribute name (with `@`).
        attribute: String,
    },
    /// Two distinct target nodes under the same context agree on all key
    /// attribute values (condition 2).
    DuplicateKeyValue {
        /// The context node under which the clash happens.
        context: NodeId,
        /// The first clashing target node.
        first: NodeId,
        /// The second clashing target node.
        second: NodeId,
        /// The shared key values, in key-attribute order.
        values: Vec<String>,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::MissingAttribute {
                context,
                target,
                attribute,
            } => write!(
                f,
                "target node {target} (context {context}) is missing key attribute {attribute}"
            ),
            Violation::DuplicateAttribute {
                context,
                target,
                attribute,
            } => write!(
                f,
                "target node {target} (context {context}) has more than one {attribute} attribute"
            ),
            Violation::DuplicateKeyValue {
                context,
                first,
                second,
                values,
            } => write!(
                f,
                "target nodes {first} and {second} under context {context} share key value ({})",
                values.join(", ")
            ),
        }
    }
}

/// Computes all violations of `key` in `doc` (empty iff the document
/// satisfies the key).
pub fn violations(doc: &Document, key: &XmlKey) -> Vec<Violation> {
    let mut out = Vec::new();
    let contexts = key.context().evaluate(doc, doc.root());
    for context in contexts {
        let targets = key.target().evaluate(doc, context);
        // Map from key-value tuple to the first target node carrying it.
        let mut seen: BTreeMap<Vec<String>, NodeId> = BTreeMap::new();
        for target in targets {
            let mut values = Vec::with_capacity(key.key_attrs().len());
            let mut complete = true;
            for attr in key.key_attrs() {
                let nodes: Vec<NodeId> = doc
                    .children(target)
                    .filter(|&c| doc.kind(c).is_attribute() && doc.label(c) == attr)
                    .collect();
                match nodes.len() {
                    0 => {
                        out.push(Violation::MissingAttribute {
                            context,
                            target,
                            attribute: attr.clone(),
                        });
                        complete = false;
                    }
                    1 => values.push(doc.text_value(nodes[0]).unwrap_or("").to_string()),
                    _ => {
                        out.push(Violation::DuplicateAttribute {
                            context,
                            target,
                            attribute: attr.clone(),
                        });
                        complete = false;
                    }
                }
            }
            if !complete {
                continue;
            }
            match seen.get(&values) {
                Some(&first) if first != target => {
                    out.push(Violation::DuplicateKeyValue {
                        context,
                        first,
                        second: target,
                        values: values.clone(),
                    });
                }
                Some(_) => {}
                None => {
                    seen.insert(values, target);
                }
            }
        }
    }
    out
}

/// True if `doc ⊨ key` (Definition 2.1).
pub fn satisfies(doc: &Document, key: &XmlKey) -> bool {
    violations(doc, key).is_empty()
}

/// True if the document satisfies every key of the set.
pub fn satisfies_all<'a>(doc: &Document, keys: impl IntoIterator<Item = &'a XmlKey>) -> bool {
    keys.into_iter().all(|k| satisfies(doc, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example_2_1_keys;
    use xmlprop_xmltree::sample::{fig1, fig1_duplicate_isbn};
    use xmlprop_xmltree::ElementBuilder;

    #[test]
    fn fig1_satisfies_all_sample_keys() {
        // Example 2.3: the tree of Fig. 1 satisfies K1–K7.
        let doc = fig1();
        for key in example_2_1_keys().iter() {
            assert!(
                satisfies(&doc, key),
                "{key} should hold on Fig. 1, violations: {:?}",
                violations(&doc, key)
            );
        }
        assert!(satisfies_all(&doc, example_2_1_keys().iter()));
    }

    #[test]
    fn duplicate_isbn_violates_k1_only() {
        let doc = fig1_duplicate_isbn();
        let keys = example_2_1_keys();
        let k1 = keys.get("K1").unwrap();
        let v = violations(&doc, k1);
        assert_eq!(v.len(), 1);
        assert!(
            matches!(v[0], Violation::DuplicateKeyValue { ref values, .. } if values == &vec!["123".to_string()])
        );
        // The other keys still hold.
        for key in keys.iter().filter(|k| k.name() != Some("K1")) {
            assert!(satisfies(&doc, key), "{key} unexpectedly violated");
        }
    }

    #[test]
    fn missing_attribute_is_a_violation() {
        // A book with no @isbn violates K1's condition (1).
        let doc = ElementBuilder::new("r")
            .child(ElementBuilder::new("book").text_child("title", "No isbn"))
            .build();
        let keys = example_2_1_keys();
        let v = violations(&doc, keys.get("K1").unwrap());
        assert_eq!(v.len(), 1);
        assert!(
            matches!(v[0], Violation::MissingAttribute { ref attribute, .. } if attribute == "@isbn")
        );
    }

    #[test]
    fn duplicate_attribute_is_a_violation() {
        // The paper's model allows a node to carry two @isbn children; the
        // key then fails condition (1).
        let mut doc = ElementBuilder::new("r")
            .child(ElementBuilder::new("book"))
            .build();
        let book = doc.element_children(doc.root()).next().unwrap();
        doc.add_attribute(book, "isbn", "1");
        doc.add_attribute(book, "isbn", "2");
        let keys = example_2_1_keys();
        let v = violations(&doc, keys.get("K1").unwrap());
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::DuplicateAttribute { .. }));
    }

    #[test]
    fn relative_key_scopes_violations_to_the_context() {
        // Two chapters numbered 1 in *different* books is fine (K2 holds),
        // but two chapters numbered 1 in the *same* book is a violation.
        let ok = ElementBuilder::new("r")
            .child(
                ElementBuilder::new("book")
                    .attr("isbn", "1")
                    .child(ElementBuilder::new("chapter").attr("number", "1")),
            )
            .child(
                ElementBuilder::new("book")
                    .attr("isbn", "2")
                    .child(ElementBuilder::new("chapter").attr("number", "1")),
            )
            .build();
        let keys = example_2_1_keys();
        assert!(satisfies(&ok, keys.get("K2").unwrap()));

        let bad = ElementBuilder::new("r")
            .child(
                ElementBuilder::new("book")
                    .attr("isbn", "1")
                    .child(ElementBuilder::new("chapter").attr("number", "1"))
                    .child(ElementBuilder::new("chapter").attr("number", "1")),
            )
            .build();
        assert!(!satisfies(&bad, keys.get("K2").unwrap()));
    }

    #[test]
    fn empty_key_set_means_at_most_one_target() {
        // K3 = (//book, (title, {})): a book with two titles violates it.
        let bad = ElementBuilder::new("r")
            .child(
                ElementBuilder::new("book")
                    .attr("isbn", "1")
                    .text_child("title", "A")
                    .text_child("title", "B"),
            )
            .build();
        let keys = example_2_1_keys();
        assert!(!satisfies(&bad, keys.get("K3").unwrap()));
        // But two authors are fine because no key restricts author count.
        let doc = fig1();
        assert!(satisfies_all(&doc, keys.iter()));
    }

    #[test]
    fn violation_messages_are_readable() {
        let doc = fig1_duplicate_isbn();
        let keys = example_2_1_keys();
        let v = violations(&doc, keys.get("K1").unwrap());
        let msg = v[0].to_string();
        assert!(msg.contains("share key value (123)"), "{msg}");
    }

    #[test]
    fn context_that_matches_nothing_is_vacuously_satisfied() {
        let doc = fig1();
        let key = XmlKey::parse("(//magazine, (issue, {@number}))").unwrap();
        assert!(satisfies(&doc, &key));
    }
}
