//! General XML keys (class `K`): key paths that are arbitrary path
//! expressions, not just attributes.
//!
//! The key language the paper builds on (Buneman et al., "Keys for XML",
//! WWW'01) allows key paths to be arbitrary path expressions reaching
//! elements, attributes or text; the ICDE'03 paper restricts itself to the
//! attribute-only class `K^A` "for the purposes of this paper" because that
//! is what its propagation algorithms need.  Downstream users still want to
//! *validate* documents against the richer class (e.g. "within a book,
//! chapters are keyed by their `name` subelement"), so this module provides
//! general keys for satisfaction checking, plus a conversion to `K^A` when a
//! key happens to fall inside the restricted class.
//!
//! Semantics (value-intersection based, following the cited work, restricted
//! to the common case the paper's Definition 2.1 also uses): a document
//! satisfies `(Q, (Q', {P1, …, Pk}))` iff for every context node
//! `n ∈ [[Q]]` and distinct target nodes `n1, n2 ∈ n[[Q']]`:
//!
//! 1. each `ni[[Pj]]` is a single node (the key path exists and is unique), and
//! 2. if the `value()`s of all key-path nodes agree, then `n1 = n2`.

use crate::{KeySet, Violation, XmlKey};
use std::collections::BTreeMap;
use std::fmt;
use xmlprop_xmlpath::{Atom, PathExpr};
use xmlprop_xmltree::{Document, NodeId};

/// A general XML key `(Q, (Q', {P1, …, Pk}))` whose key paths are path
/// expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralKey {
    name: Option<String>,
    context: PathExpr,
    target: PathExpr,
    key_paths: Vec<PathExpr>,
}

impl GeneralKey {
    /// Creates a general key from its components.
    pub fn new(
        context: PathExpr,
        target: PathExpr,
        key_paths: impl IntoIterator<Item = PathExpr>,
    ) -> Self {
        GeneralKey {
            name: None,
            context,
            target,
            key_paths: key_paths.into_iter().collect(),
        }
    }

    /// Attaches a name to the key.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Parses the same textual syntax as [`XmlKey`], but with arbitrary path
    /// expressions inside the braces, e.g.
    /// `"(//book, (chapter, {name, @number}))"`.
    pub fn parse(s: &str) -> Result<Self, crate::ParseKeyError> {
        // Reuse the XmlKey parser layout by extracting the brace content
        // manually: the only difference is the key-path syntax.
        let err = |m: &str| crate::ParseKeyError {
            message: m.to_string(),
        };
        let s = s.trim();
        let (name, rest) = match (s.find(':'), s.find('(')) {
            (Some(c), Some(p)) if c < p => (Some(s[..c].trim().to_string()), s[c + 1..].trim()),
            _ => (None, s),
        };
        let rest = rest.strip_prefix('(').ok_or_else(|| err("expected `(`"))?;
        let rest = rest
            .strip_suffix(')')
            .ok_or_else(|| err("expected trailing `)`"))?;
        let inner_open = rest
            .find('(')
            .ok_or_else(|| err("expected `(Q', {...})`"))?;
        let context: PathExpr = rest[..inner_open]
            .trim()
            .trim_end_matches(',')
            .trim()
            .parse()
            .map_err(|e| err(&format!("context path: {e}")))?;
        let inner = rest[inner_open..]
            .trim()
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| err("expected `(Q', {...})`"))?;
        let brace_open = inner.find('{').ok_or_else(|| err("expected `{...}`"))?;
        let brace_close = inner.rfind('}').ok_or_else(|| err("expected `}`"))?;
        let target: PathExpr = inner[..brace_open]
            .trim()
            .trim_end_matches(',')
            .trim()
            .parse()
            .map_err(|e| err(&format!("target path: {e}")))?;
        let mut key_paths = Vec::new();
        for part in inner[brace_open + 1..brace_close].split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            key_paths.push(
                part.parse()
                    .map_err(|e| err(&format!("key path `{part}`: {e}")))?,
            );
        }
        let mut key = GeneralKey::new(context, target, key_paths);
        if let Some(name) = name {
            key = key.named(name);
        }
        Ok(key)
    }

    /// The key's name, if any.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// The context path.
    pub fn context(&self) -> &PathExpr {
        &self.context
    }

    /// The target path.
    pub fn target(&self) -> &PathExpr {
        &self.target
    }

    /// The key paths.
    pub fn key_paths(&self) -> &[PathExpr] {
        &self.key_paths
    }

    /// Converts the key into the restricted class `K^A` if every key path is
    /// a single attribute step; `None` otherwise.  Keys in `K^A` can take
    /// part in propagation reasoning; general ones can only be validated.
    pub fn to_attribute_key(&self) -> Option<XmlKey> {
        let mut attrs = Vec::with_capacity(self.key_paths.len());
        for p in &self.key_paths {
            match p.atoms() {
                [Atom::Label(label)] if label.starts_with('@') => attrs.push(label.clone()),
                _ => return None,
            }
        }
        let mut key = XmlKey::new(self.context.clone(), self.target.clone(), attrs);
        if let Some(name) = &self.name {
            key = key.named(name.clone());
        }
        Some(key)
    }

    /// All violations of this key in `doc`.
    pub fn violations(&self, doc: &Document) -> Vec<Violation> {
        let mut out = Vec::new();
        for context in self.context.evaluate(doc, doc.root()) {
            let targets = self.target.evaluate(doc, context);
            let mut seen: BTreeMap<Vec<String>, NodeId> = BTreeMap::new();
            for target in targets {
                let mut values = Vec::with_capacity(self.key_paths.len());
                let mut complete = true;
                for path in &self.key_paths {
                    let nodes = path.evaluate(doc, target);
                    match nodes.len() {
                        0 => {
                            out.push(Violation::MissingAttribute {
                                context,
                                target,
                                attribute: path.to_string(),
                            });
                            complete = false;
                        }
                        1 => values.push(doc.value(nodes[0])),
                        _ => {
                            out.push(Violation::DuplicateAttribute {
                                context,
                                target,
                                attribute: path.to_string(),
                            });
                            complete = false;
                        }
                    }
                }
                if !complete {
                    continue;
                }
                match seen.get(&values) {
                    Some(&first) if first != target => out.push(Violation::DuplicateKeyValue {
                        context,
                        first,
                        second: target,
                        values: values.clone(),
                    }),
                    Some(_) => {}
                    None => {
                        seen.insert(values, target);
                    }
                }
            }
        }
        out
    }

    /// True if the document satisfies this key.
    pub fn satisfied_by(&self, doc: &Document) -> bool {
        self.violations(doc).is_empty()
    }
}

impl fmt::Display for GeneralKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.name {
            write!(f, "{name}: ")?;
        }
        let paths: Vec<String> = self.key_paths.iter().map(|p| p.to_string()).collect();
        write!(
            f,
            "({}, ({}, {{{}}}))",
            self.context,
            self.target,
            paths.join(", ")
        )
    }
}

/// Converts the attribute-only subset of a list of general keys into a
/// [`KeySet`] usable by the propagation algorithms, returning the general
/// keys that could not be converted alongside it.
pub fn partition_for_propagation(keys: &[GeneralKey]) -> (KeySet, Vec<GeneralKey>) {
    let mut restricted = KeySet::new();
    let mut general_only = Vec::new();
    for key in keys {
        match key.to_attribute_key() {
            Some(k) => restricted.add(k),
            None => general_only.push(key.clone()),
        }
    }
    (restricted, general_only)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlprop_xmltree::sample::fig1;
    use xmlprop_xmltree::ElementBuilder;

    fn p(s: &str) -> PathExpr {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let key = GeneralKey::parse("G1: (//book, (chapter, {name, @number}))").unwrap();
        assert_eq!(key.name(), Some("G1"));
        assert_eq!(key.key_paths().len(), 2);
        let reparsed = GeneralKey::parse(&key.to_string()).unwrap();
        assert_eq!(key, reparsed);
    }

    #[test]
    fn element_valued_key_on_fig1() {
        // Within a book, chapters are keyed by their *name* subelement: holds
        // on Fig. 1 (chapter names are distinct within each book).
        let doc = fig1();
        let key = GeneralKey::new(p("//book"), p("chapter"), [p("name")]);
        assert!(key.satisfied_by(&doc));
        // Across the whole document it fails condition (1)? No — every
        // chapter has a name, and names differ, so the absolute variant also
        // holds on this particular document.
        let absolute = GeneralKey::new(PathExpr::epsilon(), p("//chapter"), [p("name")]);
        assert!(absolute.satisfied_by(&doc));
    }

    #[test]
    fn duplicate_element_values_are_violations() {
        let doc = ElementBuilder::new("r")
            .child(
                ElementBuilder::new("book")
                    .child(ElementBuilder::new("chapter").text_child("name", "Intro"))
                    .child(ElementBuilder::new("chapter").text_child("name", "Intro")),
            )
            .build();
        let key = GeneralKey::new(p("//book"), p("chapter"), [p("name")]);
        let v = key.violations(&doc);
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::DuplicateKeyValue { .. }));
    }

    #[test]
    fn missing_and_duplicated_key_paths_are_violations() {
        let doc = ElementBuilder::new("r")
            .child(
                ElementBuilder::new("book")
                    .child(ElementBuilder::new("chapter")) // no name
                    .child(
                        ElementBuilder::new("chapter")
                            .text_child("name", "A")
                            .text_child("name", "B"), // two names
                    ),
            )
            .build();
        let key = GeneralKey::new(p("//book"), p("chapter"), [p("name")]);
        let v = key.violations(&doc);
        assert_eq!(v.len(), 2);
        assert!(matches!(v[0], Violation::MissingAttribute { .. }));
        assert!(matches!(v[1], Violation::DuplicateAttribute { .. }));
    }

    #[test]
    fn conversion_to_the_restricted_class() {
        let attribute_only = GeneralKey::parse("(//book, (chapter, {@number}))").unwrap();
        let converted = attribute_only.to_attribute_key().unwrap();
        assert_eq!(converted.key_attrs(), ["@number"]);

        let general = GeneralKey::parse("(//book, (chapter, {name}))").unwrap();
        assert!(general.to_attribute_key().is_none());
        let nested = GeneralKey::parse("(//book, (chapter, {meta/@id}))").unwrap();
        assert!(nested.to_attribute_key().is_none());
    }

    #[test]
    fn partitioning_splits_by_class() {
        let keys = vec![
            GeneralKey::parse("A: (ε, (//book, {@isbn}))").unwrap(),
            GeneralKey::parse("B: (//book, (chapter, {name}))").unwrap(),
            GeneralKey::parse("C: (//book, (chapter, {@number}))").unwrap(),
        ];
        let (restricted, general_only) = partition_for_propagation(&keys);
        assert_eq!(restricted.len(), 2);
        assert_eq!(general_only.len(), 1);
        assert_eq!(general_only[0].name(), Some("B"));
        // The restricted part is directly usable for implication.
        assert!(crate::implies(
            &restricted,
            &XmlKey::parse("(ε, (//book, {@isbn}))").unwrap()
        ));
    }

    #[test]
    fn general_key_with_empty_key_path_set_bounds_cardinality() {
        // ({}) means "at most one target per context node", same as K3/K7.
        let doc = fig1();
        let one_title = GeneralKey::new(p("//book"), p("title"), Vec::<PathExpr>::new());
        assert!(one_title.satisfied_by(&doc));
        let one_chapter = GeneralKey::new(p("//book"), p("chapter"), Vec::<PathExpr>::new());
        assert!(!one_chapter.satisfied_by(&doc));
    }
}
