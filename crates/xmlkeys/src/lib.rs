//! XML keys (class `K^A`): definition, satisfaction and implication.
//!
//! Following Section 2 of *"Propagating XML Constraints to Relations"*, an
//! XML key is written
//!
//! ```text
//! K = (Q, (Q', {@a1, …, @ak}))
//! ```
//!
//! where `Q` is the **context** path, `Q'` the **target** path and the
//! `@ai` are attribute **key paths**.  A document `T` satisfies the key iff
//! for every context node `n ∈ [[Q]]` and every pair of target nodes
//! `n1, n2 ∈ n[[Q']]`:
//!
//! 1. `n1` and `n2` each have a unique `@ai` attribute for every `i`, and
//! 2. if they agree on the values of all the `@ai` then `n1 = n2`.
//!
//! A key is *absolute* when `Q = ε` and *relative* otherwise.
//!
//! This crate provides:
//!
//! * [`XmlKey`] — construction, parsing (`"(//book, (chapter, {@number}))"`)
//!   and display;
//! * [`satisfies`] / [`violations`] — Definition 2.1 over
//!   [`xmlprop_xmltree::Document`]s, with detailed violation reports;
//! * [`KeySet`] — sets `Σ` of keys, the *precedes* relation and the
//!   **transitive set** test of Section 4;
//! * [`implies`] — the key implication test `Σ ⊨ φ` used by the propagation
//!   algorithms, together with [`attributes_assured`], the `exist()`
//!   sub-procedure of Fig. 5;
//! * [`KeyIndex`] — the prepared form of a key set ([`KeySet::prepare`]):
//!   compiled context/target/absolute-target paths, precompiled
//!   target-to-context splits and an attribute → keys index, so repeated
//!   implication and `exist()` queries avoid re-splitting paths and
//!   rescanning `Σ`.  The free functions above are thin one-shot facades
//!   over it.  It also validates documents at scale:
//!   [`KeyIndex::index_document`] + [`KeyIndex::violations`] /
//!   [`KeyIndex::satisfies`] check all keys over a prepared
//!   [`xmlprop_xmltree::DocIndex`] with interned-value key tuples;
//! * [`IncrementalValidator`] — delta-maintained validation state: after a
//!   [`xmlprop_xmltree::Document::apply`] edit (index patched via
//!   [`xmlprop_xmltree::DocIndex::apply_delta`]) it re-probes only the
//!   contexts and targets on the edit's ancestor chain, reproducing
//!   [`KeyIndex::violations`] bit-for-bit at a fraction of the cost.
//!
//! # Implication procedure
//!
//! The full inference system appears only in the authors' technical report;
//! the conference paper names two of its rules (*epsilon* and
//! *target-to-context*) and states that implication is decided in
//! `O(|Σ|·|φ|)` time by examining the keys of `Σ` one at a time.  We
//! implement exactly that shape:
//!
//! * `(Q, (ε, S))` holds whenever every attribute of `S` is assured (by some
//!   key of `Σ`) to exist uniquely on every node reached by `Q`
//!   (the *epsilon* rule for `S = ∅`);
//! * `(Q, (Q', S))` follows from a single key `(Qk, (A/B, Sk)) ∈ Σ` with
//!   `Sk ⊆ S` when `Q ⊑ Qk/A` and `Q' ⊑ B` (the *target-to-context* rule
//!   combined with context/target path containment), provided the extra
//!   attributes `S \ Sk` are assured on the target position.
//!
//! The procedure is **sound** (every implication it reports is a semantic
//! consequence — property-tested against random documents) and reproduces
//! every implication used in the paper's worked examples; like the paper's
//! own algorithm it examines each key of `Σ` independently.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delta;
pub mod general;
mod implication;
mod index;
mod key;
mod keyset;
mod satisfy;
mod stream;
pub mod xsd;

pub use delta::IncrementalValidator;
pub use general::{partition_for_propagation, GeneralKey};
pub use implication::{attribute_assured, attributes_assured, implies, node_unique_under};
pub use index::{IndexedKey, KeyIndex, PreparedKey};
pub use key::{ParseKeyError, XmlKey};
pub use keyset::KeySet;
pub use satisfy::{satisfies, satisfies_all, violations, Violation};
pub use stream::{StreamCheckReport, StreamKeyChecker};
pub use xsd::{import_xsd_keys, XsdImport, XsdImportError};

/// The seven sample keys K1–K7 of Example 2.1 in the paper, over the Fig. 1
/// document.  Exposed here because tests, examples and benchmarks across the
/// workspace all start from them.
pub fn example_2_1_keys() -> KeySet {
    KeySet::from_keys(vec![
        XmlKey::parse("K1: (ε, (//book, {@isbn}))").expect("K1"),
        XmlKey::parse("K2: (//book, (chapter, {@number}))").expect("K2"),
        XmlKey::parse("K3: (//book, (title, {}))").expect("K3"),
        XmlKey::parse("K4: (//book/chapter, (name, {}))").expect("K4"),
        XmlKey::parse("K5: (//book/chapter/section, (name, {}))").expect("K5"),
        XmlKey::parse("K6: (//book/chapter, (section, {@number}))").expect("K6"),
        XmlKey::parse("K7: (//book, (author/contact, {}))").expect("K7"),
    ])
}
